#!/usr/bin/env python3
"""CSV round-trip and the graphgenpy serialization workflow.

A typical adoption path for GraphGen: data lives in an RDBMS, gets dumped to
CSV (every database can ``COPY`` to CSV), and the analyst wants a graph file
that their existing NetworkX / graph-tool scripts can read.  This example
walks that pipeline end to end:

1. build a TPC-H-shaped database and dump it to a directory of CSV files,
2. reload the CSVs into an in-memory database (schema manifest included),
3. extract the "customers who bought the same part" graph with graphgenpy,
   serializing it as an edge list,
4. reload the edge list as a ``networkx.DiGraph`` and analyze it there.

Run with:  python examples/csv_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import networkx as nx

from repro import GraphGenPy, load_networkx
from repro.datasets import COPURCHASE_QUERY, generate_tpch
from repro.relational.csv_io import read_database, write_database


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="graphgen_csv_"))

    # 1. dump a relational database to CSV --------------------------------- #
    original = generate_tpch(num_customers=150, num_parts=40,
                             orders_per_customer=3.0, lineitems_per_order=4.0,
                             part_skew=1.0, seed=5)
    csv_dir = workdir / "tpch_csv"
    files = write_database(original, csv_dir)
    print(f"wrote {len(files)} files to {csv_dir}")

    # 2. reload it (this is where a real deployment would start) ----------- #
    db = read_database(csv_dir)
    print(f"reloaded database {db.name!r} with tables: {', '.join(db.table_names())}")
    print(f"  total rows: {db.total_rows()}")

    # 3. extract + serialize with graphgenpy -------------------------------- #
    gpy = GraphGenPy(db, estimator="exact")
    edge_list = workdir / "copurchase.tsv"
    serialized = gpy.execute_query(COPURCHASE_QUERY, edge_list, fmt="edgelist")
    print("\nserialized co-purchase graph:")
    for key, value in serialized.as_dict().items():
        print(f"  {key}: {value}")

    # 4. hand the file to NetworkX ------------------------------------------ #
    nx_graph = load_networkx(edge_list)
    undirected = nx_graph.to_undirected()
    print("\nNetworkX analysis of the serialized graph:")
    print(f"  nodes: {nx_graph.number_of_nodes()}  edges: {undirected.number_of_edges()}")
    print(f"  connected components: {nx.number_connected_components(undirected)}")
    top_degree = sorted(undirected.degree, key=lambda item: -item[1])[:3]
    for node, degree in top_degree:
        print(f"  customer {node} co-purchased with {degree} other customers")


if __name__ == "__main__":
    main()
