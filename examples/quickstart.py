#!/usr/bin/env python3
"""Quickstart: extract a hidden co-author graph from a relational database.

This is the end-to-end "hello world" of the GraphGen reproduction:

1. build a small DBLP-shaped relational database (Author, Publication,
   AuthorPub tables),
2. declare the co-authors graph with the Datalog DSL,
3. let GraphGen plan the extraction (it decides which joins are large-output
   and keeps them condensed),
4. run a few graph algorithms on the extracted graph, and
5. show how much smaller the condensed representation is than the fully
   expanded graph.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import GraphGen
from repro.algorithms import connected_components, count_triangles, top_k_pagerank
from repro.datasets import COAUTHOR_QUERY, generate_dblp
from repro.graph import representation_stats
from repro.utils import format_bytes


def main() -> None:
    # 1. a DBLP-shaped database: ~400 authors writing ~700 papers
    db = generate_dblp(num_authors=400, num_publications=700,
                       mean_authors_per_pub=4.0, seed=42)
    print(f"database: {db}")

    # 2-3. plan and extract; "exact" join-size estimation never misses a
    # large-output join, so the co-author self-join stays condensed
    gg = GraphGen(db, estimator="exact")
    print("\n--- extraction plan -------------------------------------------")
    print(gg.explain(COAUTHOR_QUERY))

    result = gg.extract_with_report(COAUTHOR_QUERY, representation="cdup")
    graph = result.graph
    print("\n--- extraction report -----------------------------------------")
    print(f"real nodes:        {result.report.real_nodes}")
    print(f"virtual nodes:     {result.report.virtual_nodes}")
    print(f"condensed edges:   {result.report.condensed_edges}")
    print(f"expanded edges:    {result.condensed.expanded_edge_count()}")
    print(f"extraction time:   {result.report.seconds:.3f}s")

    # 4. run graph analytics straight on the condensed representation
    print("\n--- analytics on the condensed graph --------------------------")
    prolific = top_k_pagerank(graph, k=5)
    print("top-5 authors by PageRank:")
    for author, score in prolific:
        print(f"  {graph.get_property(author, 'Name')}: {score:.5f}")
    components = connected_components(graph)
    print(f"connected components: {len(set(components.values()))}")
    print(f"triangles:            {count_triangles(graph)}")

    # 5. compare the memory footprint against the fully expanded graph
    print("\n--- condensed vs expanded -------------------------------------")
    expanded = gg.extract(COAUTHOR_QUERY, representation="exp")
    for candidate in (graph, expanded):
        stats = representation_stats(candidate)
        print(
            f"{stats.representation:>6}: {stats.total_nodes:6d} nodes, "
            f"{stats.edges:8d} stored edges, ~{format_bytes(stats.estimated_bytes)}"
        )


if __name__ == "__main__":
    main()
