#!/usr/bin/env python3
"""Quickstart: extract a hidden co-author graph and analyze it in a session.

This is the end-to-end "hello world" of the GraphGen reproduction:

1. build a small DBLP-shaped relational database (Author, Publication,
   AuthorPub tables),
2. open a ``GraphSession`` — the object that owns the extractor, the
   snapshot store and the kernel backend for every analysis that follows,
3. declare the co-authors graph with the Datalog DSL and let the session
   extract it (the planner decides which joins are large-output and keeps
   them condensed),
4. chain several analyses onto ONE plan — they all execute over a single
   shared CSR snapshot build, and the report says exactly what ran where,
5. show how much smaller the condensed representation is than the fully
   expanded graph.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import GraphSession
from repro.datasets import COAUTHOR_QUERY, generate_dblp
from repro.graph import representation_stats
from repro.utils import format_bytes


def main() -> None:
    # 1. a DBLP-shaped database: ~400 authors writing ~700 papers
    db = generate_dblp(num_authors=400, num_publications=700,
                       mean_authors_per_pub=4.0, seed=42)
    print(f"database: {db}")

    # 2. one session owns extraction + snapshots + backend for all analyses;
    # "exact" join-size estimation never misses a large-output join, so the
    # co-author self-join stays condensed
    session = GraphSession(db, estimator="exact")
    print("\n--- extraction plan -------------------------------------------")
    print(session.explain(COAUTHOR_QUERY))

    # 3. extract once; the handle binds the representation to its snapshot
    handle = session.graph(COAUTHOR_QUERY, representation="cdup")
    report = handle.extraction.report
    print("\n--- extraction report -----------------------------------------")
    print(f"real nodes:        {report.real_nodes}")
    print(f"virtual nodes:     {report.virtual_nodes}")
    print(f"condensed edges:   {report.condensed_edges}")
    print(f"expanded edges:    {handle.extraction.condensed.expanded_edge_count()}")
    print(f"extraction time:   {report.seconds:.3f}s")

    # 4. chain the whole analysis batch onto one plan: a single CSR snapshot
    # build serves pagerank + components + triangles
    analysis = handle.analyze().pagerank().components().triangles().run()
    print("\n--- analytics on the condensed graph --------------------------")
    graph = handle.graph
    scores = analysis["pagerank"].values
    print("top-5 authors by PageRank:")
    top5 = sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))[:5]
    for author, score in top5:
        print(f"  {graph.get_property(author, 'Name')}: {score:.5f}")
    components = analysis["components"].values
    print(f"connected components: {len(set(components.values()))}")
    print(f"triangles:            {analysis['triangles'].values}")
    provenance = analysis.provenance
    print(
        f"(one snapshot build: {analysis.snapshot_builds}; "
        f"source={provenance.snapshot_source}, backend={provenance.backend})"
    )

    # 5. compare the memory footprint against the fully expanded graph
    print("\n--- condensed vs expanded -------------------------------------")
    expanded = session.graph(COAUTHOR_QUERY, representation="exp").graph
    for candidate in (graph, expanded):
        stats = representation_stats(candidate)
        print(
            f"{stats.representation:>6}: {stats.total_nodes:6d} nodes, "
            f"{stats.edges:8d} stored edges, ~{format_bytes(stats.estimated_bytes)}"
        )


if __name__ == "__main__":
    main()
