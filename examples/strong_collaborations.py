#!/usr/bin/env python3
"""Strong collaborations: aggregation constructs in the extraction DSL.

The paper's introduction motivates graphs whose edges need an aggregate to
define — e.g. connect two authors only "if they co-authored multiple papers
together".  This example extracts three variants of the co-author graph from
the same DBLP-shaped database:

1. the plain co-author graph (one shared paper is enough),
2. a *weighted* co-author graph where every edge carries ``count(PubID)``,
   the number of shared papers, and
3. the *strong collaboration* graph keeping only pairs with at least two
   shared papers (a HAVING-style aggregate constraint).

Run with:  python examples/strong_collaborations.py
"""

from __future__ import annotations

from repro import GraphGen
from repro.algorithms import average_degree, num_components
from repro.datasets import COAUTHOR_QUERY, generate_dblp

WEIGHTED_QUERY = """
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2, count(PubID)) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
"""

STRONG_QUERY = """
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID), count(PubID) >= 2.
"""


def main() -> None:
    db = generate_dblp(num_authors=300, num_publications=700,
                       mean_authors_per_pub=3.5, seed=7)
    gg = GraphGen(db)

    # 1. the plain co-author graph ---------------------------------------- #
    plain = gg.extract(COAUTHOR_QUERY, representation="exp")
    print("plain co-author graph")
    print(f"  vertices: {plain.num_vertices()}  edges: {plain.num_edges()}")
    print(f"  average degree: {average_degree(plain):.2f}")
    print(f"  connected components: {num_components(plain)}")

    # 2. the weighted co-author graph ------------------------------------- #
    weighted = gg.extract(WEIGHTED_QUERY, representation="exp")
    pair_weights = [
        (u, v, weighted.get_edge_property(u, v, "count_PubID", 0))
        for u, v in weighted.edges()
        if u != v
    ]
    pair_weights.sort(key=lambda item: -item[2])
    print("\nweighted co-author graph (count of shared papers per edge)")
    print("  strongest collaborations:")
    for u, v, weight in pair_weights[:5]:
        name_u = weighted.get_property(u, "Name")
        name_v = weighted.get_property(v, "Name")
        print(f"    {name_u} -- {name_v}: {weight} shared papers")

    # 3. the strong-collaboration graph (HAVING count >= 2) ---------------- #
    strong = gg.extract(STRONG_QUERY, representation="exp")
    print("\nstrong collaboration graph (>= 2 shared papers)")
    print(f"  vertices: {strong.num_vertices()}  edges: {strong.num_edges()}")
    kept = strong.num_edges() / max(1, plain.num_edges())
    print(f"  kept {kept:.1%} of the plain graph's edges")
    print(f"  connected components: {num_components(strong)} "
          f"(vs {num_components(plain)} in the plain graph)")

    # the plan shows how GraphGen executes the aggregation (Case 2)
    print("\nextraction plan for the strong-collaboration graph:")
    print(gg.explain(STRONG_QUERY))


if __name__ == "__main__":
    main()
