#!/usr/bin/env python3
"""Temporal graph analytics: comparing co-author graphs across time windows.

The paper's introduction motivates extracting *many different graphs* from the
same relational data — "it is also often interesting to juxtapose and compare
graphs constructed over different time periods".  This example extracts one
co-author graph per time window (using a selection predicate on the
publication year inside the Edges rule), and tracks how the collaboration
network densifies over time:

* number of edges and average degree per window,
* size of the largest connected component,
* clustering coefficient,
* the authors whose PageRank grows the most between the first and last window.

Run with:  python examples/temporal_coauthors.py
"""

from __future__ import annotations

from repro import GraphGen
from repro.algorithms import average_clustering, average_degree, largest_component, pagerank
from repro.datasets import RECENT_COAUTHOR_QUERY_TEMPLATE, generate_dblp


WINDOW_STARTS = (1990, 2000, 2008, 2014)


def main() -> None:
    db = generate_dblp(
        num_authors=350,
        num_publications=900,
        mean_authors_per_pub=3.5,
        year_range=(1990, 2016),
        seed=13,
    )
    gg = GraphGen(db, estimator="exact")
    print(f"database: {db}\n")

    print(f"{'window':>12} {'edges':>8} {'avg deg':>8} {'largest CC':>11} {'clustering':>11}")
    snapshots = {}
    for start in WINDOW_STARTS:
        query = RECENT_COAUTHOR_QUERY_TEMPLATE.format(year=start)
        graph = gg.extract(query, representation="dedup1")
        snapshots[start] = graph
        print(
            f"{f'>= {start}':>12} {graph.num_edges():8d} {average_degree(graph):8.2f} "
            f"{len(largest_component(graph)):11d} {average_clustering(graph):11.3f}"
        )

    print("\nrising stars (largest PageRank gain from the full graph to the most recent window):")
    first = pagerank(snapshots[WINDOW_STARTS[0]])
    last = pagerank(snapshots[WINDOW_STARTS[-1]])
    gains = {author: last.get(author, 0.0) - first.get(author, 0.0) for author in first}
    rising = sorted(gains.items(), key=lambda item: -item[1])[:5]
    reference = snapshots[WINDOW_STARTS[0]]
    for author, gain in rising:
        name = reference.get_property(author, "Name", default=author)
        print(f"  {name}: +{gain:.5f}")


if __name__ == "__main__":
    main()
