#!/usr/bin/env python3
"""Heterogeneous graphs from a university database, plus NetworkX export.

Reproduces the paper's [Q3] workflow on the db-book university schema:

* a *heterogeneous bipartite* graph connecting instructors to the students who
  took their courses (two Nodes statements, one directed Edges statement),
* the student co-enrolment graph (the UNIV row of Table 1), analysed through
  the vertex-centric framework, and
* serialization of the extracted graph to an edge list and conversion to a
  NetworkX graph for downstream tooling — the role the paper's ``graphgenpy``
  wrapper plays.

Run with:  python examples/university_bipartite.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import networkx as nx

from repro import GraphGen
from repro.datasets import (
    COENROLLMENT_QUERY,
    INSTRUCTOR_STUDENT_BIPARTITE_QUERY,
    generate_univ,
)
from repro.io import to_networkx, write_edge_list
from repro.vertexcentric import run_connected_components, run_degree


def main() -> None:
    db = generate_univ(num_students=400, num_instructors=30, num_courses=60, seed=3)
    gg = GraphGen(db, estimator="exact")
    print(f"database: {db}")

    print("\n--- heterogeneous instructor -> student graph ------------------")
    bipartite = gg.extract(INSTRUCTOR_STUDENT_BIPARTITE_QUERY, representation="cdup")
    instructors = [v for v in bipartite.get_vertices() if bipartite.degree(v) > 0]
    reach = {i: bipartite.degree(i) for i in instructors}
    top = sorted(reach.items(), key=lambda item: -item[1])[:5]
    print("instructors reaching the most students:")
    for instructor, students in top:
        name = bipartite.get_property(instructor, "Name", default=instructor)
        print(f"  {name}: {students} students")

    print("\n--- student co-enrolment graph (vertex-centric framework) ------")
    coenrolled = gg.extract(COENROLLMENT_QUERY, representation="bitmap")
    degrees, _ = run_degree(coenrolled)
    components, stats = run_connected_components(coenrolled)
    print(f"students:             {coenrolled.num_vertices()}")
    print(f"avg co-enrolment deg: {sum(degrees.values()) / len(degrees):.2f}")
    print(f"study communities:    {len(set(components.values()))}")
    print(f"supersteps to converge: {stats.supersteps}")

    print("\n--- export for external tools ----------------------------------")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "coenrolment.tsv"
        edges = write_edge_list(coenrolled, path)
        print(f"wrote {edges} edges to {path.name} ({path.stat().st_size} bytes)")
    nx_graph = to_networkx(coenrolled, directed=False)
    print(
        f"as NetworkX: {nx_graph.number_of_nodes()} nodes, {nx_graph.number_of_edges()} edges, "
        f"density {nx.density(nx_graph):.4f}"
    )


if __name__ == "__main__":
    main()
