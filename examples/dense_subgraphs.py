#!/usr/bin/env python3
"""Dense-subgraph and centrality analysis on the co-actor graph.

The paper argues that complex analyses like "community detection, dense
subgraph detection ... require random and arbitrary access to the graph, and
cannot be efficiently, if at all, executed using basic SQL" (Section 2).
This example extracts the IMDB-style co-actor graph in the memory-efficient
BITMAP representation and runs exactly that kind of analysis on it through
one ``GraphSession`` plan — k-core decomposition, betweenness / closeness
centrality and Adamic–Adar link prediction all execute over a single shared
CSR snapshot build:

* k-core decomposition to find the densest collaboration core,
* betweenness / closeness centrality to find the actors bridging communities,
* Adamic–Adar link prediction to suggest likely future collaborations.

Run with:  python examples/dense_subgraphs.py
"""

from __future__ import annotations

from repro import GraphSession
from repro.algorithms import densest_core, top_k_central
from repro.datasets import COACTOR_QUERY, generate_imdb


def main() -> None:
    db = generate_imdb(num_people=250, num_movies=45, mean_cast_size=8.0, seed=11)
    session = GraphSession(db, estimator="exact")

    handle = session.graph(COACTOR_QUERY, representation="bitmap")
    graph = handle.graph
    extraction = handle.extraction
    print("co-actor graph (BITMAP representation)")
    print(f"  actors: {graph.num_vertices()}")
    print(f"  condensed edges stored: {extraction.report.condensed_edges}")
    print(f"  expanded edges represented: {extraction.condensed.expanded_edge_count()}")

    # one plan, one snapshot build, four analyses ------------------------- #
    report = (
        handle.analyze()
        .kcore()
        .betweenness(sample_size=60, seed=3)
        .closeness()
        .link_predictions(k=5, score="adamic_adar")
        .run()
    )
    print(
        f"  (snapshot builds for the whole batch: {report.snapshot_builds}, "
        f"backend: {report.provenance.backend})"
    )

    # dense subgraph detection via k-core decomposition -------------------- #
    cores = report["kcore"].values
    k, members = densest_core(graph)  # reuses the same cached snapshot
    print(f"\ndensest core: k = {k} with {len(members)} actors")
    print(f"  average core number: {sum(cores.values()) / len(cores):.2f}")

    # centrality ----------------------------------------------------------- #
    betweenness = report["betweenness"].values
    closeness = report["closeness"].values
    print("\nmost central actors (sampled betweenness):")
    for actor, score in top_k_central(betweenness, k=5):
        name = graph.get_property(actor, "Name", actor)
        print(f"  {name}: betweenness={score:.4f} closeness={closeness[actor]:.3f}")

    # link prediction ------------------------------------------------------ #
    print("\nsuggested future collaborations (Adamic-Adar):")
    for u, v, score in report["link_predictions"].values:
        name_u = graph.get_property(u, "Name", u)
        name_v = graph.get_property(v, "Name", v)
        print(f"  {name_u} -- {name_v}: {score:.2f}")


if __name__ == "__main__":
    main()
