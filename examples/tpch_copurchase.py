#!/usr/bin/env python3
"""Co-purchase analysis on a TPC-H-style order database.

The paper's motivating TPC-H example: a *small* relational dataset (customers,
orders, line items) hides a very dense graph — customers connected whenever
they bought the same part.  Extracting that graph naively explodes; the
condensed representation keeps it manageable.

This example:

* extracts the co-purchase graph with the multi-join query [Q2] from the
  paper (two key-foreign-key joins pushed to the database, the part-key join
  kept condensed as a layer of virtual nodes),
* compares representation sizes (C-DUP vs DEDUP-1 vs BITMAP vs EXP),
* finds customer "communities" (groups buying the same parts) with label
  propagation, and
* uses the heterogeneous bipartite customer-part graph to list the most
  popular parts.

Run with:  python examples/tpch_copurchase.py
"""

from __future__ import annotations

from repro import GraphGen
from repro.algorithms import communities, degrees
from repro.datasets import (
    COPURCHASE_QUERY,
    CUSTOMER_PART_BIPARTITE_QUERY,
    generate_tpch,
)
from repro.graph import representation_stats
from repro.utils import format_bytes


def main() -> None:
    db = generate_tpch(num_customers=250, num_parts=80, orders_per_customer=3.5,
                       lineitems_per_order=4.0, part_skew=1.2, seed=7)
    print(f"database: {db}")
    gg = GraphGen(db, estimator="exact")

    print("\n--- plan for the co-purchase graph ----------------------------")
    print(gg.explain(COPURCHASE_QUERY))

    print("\n--- representation sizes --------------------------------------")
    representations = ("cdup", "dedup1", "bitmap", "exp")
    graphs = {}
    for name in representations:
        graphs[name] = gg.extract(COPURCHASE_QUERY, representation=name)
        stats = representation_stats(graphs[name])
        print(
            f"{stats.representation:>8}: {stats.total_nodes:6d} nodes "
            f"({stats.virtual_nodes} virtual), {stats.edges:8d} stored edges, "
            f"~{format_bytes(stats.estimated_bytes)}"
        )

    print("\n--- customer communities (label propagation on BITMAP) --------")
    groups = communities(graphs["bitmap"], max_iterations=15, seed=1)
    sizes = [len(group) for group in groups[:5]]
    print(f"{len(groups)} communities; five largest: {sizes}")

    print("\n--- most popular parts (bipartite customer->part graph) -------")
    bipartite = gg.extract(CUSTOMER_PART_BIPARTITE_QUERY, representation="cdup")
    # in the bipartite graph, a part's popularity is its in-degree; compute it
    # by counting over customers' out-neighbors
    popularity: dict = {}
    for customer in bipartite.get_vertices():
        for part in bipartite.get_neighbors(customer):
            popularity[part] = popularity.get(part, 0) + 1
    top_parts = sorted(popularity.items(), key=lambda item: -item[1])[:5]
    for part, buyers in top_parts:
        name = bipartite.get_property(part, "Name", default=f"part {part}")
        print(f"  {name}: bought by {buyers} customers")

    print("\n--- who buys the most distinct parts? --------------------------")
    out_degrees = degrees(graphs["dedup1"])
    busiest = sorted(out_degrees.items(), key=lambda item: -item[1])[:5]
    for customer, degree in busiest:
        name = graphs["dedup1"].get_property(customer, "Name", default=customer)
        print(f"  {name}: connected to {degree} co-purchasers")


if __name__ == "__main__":
    main()
