"""Naive Virtual Nodes First deduplication (Section 5.2.1).

Virtual nodes are (re)admitted into the partial graph one at a time; before a
virtual node ``V`` is accepted, any duplication between ``V`` and an already
processed virtual node ``Ri`` is resolved by removing the overlapping
out-edges from whichever of the two virtual nodes has the *smaller in-degree*
(fewer compensating direct edges are then needed) and adding the compensating
direct edges.

Complexity: O(n_v * d^4) in the worst case (paper's bound).
"""

from __future__ import annotations

from repro.dedup.base import DedupState, OrderingFn, apply_ordering, single_layer_virtual_nodes
from repro.graph.condensed import CondensedGraph
from repro.graph.dedup1 import Dedup1Graph


def _resolve_pair(state: DedupState, new: int, processed: int) -> None:
    """Remove all duplication between two virtual nodes by dropping the shared
    out-edges from the lower-in-degree node."""
    while state.has_duplication_between(new, processed):
        overlap = state.out_overlap(new, processed)
        target = min(overlap)  # deterministic choice
        victim = new if len(state.in_real(new)) <= len(state.in_real(processed)) else processed
        if not state.cg.has_edge(victim, target):
            victim = processed if victim == new else new
        state.remove_virtual_out_edge(victim, target)


def deduplicate(
    condensed: CondensedGraph,
    ordering: str | OrderingFn = "random",
    seed: int = 0,
    in_place: bool = False,
) -> Dedup1Graph:
    """Run the Naive Virtual Nodes First algorithm and return a DEDUP-1 graph."""
    working = condensed if in_place else condensed.copy()
    state = DedupState(working)
    state.normalize()

    virtuals = apply_ordering(state, single_layer_virtual_nodes(working), ordering, seed=seed)
    processed: list[int] = []
    for virtual in virtuals:
        for other in processed:
            _resolve_pair(state, virtual, other)
        processed.append(virtual)

    return Dedup1Graph(working, trusted=True)
