"""Naive Real Nodes First deduplication (Section 5.2.1).

Each real node is considered in turn and all duplication among the virtual
nodes in *its* neighborhood is resolved (using the same lower-in-degree
edge-removal rule as the Naive Virtual Nodes First algorithm) before moving to
the next real node.  The per-node processed set is cleared between real nodes.

Complexity: O(n_r * d^4) in the worst case (paper's bound).
"""

from __future__ import annotations

from repro.dedup.base import DedupState, OrderingFn, apply_ordering
from repro.dedup.naive_virtual_first import _resolve_pair
from repro.graph.condensed import CondensedGraph
from repro.graph.dedup1 import Dedup1Graph


def deduplicate(
    condensed: CondensedGraph,
    ordering: str | OrderingFn = "random",
    seed: int = 0,
    in_place: bool = False,
) -> Dedup1Graph:
    """Run the Naive Real Nodes First algorithm and return a DEDUP-1 graph."""
    working = condensed if in_place else condensed.copy()
    state = DedupState(working)
    state.normalize()

    real_nodes = apply_ordering(state, working.real_nodes(), ordering, seed=seed)
    for real in real_nodes:
        processed: list[int] = []
        for virtual in [v for v in working.out(real) if working.is_virtual(v)]:
            for other in processed:
                _resolve_pair(state, virtual, other)
            processed.append(virtual)

    return Dedup1Graph(working, trusted=True)
