"""Greedy construction of the DEDUP-2 representation (Appendix B).

The input must be a *single-layer, symmetric* condensed graph — every virtual
node ``V`` satisfies ``I(V) = O(V)``, so it can be treated as a clique over a
member set ``M(V)``.  The output is a :class:`~repro.graph.dedup2.Dedup2Graph`
whose logical (self-loop-free) edge set equals the input's and which is
duplicate-free.

The implementation follows the spirit of the paper's algorithm — virtual
nodes are admitted one at a time (largest first) into a partially constructed
deduplicated graph; overlaps with existing groups are handled by *splitting*
the incoming member set into groups, connecting groups with virtual-virtual
edges when that is safe, and falling back to small (pair/singleton) virtual
nodes for the leftovers — while using an explicit covered-pair map so that
every insertion is provably safe.  This is a conservative variant of the
Appendix-B pseudo-code (which defers edge insertion through a constraint map
``m``); it favours correctness and produces the same kind of structure
(member groups + undirected virtual-virtual edges + singleton groups).
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import DeduplicationError
from repro.graph.condensed import CondensedGraph
from repro.graph.dedup2 import Dedup2Graph


def _pair(a: Hashable, b: Hashable) -> tuple[Hashable, Hashable]:
    """Canonical unordered pair key."""
    return (a, b) if repr(a) <= repr(b) else (b, a)


def check_symmetric_single_layer(condensed: CondensedGraph) -> None:
    """Raise unless the condensed graph is single-layer with I(V) = O(V)."""
    if not condensed.is_single_layer():
        raise DeduplicationError("DEDUP-2 requires a single-layer condensed graph")
    for virtual in condensed.virtual_nodes():
        in_set = set(condensed.virtual_in_real(virtual))
        out_set = set(condensed.virtual_out_real(virtual))
        if in_set != out_set:
            raise DeduplicationError(
                "DEDUP-2 requires a symmetric condensed graph "
                f"(virtual node {virtual} has I(V) != O(V))"
            )
    for node in condensed.real_nodes():
        for target in condensed.out(node):
            if condensed.is_real(target):
                # direct edges must also be symmetric
                if not condensed.has_edge(target, node):
                    raise DeduplicationError(
                        "DEDUP-2 requires a symmetric condensed graph "
                        f"(direct edge {node}->{target} has no reverse)"
                    )


class _Builder:
    """Incrementally builds a duplicate-free Dedup2Graph pair by pair."""

    def __init__(self) -> None:
        self.graph = Dedup2Graph()
        self.covered: set[tuple[Hashable, Hashable]] = set()

    # -------------------------------------------------------------- #
    def covered_pair(self, a: Hashable, b: Hashable) -> bool:
        return _pair(a, b) in self.covered

    def _mark_clique(self, members: list[Hashable]) -> None:
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                self.covered.add(_pair(a, b))

    def _mark_cross(self, left: list[Hashable], right: list[Hashable]) -> None:
        for a in left:
            for b in right:
                if a != b:
                    self.covered.add(_pair(a, b))

    # -------------------------------------------------------------- #
    def add_group(self, members: list[Hashable]) -> int:
        """Create a virtual node over ``members`` (all pairs must be uncovered)."""
        virtual = self.graph.new_virtual_node(members)
        self._mark_clique(members)
        return virtual

    def can_connect(self, first: int, second: int) -> bool:
        """True if connecting two groups would not double-cover any pair."""
        left = self.graph.members(first)
        right = self.graph.members(second)
        for a in left:
            for b in right:
                if a != b and self.covered_pair(a, b):
                    return False
        return True

    def connect(self, first: int, second: int) -> None:
        self.graph.connect_virtual(first, second)
        self._mark_cross(self.graph.members(first), self.graph.members(second))


def _grow_groups(
    builder: _Builder, members: list[Hashable]
) -> list[list[Hashable]]:
    """Greedily partition ``members`` into groups whose internal pairs are all
    still uncovered (each group will become one virtual node)."""
    groups: list[list[Hashable]] = []
    for member in members:
        placed = False
        for group in groups:
            if all(not builder.covered_pair(member, other) for other in group):
                group.append(member)
                placed = True
                break
        if not placed:
            groups.append([member])
    return groups


def deduplicate(condensed: CondensedGraph, in_place: bool = False) -> Dedup2Graph:
    """Build a DEDUP-2 representation equivalent to ``condensed``.

    The logical edge sets are compared *ignoring self-loops* (DEDUP-2 cannot
    represent them; see :mod:`repro.graph.dedup2`).
    """
    del in_place  # the input is never mutated; kept for interface symmetry
    check_symmetric_single_layer(condensed)

    builder = _Builder()
    for node in condensed.real_nodes():
        builder.graph.add_vertex(
            condensed.external(node), **condensed.node_properties.get(node, {})
        )

    # clique member sets, largest first (paper: most constrained first)
    cliques: list[list[Hashable]] = []
    for virtual in condensed.virtual_nodes():
        members = sorted(
            {condensed.external(n) for n in condensed.virtual_out_real(virtual)}, key=repr
        )
        if len(members) >= 1:
            cliques.append(members)
    # symmetric direct edges act as 2-member cliques
    seen_direct: set[tuple[Hashable, Hashable]] = set()
    for node in condensed.real_nodes():
        for target in condensed.out(node):
            if condensed.is_real(target) and target != node:
                key = _pair(condensed.external(node), condensed.external(target))
                if key not in seen_direct:
                    seen_direct.add(key)
                    cliques.append(list(key))
    cliques.sort(key=len, reverse=True)

    for members in cliques:
        # pairs of this clique that still need coverage
        needs = [
            (a, b)
            for i, a in enumerate(members)
            for b in members[i + 1 :]
            if not builder.covered_pair(a, b)
        ]
        if not needs:
            continue

        # only members that still participate in an uncovered pair need to be
        # placed into groups; the rest are already fully covered elsewhere
        needed_members = [m for m in members if any(m in pair for pair in needs)]
        groups = _grow_groups(builder, needed_members)
        group_ids = [builder.add_group(group) for group in groups]

        # cover the cross-group pairs: connect whole groups when safe,
        # otherwise fall back to pair virtual nodes for the leftovers
        for i in range(len(group_ids)):
            for j in range(i + 1, len(group_ids)):
                if builder.can_connect(group_ids[i], group_ids[j]):
                    builder.connect(group_ids[i], group_ids[j])
                else:
                    for a in groups[i]:
                        for b in groups[j]:
                            if a != b and not builder.covered_pair(a, b):
                                builder.add_group([a, b])
    return builder.graph
