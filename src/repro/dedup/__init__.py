"""Preprocessing and deduplication algorithms (Section 5 of the paper).

Four DEDUP-1 algorithms, two BITMAP preprocessing algorithms, the DEDUP-2
greedy algorithm, expansion helpers and a flattening utility for multi-layer
graphs.  :data:`DEDUP1_ALGORITHMS` / :data:`BITMAP_ALGORITHMS` are registries
used by the benchmark harness (Figure 12).
"""

from typing import Callable

from repro.dedup.base import (
    DedupState,
    ORDERINGS,
    apply_ordering,
    flatten_to_single_layer,
    resolve_ordering,
)
from repro.dedup import (
    bitmap1,
    bitmap2,
    dedup2_greedy,
    greedy_real_first,
    greedy_virtual_first,
    naive_real_first,
    naive_virtual_first,
)
from repro.dedup.expand import (
    count_expanded_edges,
    expand,
    expand_virtual_node,
    expansion_ratio,
)
from repro.graph.bitmap import BitmapGraph
from repro.graph.condensed import CondensedGraph
from repro.graph.dedup1 import Dedup1Graph
from repro.graph.dedup2 import Dedup2Graph

#: name -> function(condensed, ordering=..., seed=...) -> Dedup1Graph
DEDUP1_ALGORITHMS: dict[str, Callable[..., Dedup1Graph]] = {
    "naive_virtual_first": naive_virtual_first.deduplicate,
    "naive_real_first": naive_real_first.deduplicate,
    "greedy_real_first": greedy_real_first.deduplicate,
    "greedy_virtual_first": greedy_virtual_first.deduplicate,
}

#: name -> function(condensed) -> BitmapGraph
BITMAP_ALGORITHMS: dict[str, Callable[..., BitmapGraph]] = {
    "bitmap1": bitmap1.preprocess,
    "bitmap2": bitmap2.preprocess,
}


def deduplicate_dedup1(
    condensed: CondensedGraph,
    algorithm: str = "greedy_virtual_first",
    ordering: str = "random",
    seed: int = 0,
) -> Dedup1Graph:
    """Run one of the DEDUP-1 algorithms by name."""
    try:
        fn = DEDUP1_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown DEDUP-1 algorithm {algorithm!r}; "
            f"expected one of {sorted(DEDUP1_ALGORITHMS)}"
        ) from None
    return fn(condensed, ordering=ordering, seed=seed)


def preprocess_bitmap(condensed: CondensedGraph, algorithm: str = "bitmap2") -> BitmapGraph:
    """Run one of the BITMAP preprocessing algorithms by name."""
    try:
        fn = BITMAP_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown BITMAP algorithm {algorithm!r}; "
            f"expected one of {sorted(BITMAP_ALGORITHMS)}"
        ) from None
    return fn(condensed)


def deduplicate_dedup2(condensed: CondensedGraph) -> Dedup2Graph:
    """Build the DEDUP-2 representation (single-layer symmetric graphs only)."""
    return dedup2_greedy.deduplicate(condensed)


__all__ = [
    "DedupState",
    "ORDERINGS",
    "apply_ordering",
    "resolve_ordering",
    "flatten_to_single_layer",
    "DEDUP1_ALGORITHMS",
    "BITMAP_ALGORITHMS",
    "deduplicate_dedup1",
    "preprocess_bitmap",
    "deduplicate_dedup2",
    "count_expanded_edges",
    "expand",
    "expand_virtual_node",
    "expansion_ratio",
    "bitmap1",
    "bitmap2",
    "dedup2_greedy",
    "greedy_real_first",
    "greedy_virtual_first",
    "naive_real_first",
    "naive_virtual_first",
]
