"""BITMAP-2 preprocessing (Sections 5.1.2 / 5.1.3).

Setting the *minimum* number of bitmaps is equivalent to set cover and
therefore NP-hard; BITMAP-2 uses the standard greedy set-cover heuristic:

* single-layer — for each real node ``u``, repeatedly pick the virtual node
  covering the most not-yet-covered neighbors, give it a bitmap whose set bits
  are exactly those newly covered neighbors, and finally *delete* the edges
  from ``u`` to the virtual nodes that contribute nothing new;
* multi-layer — the same principle is applied level by level: the traversal
  descends first into the sub-tree that reaches the most uncovered targets,
  bitmaps are set at every virtual node, and bits leading to sub-trees with no
  new coverage are cleared (the edges between virtual nodes are never deleted
  because other real nodes may still need them).

Compared to BITMAP-1 this stores far fewer bitmaps (only on the chosen
covering virtual nodes) at a higher preprocessing cost.
"""

from __future__ import annotations

from repro.dedup.base import remove_parallel_direct_edges
from repro.graph.bitmap import BitmapGraph
from repro.graph.condensed import CondensedGraph


def _reachable_real(condensed: CondensedGraph, virtual: int, cache: dict[int, set[int]]) -> set[int]:
    """Real nodes reachable from a virtual node (memoised per preprocessing run)."""
    if virtual in cache:
        return cache[virtual]
    result: set[int] = set()
    for target in condensed.out(virtual):
        if condensed.is_real(target):
            result.add(target)
        else:
            result |= _reachable_real(condensed, target, cache)
    cache[virtual] = result
    return result


def _cover_subtree(
    condensed: CondensedGraph,
    graph: BitmapGraph,
    source: int,
    virtual: int,
    covered: set[int],
    reach_cache: dict[int, set[int]],
    visited: set[int],
) -> bool:
    """Set bitmaps below ``virtual`` so that exactly the uncovered targets get
    emitted; returns True if the sub-tree contributed any new coverage."""
    if virtual in visited:
        # already configured for this source; it contributes nothing further
        return False
    visited.add(virtual)

    targets = condensed.out(virtual)
    # order virtual children by how many uncovered targets they can reach
    # (greedy, mirroring the paper's multi-layer descent rule)
    child_order = sorted(
        range(len(targets)),
        key=lambda position: -len(_reachable_real(condensed, targets[position], reach_cache))
        if condensed.is_virtual(targets[position])
        else 0,
    )
    bitmask = 0
    contributed = False
    for position in child_order:
        target = targets[position]
        if condensed.is_real(target):
            if target not in covered:
                covered.add(target)
                bitmask |= 1 << position
                contributed = True
        else:
            if _reachable_real(condensed, target, reach_cache) - covered:
                useful = _cover_subtree(
                    condensed, graph, source, target, covered, reach_cache, visited
                )
                if useful:
                    bitmask |= 1 << position
                    contributed = True
            # sub-trees with nothing new keep their bit cleared: the traversal
            # is pruned but the virtual-virtual edge is preserved for others
    graph.set_bitmap(virtual, source, bitmask)
    return contributed


def preprocess(condensed: CondensedGraph, in_place: bool = False) -> BitmapGraph:
    """Run BITMAP-2 and return a ready-to-query :class:`BitmapGraph`.

    Edges from a real node to a virtual node that contributes no new coverage
    for that real node are deleted (paper: "the edges from us to those nodes
    are simply deleted since there is no reason to traverse those").
    """
    working = condensed if in_place else condensed.copy()
    remove_parallel_direct_edges(working)
    graph = BitmapGraph(working)
    reach_cache: dict[int, set[int]] = {}

    for source in list(working.real_nodes()):
        covered: set[int] = {t for t in working.out(source) if working.is_real(t)}
        first_layer = [v for v in working.out(source) if working.is_virtual(v)]
        visited: set[int] = set()

        remaining = set(first_layer)
        while remaining:
            # greedy set cover: pick the virtual node reaching the most
            # uncovered targets
            best = max(
                remaining,
                key=lambda v: len(_reachable_real(working, v, reach_cache) - covered),
            )
            gain = _reachable_real(working, best, reach_cache) - covered
            if not gain:
                break
            _cover_subtree(working, graph, source, best, covered, reach_cache, visited)
            remaining.discard(best)

        # anything left in ``remaining`` covers nothing new: drop the edge
        for useless in remaining:
            working.remove_edge(source, useless)
    return graph
