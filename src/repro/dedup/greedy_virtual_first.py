"""Greedy Virtual Nodes First deduplication (Section 5.2.1, Figure 9).

Like the naive Virtual Nodes First algorithm, virtual nodes are admitted into
the partial graph one at a time; but when the incoming node ``V`` overlaps
already-processed virtual nodes, the edge to remove is chosen greedily by a
benefit/cost ratio inspired by the greedy vertex-cover approximation:

* *benefit* of removing ``V -> w`` — the number of processed virtual nodes
  whose overlap with ``V`` contains ``w`` (one removal can resolve several
  overlaps at once); removing ``Vi -> w`` always has benefit 1;
* *cost* — the number of compensating direct edges the removal forces.

Complexity: O(n_v * d * (n_v * d^2 + d)) in the worst case (paper's bound).
"""

from __future__ import annotations

from repro.dedup.base import DedupState, OrderingFn, apply_ordering, single_layer_virtual_nodes
from repro.graph.condensed import CondensedGraph
from repro.graph.dedup1 import Dedup1Graph


def _best_removal(
    state: DedupState, virtual: int, duplicated: list[int]
) -> tuple[int, int]:
    """Pick the single edge removal with the best benefit/cost ratio.

    Returns ``(owner, target)`` where ``owner`` is either ``virtual`` or one of
    the processed virtual nodes in ``duplicated``.
    """
    best: tuple[float, int, int, int] | None = None  # (ratio, benefit, owner, target)
    out_virtual = state.out_mask(virtual)
    out_masks = [state.out_mask(other) for other in duplicated]
    for other, out_other in zip(duplicated, out_masks):
        overlap = state.out_overlap(virtual, other)
        for target in overlap:
            bit = 1 << target
            benefit_new = (
                sum(1 for mask in out_masks if mask & bit) if out_virtual & bit else 0
            )
            cost_new = state.compensation_cost(virtual, target)
            ratio_new = benefit_new / (cost_new + 1)
            candidate_new = (ratio_new, benefit_new, virtual, target)

            cost_old = state.compensation_cost(other, target)
            ratio_old = 1.0 / (cost_old + 1)
            candidate_old = (ratio_old, 1, other, target)

            for candidate in (candidate_new, candidate_old):
                if best is None or candidate[0] > best[0]:
                    best = candidate
    assert best is not None, "caller guarantees at least one duplicated pair"
    return best[2], best[3]


def deduplicate(
    condensed: CondensedGraph,
    ordering: str | OrderingFn = "random",
    seed: int = 0,
    in_place: bool = False,
) -> Dedup1Graph:
    """Run the Greedy Virtual Nodes First algorithm and return a DEDUP-1 graph."""
    working = condensed if in_place else condensed.copy()
    state = DedupState(working)
    state.normalize()

    virtuals = apply_ordering(state, single_layer_virtual_nodes(working), ordering, seed=seed)
    processed: list[int] = []
    has_duplication = state.has_duplication_between
    for virtual in virtuals:
        # edge removals only ever shrink overlaps, so the duplicated set can
        # be filtered incrementally instead of rescanning all processed nodes
        duplicated = [other for other in processed if has_duplication(virtual, other)]
        while duplicated:
            owner, target = _best_removal(state, virtual, duplicated)
            state.remove_virtual_out_edge(owner, target)
            duplicated = [other for other in duplicated if has_duplication(virtual, other)]
        processed.append(virtual)

    return Dedup1Graph(working, trusted=True)
