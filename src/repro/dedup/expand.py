"""Expansion of condensed graphs (the EXP endpoint of the spectrum).

Expanding is conceptually trivial — materialise every reachable pair — but it
is the operation the whole paper tries to avoid; it is provided both as the
baseline representation for the experiments and for the "expand if the
increase is small" decision in the extraction pipeline (Section 4.2, Step 6).
"""

from __future__ import annotations

from repro.graph.condensed import CondensedGraph
from repro.graph.expanded import ExpandedGraph


def count_expanded_edges(condensed: CondensedGraph) -> int:
    """Number of edges the expanded graph would have (no materialisation of
    the adjacency lists, but the per-source neighbor sets are computed)."""
    return condensed.expanded_edge_count()


def expand(condensed: CondensedGraph) -> ExpandedGraph:
    """Materialise the expanded (EXP) graph for a condensed graph.

    Node properties and edge annotations (aggregate weights of direct edges)
    carry over to the expanded graph.
    """
    graph = ExpandedGraph()
    for node in condensed.real_nodes():
        graph.add_vertex(
            condensed.external(node), **condensed.node_properties.get(node, {})
        )
    for node in condensed.real_nodes():
        source = condensed.external(node)
        # neighbor_set targets are unique and every real node is already a
        # vertex, so the raw append path keeps expansion linear in the output
        for target in condensed.neighbor_set(node):
            graph._append_edge(source, condensed.external(target))
    for (source, target), properties in condensed.edge_annotations.items():
        external_source = condensed.external(source)
        external_target = condensed.external(target)
        for key, value in properties.items():
            graph.set_edge_property(external_source, external_target, key, value)
    return graph


def expansion_ratio(condensed: CondensedGraph) -> float:
    """``expanded edges / condensed edges`` — how much larger EXP would be."""
    condensed_edges = condensed.num_condensed_edges
    if condensed_edges == 0:
        return 1.0
    return count_expanded_edges(condensed) / condensed_edges


def expand_virtual_node(condensed: CondensedGraph, virtual: int) -> int:
    """Expand a single virtual node in place (Step 6 preprocessing).

    The virtual node is removed and direct edges are added from each of its
    in-neighbors to each of its out-neighbors (skipping edges that already
    exist, which would otherwise introduce duplication).  Returns the number
    of direct edges added.
    """
    in_nodes = list(condensed.inn(virtual))
    out_nodes = list(condensed.out(virtual))
    added = 0
    for source in in_nodes:
        existing = set(condensed.out(source))
        for target in out_nodes:
            if target not in existing:
                condensed.add_edge(source, target)
                existing.add(target)
                added += 1
    condensed.remove_virtual_node(virtual)
    return added
