"""BITMAP-1 preprocessing (Section 5.1.1).

For every real node ``u`` a depth-first traversal from ``u_s`` records, in a
hash set ``H_u``, the real nodes already reachable; every *penultimate*
virtual node visited (one with at least one real out-neighbor) receives a
bitmap for ``u`` whose bits select exactly the out-edges leading to real nodes
not yet in ``H_u``.  Out-edges to other virtual nodes are always followed
(their bit is kept set), so the approach works for multi-layer graphs too.

The number of condensed edges is unchanged; only bitmaps are added.  This is
the fastest preprocessing algorithm (the paper's worst case is
O(n_r * d^(k+1))) but it creates a bitmap on every penultimate virtual node a
node can reach.
"""

from __future__ import annotations

from repro.dedup.base import remove_parallel_direct_edges
from repro.graph.bitmap import BitmapGraph
from repro.graph.condensed import CondensedGraph


def preprocess(condensed: CondensedGraph, in_place: bool = False) -> BitmapGraph:
    """Run BITMAP-1 and return a ready-to-query :class:`BitmapGraph`."""
    working = condensed if in_place else condensed.copy()
    remove_parallel_direct_edges(working)
    graph = BitmapGraph(working)

    for source in working.real_nodes():
        seen: set[int] = set()
        # direct real targets are always emitted by the traversal, so they
        # must be claimed before any bitmap bit is granted
        for target in working.out(source):
            if working.is_real(target):
                seen.add(target)

        visited_virtual: set[int] = set()
        stack = [v for v in working.out(source) if working.is_virtual(v)]
        while stack:
            virtual = stack.pop()
            if virtual in visited_virtual:
                continue
            visited_virtual.add(virtual)
            targets = working.out(virtual)
            has_real_out = any(working.is_real(t) for t in targets)
            bitmask = 0
            for position, target in enumerate(targets):
                if working.is_virtual(target):
                    bitmask |= 1 << position
                    stack.append(target)
                else:
                    if target not in seen:
                        seen.add(target)
                        bitmask |= 1 << position
            if has_real_out:
                graph.set_bitmap(virtual, source, bitmask)
    return graph
