"""Shared machinery for the deduplication algorithms.

All DEDUP-1 algorithms in Section 5.2 operate on a *single-layer* condensed
graph and repeatedly perform the same two primitive rewrites:

* remove an out-edge ``V -> w`` of a virtual node, adding compensating direct
  edges ``u -> w`` for every in-node ``u`` of ``V`` that would otherwise lose
  the logical edge;
* remove an in-edge ``u -> V``, adding compensating direct edges ``u -> w``
  for every out-node ``w`` of ``V`` that ``u`` would otherwise lose.

:class:`DedupState` wraps a condensed graph together with an incrementally
maintained *coverage map* ``cover[u][w]`` = number of distinct paths from
``u_s`` to ``w_t``, so the primitives can decide in O(1) whether a
compensating direct edge is required, and the algorithms can detect remaining
duplication cheaply.  The coverage map is proportional to the expanded edge
set, which is why (as the paper observes) the DEDUP-1 algorithms do not scale
to the Table-3-sized datasets — they are meant for the small/medium graphs of
Section 6.1.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exceptions import DeduplicationError
from repro.graph.condensed import CondensedGraph
from repro.utils.rand import SeededRandom

#: name -> ordering function over (state, node ids) used by Figure 12b
OrderingFn = Callable[["DedupState", list[int]], list[int]]


def ordering_random(state: "DedupState", nodes: list[int], seed: int = 0) -> list[int]:
    """RAND ordering from the paper (recommended default)."""
    rng = SeededRandom(seed)
    return rng.shuffle(list(nodes))


def ordering_by_degree(state: "DedupState", nodes: list[int]) -> list[int]:
    """Process high-degree nodes first."""
    return sorted(nodes, key=lambda n: -len(state.cg.out(n)))


def ordering_by_degree_asc(state: "DedupState", nodes: list[int]) -> list[int]:
    """Process low-degree nodes first."""
    return sorted(nodes, key=lambda n: len(state.cg.out(n)))


ORDERINGS: dict[str, OrderingFn] = {
    "random": ordering_random,
    "degree_desc": ordering_by_degree,
    "degree_asc": ordering_by_degree_asc,
}


def resolve_ordering(ordering: str | OrderingFn) -> OrderingFn:
    if callable(ordering):
        return ordering
    try:
        return ORDERINGS[ordering]
    except KeyError:
        raise DeduplicationError(
            f"unknown ordering {ordering!r}; expected one of {sorted(ORDERINGS)}"
        ) from None


def bits(mask: int) -> set[int]:
    """Decode a bitmask into the set of set-bit positions."""
    result: set[int] = set()
    while mask:
        low = mask & -mask
        result.add(low.bit_length() - 1)
        mask ^= low
    return result


class DedupState:
    """A condensed graph plus its per-source coverage counters.

    Besides the coverage map, the state lazily caches each virtual node's
    in/out real-neighbor sets as *integer bitmasks over internal real-node
    IDs* (the same trick the BITMAP representation uses for traversal).
    Overlap tests between virtual nodes — the innermost operation of every
    deduplication algorithm — become single big-int ANDs instead of building
    two Python sets per probe.
    """

    def __init__(self, condensed: CondensedGraph, require_single_layer: bool = True) -> None:
        if require_single_layer and not condensed.is_single_layer():
            raise DeduplicationError(
                "this deduplication algorithm only supports single-layer "
                "condensed graphs; flatten the graph first "
                "(repro.dedup.flatten_to_single_layer) or use BITMAP-2"
            )
        self.cg = condensed
        #: cover[u][w] = number of condensed paths from u_s to w_t
        self.cover: dict[int, dict[int, int]] = {}
        #: virtual node -> (in_mask, out_mask) over internal real IDs (lazy)
        self._vmask: dict[int, tuple[int, int]] = {}
        self._build_cover()

    # ------------------------------------------------------------------ #
    # coverage map maintenance
    # ------------------------------------------------------------------ #
    def _build_cover(self) -> None:
        for u in self.cg.real_nodes():
            counts: dict[int, int] = {}
            for target in self.cg.reachable_real_targets(u):
                counts[target] = counts.get(target, 0) + 1
            self.cover[u] = counts

    def _inc(self, u: int, w: int, delta: int = 1) -> int:
        counts = self.cover.setdefault(u, {})
        counts[w] = counts.get(w, 0) + delta
        if counts[w] <= 0:
            counts.pop(w, None)
            return 0
        return counts[w]

    def count(self, u: int, w: int) -> int:
        return self.cover.get(u, {}).get(w, 0)

    # ------------------------------------------------------------------ #
    # virtual-node views
    # ------------------------------------------------------------------ #
    def in_real(self, virtual: int) -> list[int]:
        """I(V): real in-nodes of ``virtual``."""
        return self.cg.virtual_in_real(virtual)

    def out_real(self, virtual: int) -> list[int]:
        """O(V): real out-nodes of ``virtual``."""
        return self.cg.virtual_out_real(virtual)

    # ------------------------------------------------------------------ #
    # bitmask caches over the virtual nodes' real neighborhoods
    # ------------------------------------------------------------------ #
    def _masks(self, virtual: int) -> tuple[int, int]:
        masks = self._vmask.get(virtual)
        if masks is None:
            in_mask = 0
            for node in self.cg.pred[virtual]:
                if node >= 0:
                    in_mask |= 1 << node
            out_mask = 0
            for node in self.cg.succ[virtual]:
                if node >= 0:
                    out_mask |= 1 << node
            masks = self._vmask[virtual] = (in_mask, out_mask)
        return masks

    def in_mask(self, virtual: int) -> int:
        """I(V) as a bitmask over internal real IDs."""
        return self._masks(virtual)[0]

    def out_mask(self, virtual: int) -> int:
        """O(V) as a bitmask over internal real IDs."""
        return self._masks(virtual)[1]

    def _invalidate_virtual(self, virtual: int) -> None:
        self._vmask.pop(virtual, None)

    def out_overlap(self, first: int, second: int) -> set[int]:
        return bits(self.out_mask(first) & self.out_mask(second))

    def in_overlap(self, first: int, second: int) -> set[int]:
        return bits(self.in_mask(first) & self.in_mask(second))

    def has_duplication_between(self, first: int, second: int) -> bool:
        """True if some pair (u, w) is covered through both virtual nodes."""
        in_first, out_first = self._masks(first)
        in_second, out_second = self._masks(second)
        return bool(in_first & in_second) and bool(out_first & out_second)

    # ------------------------------------------------------------------ #
    # primitive rewrites (all equivalence-preserving)
    # ------------------------------------------------------------------ #
    def remove_virtual_out_edge(self, virtual: int, target: int) -> int:
        """Remove ``virtual -> target``; compensate in-nodes that relied on it.

        Returns the number of compensating direct edges added.
        """
        if not self.cg.has_edge(virtual, target):
            raise DeduplicationError(f"edge {virtual}->{target} not present")
        compensations = 0
        for u in self.in_real(virtual):
            remaining = self._inc(u, target, -1)
            if remaining == 0:
                self.cg.add_edge(u, target)
                self._inc(u, target, +1)
                compensations += 1
        self.cg.remove_edge(virtual, target)
        self._invalidate_virtual(virtual)
        return compensations

    def remove_real_to_virtual_edge(self, source: int, virtual: int) -> int:
        """Remove ``source -> virtual``; compensate ``source`` for lost targets.

        Returns the number of compensating direct edges added.
        """
        if not self.cg.has_edge(source, virtual):
            raise DeduplicationError(f"edge {source}->{virtual} not present")
        compensations = 0
        for target in self.out_real(virtual):
            remaining = self._inc(source, target, -1)
            if remaining == 0:
                self.cg.add_edge(source, target)
                self._inc(source, target, +1)
                compensations += 1
        self.cg.remove_edge(source, virtual)
        self._invalidate_virtual(virtual)
        return compensations

    def remove_direct_edge(self, source: int, target: int) -> None:
        """Remove a redundant direct edge (only legal when another path exists)."""
        if self.count(source, target) <= 1:
            raise DeduplicationError(
                f"direct edge {source}->{target} is the only path; removing it "
                f"would change the graph"
            )
        self.cg.remove_edge(source, target)
        self._inc(source, target, -1)

    def compensation_cost(self, virtual: int, target: int) -> int:
        """Number of direct edges :meth:`remove_virtual_out_edge` would add."""
        return sum(1 for u in self.in_real(virtual) if self.count(u, target) == 1)

    # ------------------------------------------------------------------ #
    # normalisation / cleanup passes shared by all algorithms
    # ------------------------------------------------------------------ #
    def normalize(self) -> None:
        """Remove parallel condensed edges and redundant direct edges.

        * duplicate entries in any adjacency list are pure duplication;
        * a direct real→real edge whose pair is also covered through a virtual
          node is redundant.
        """
        self._vmask.clear()  # parallel-edge removal touches arbitrary nodes
        # parallel edges out of any node
        for node in list(self.cg.succ):
            targets = self.cg.out(node)
            seen: set[int] = set()
            for target in list(targets):
                if target in seen:
                    self.cg.remove_edge(node, target)
                    if self.cg.is_real(node) and self.cg.is_real(target):
                        self._inc(node, target, -1)
                    elif self.cg.is_virtual(node) and self.cg.is_real(target):
                        for u in self.in_real(node):
                            self._inc(u, target, -1)
                    # parallel real->virtual edges: decrement for all targets
                    elif self.cg.is_real(node) and self.cg.is_virtual(target):
                        for w in self.out_real(target):
                            self._inc(node, w, -1)
                else:
                    seen.add(target)
        # redundant direct edges
        for u in list(self.cg.real_nodes()):
            for target in [t for t in self.cg.out(u) if self.cg.is_real(t)]:
                if self.count(u, target) > 1:
                    self.remove_direct_edge(u, target)

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #
    def is_fully_deduplicated(self) -> bool:
        return all(
            count <= 1 for counts in self.cover.values() for count in counts.values()
        )

    def remaining_duplicates(self) -> int:
        return sum(
            count - 1 for counts in self.cover.values() for count in counts.values() if count > 1
        )


def remove_parallel_direct_edges(condensed: CondensedGraph) -> int:
    """Remove duplicate occurrences of the same direct real→real edge.

    Extraction never produces them (its SQL uses DISTINCT) but hand-built
    condensed graphs may contain them; they are pure duplication.  Returns the
    number of parallel edges removed.
    """
    removed = 0
    for node in list(condensed.real_nodes()):
        seen: set[int] = set()
        for target in list(condensed.out(node)):
            if not condensed.is_real(target):
                continue
            if target in seen:
                condensed.remove_edge(node, target)
                removed += 1
            else:
                seen.add(target)
    return removed


def single_layer_virtual_nodes(condensed: CondensedGraph) -> list[int]:
    """All virtual nodes of a single-layer condensed graph (stable order)."""
    return sorted(condensed.virtual_nodes(), reverse=True)


def flatten_to_single_layer(condensed: CondensedGraph) -> CondensedGraph:
    """Convert a multi-layer condensed graph into an equivalent single-layer one.

    Every *penultimate* virtual node ``V`` (one with at least one real
    out-neighbor) becomes a virtual node of the flattened graph with
    ``I'(V) = {real u : V reachable from u_s}`` and ``O'(V)`` equal to ``V``'s
    real out-neighbors; direct real→real edges are copied verbatim.  This is
    the "expand all but one layer" strategy Section 5.2.2 suggests before
    running a single-layer deduplication algorithm.
    """
    flat = CondensedGraph()
    for node in condensed.real_nodes():
        flat.add_real_node(condensed.external(node), **condensed.node_properties.get(node, {}))

    penultimate = [
        v
        for v in condensed.virtual_nodes()
        if any(condensed.is_real(t) for t in condensed.out(v))
    ]
    reachers: dict[int, list[int]] = {v: [] for v in penultimate}
    for u in condensed.real_nodes():
        for virtual in condensed.virtual_nodes_reachable(u):
            if virtual in reachers:
                reachers[virtual].append(u)

    for virtual in penultimate:
        label = condensed.virtual_labels.get(virtual)
        new_virtual = flat.add_virtual_node(label)
        for u in reachers[virtual]:
            flat.add_edge(flat.internal(condensed.external(u)), new_virtual)
        for target in condensed.out(virtual):
            if condensed.is_real(target):
                flat.add_edge(new_virtual, flat.internal(condensed.external(target)))

    for u in condensed.real_nodes():
        for target in condensed.out(u):
            if condensed.is_real(target):
                flat.add_edge(
                    flat.internal(condensed.external(u)),
                    flat.internal(condensed.external(target)),
                )
    return flat


def apply_ordering(
    state: DedupState, nodes: Iterable[int], ordering: str | OrderingFn, seed: int = 0
) -> list[int]:
    """Order ``nodes`` according to an ordering name or custom function."""
    fn = resolve_ordering(ordering)
    nodes = list(nodes)
    if fn is ordering_random:
        return ordering_random(state, nodes, seed=seed)
    return fn(state, nodes)
