"""Greedy Real Nodes First deduplication (Section 5.2.1, Figure 8).

Each real node ``u`` is deduplicated individually: a greedy, set-cover-style
selection decides which of ``u``'s virtual nodes to stay connected to
(``V'``).  Keeping a virtual node saves the direct edges to the neighbors it
newly covers, but costs the removal of its out-edges to already-covered
neighbors (with compensating direct edges for the *other* in-nodes that relied
on them).  Virtual nodes whose benefit is not positive are dropped and ``u``
is connected to the uncovered neighbors through direct edges instead.

Complexity: roughly O(n_r * d^5) in the worst case (paper's bound).
"""

from __future__ import annotations

from repro.dedup.base import DedupState, OrderingFn, apply_ordering
from repro.graph.condensed import CondensedGraph
from repro.graph.dedup1 import Dedup1Graph


def _benefit(state: DedupState, source: int, virtual: int, covered: set[int]) -> int:
    """Edge-count reduction from keeping ``virtual`` for ``source`` given the
    targets already ``covered`` by previously kept mechanisms."""
    out = state.out_real(virtual)
    new_targets = [w for w in out if w not in covered]
    conflicts = [w for w in out if w in covered]
    # keeping the virtual node saves one direct edge per newly covered target
    # but keeps the source->virtual edge itself (-1) and pays for removing the
    # conflicting out-edges: each removal deletes one edge (+1) but adds one
    # compensating direct edge per other in-node that loses its last path.
    saving = len(new_targets) - 1
    removal_cost = 0
    for target in conflicts:
        compensations = sum(
            1
            for other in state.in_real(virtual)
            if other != source and state.count(other, target) == 1
        )
        removal_cost += compensations - 1
    return saving - removal_cost


def _deduplicate_vertex(state: DedupState, source: int) -> None:
    working = state.cg
    virtuals = [v for v in working.out(source) if working.is_virtual(v)]
    if not virtuals:
        return
    covered: set[int] = {t for t in working.out(source) if working.is_real(t)}
    kept: list[int] = []
    candidates = set(virtuals)

    while candidates:
        best_virtual = None
        best_benefit = 0
        for virtual in sorted(candidates, reverse=True):
            benefit = _benefit(state, source, virtual, covered)
            if benefit > best_benefit:
                best_virtual = virtual
                best_benefit = benefit
        if best_virtual is None:
            break
        covered.update(state.out_real(best_virtual))
        kept.append(best_virtual)
        candidates.remove(best_virtual)

    # drop the remaining virtual nodes: the primitive adds the direct edges
    # for any neighbor that would otherwise be lost
    for virtual in sorted(candidates, reverse=True):
        state.remove_real_to_virtual_edge(source, virtual)

    # resolve the remaining duplication among the kept mechanisms: for every
    # target still covered more than once, drop the redundant direct edge
    # first (cheapest) and only then the virtual out-edge
    for virtual in kept:
        for target in list(state.out_real(virtual)):
            if state.count(source, target) > 1 and state.cg.has_edge(source, target):
                state.remove_direct_edge(source, target)
            if state.count(source, target) > 1:
                state.remove_virtual_out_edge(virtual, target)


def deduplicate(
    condensed: CondensedGraph,
    ordering: str | OrderingFn = "random",
    seed: int = 0,
    in_place: bool = False,
) -> Dedup1Graph:
    """Run the Greedy Real Nodes First algorithm and return a DEDUP-1 graph."""
    working = condensed if in_place else condensed.copy()
    state = DedupState(working)
    state.normalize()

    for real in apply_ordering(state, working.real_nodes(), ordering, seed=seed):
        _deduplicate_vertex(state, real)

    return Dedup1Graph(working, trusted=True)
