"""Recursive-descent parser for the GraphGen extraction DSL.

Grammar (informal)::

    spec        := rule+
    rule        := head ":-" body "."
    head        := ("Nodes" | "Edges") "(" termlist ")"
    body        := bodyitem ("," bodyitem)*
    bodyitem    := atom | comparison
    atom        := IDENT "(" termlist ")"
    termlist    := term ("," term)*
    term        := IDENT | "_" | NUMBER | STRING
    comparison  := IDENT OP (NUMBER | STRING | IDENT)

Identifiers in term position are variables; identifiers in predicate position
are table names (or the special ``Nodes`` / ``Edges`` head predicates).
"""

from __future__ import annotations

from typing import Any

from repro.dsl.ast import (
    AGGREGATE_FUNCTION_NAMES,
    AggregateConstraint,
    AggregateTerm,
    Anonymous,
    Atom,
    ComparisonPredicate,
    Constant,
    EDGES_PREDICATE,
    GraphSpec,
    NODES_PREDICATE,
    Rule,
    Term,
    Variable,
)
from repro.dsl.lexer import Token, tokenize
from repro.exceptions import DSLSyntaxError


def _number_value(text: str) -> Any:
    return float(text) if "." in text else int(text)


class Parser:
    """Parse a token stream into a :class:`GraphSpec`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            raise DSLSyntaxError(
                f"expected {expected!r} but found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # ------------------------------------------------------------------ #
    # grammar productions
    # ------------------------------------------------------------------ #
    def parse(self) -> GraphSpec:
        spec = GraphSpec()
        while self._peek().kind != "EOF":
            rule = self._rule()
            if rule.is_nodes_rule:
                spec.node_rules.append(rule)
            elif rule.is_edges_rule:
                spec.edge_rules.append(rule)
            else:
                raise DSLSyntaxError(
                    f"rule head must be {NODES_PREDICATE!r} or {EDGES_PREDICATE!r}, "
                    f"got {rule.head.predicate!r}"
                )
        spec.validate_shape()
        return spec

    def _rule(self) -> Rule:
        head = self._atom()
        self._expect("IMPLIES")
        atoms: list[Atom] = []
        comparisons: list[ComparisonPredicate] = []
        aggregate_constraints: list[AggregateConstraint] = []
        while True:
            item = self._body_item()
            if isinstance(item, Atom):
                atoms.append(item)
            elif isinstance(item, AggregateConstraint):
                aggregate_constraints.append(item)
            else:
                comparisons.append(item)
            token = self._peek()
            if token.kind == "COMMA":
                self._advance()
                continue
            break
        self._expect("DOT")
        if not atoms:
            raise DSLSyntaxError("rule body must contain at least one table atom")
        return Rule(
            head=head,
            body=tuple(atoms),
            comparisons=tuple(comparisons),
            aggregate_constraints=tuple(aggregate_constraints),
        )

    def _body_item(self) -> Atom | ComparisonPredicate | AggregateConstraint:
        token = self._peek()
        if token.kind != "IDENT":
            raise DSLSyntaxError(
                f"expected a predicate or comparison, found {token.value!r}",
                token.line,
                token.column,
            )
        # lookahead: aggregate IDENT '(' => HAVING-style constraint,
        # other IDENT '(' => atom, IDENT OP => comparison
        next_token = self._tokens[self._pos + 1]
        if next_token.kind == "LPAREN":
            if token.value.lower() in AGGREGATE_FUNCTION_NAMES:
                return self._aggregate_constraint()
            return self._atom()
        if next_token.kind == "OP":
            return self._comparison()
        raise DSLSyntaxError(
            f"expected '(' or a comparison operator after {token.value!r}",
            next_token.line,
            next_token.column,
        )

    def _atom(self) -> Atom:
        name = self._expect("IDENT").value
        self._expect("LPAREN")
        terms: list[Term] = [self._term()]
        while self._peek().kind == "COMMA":
            self._advance()
            terms.append(self._term())
        self._expect("RPAREN")
        return Atom(predicate=name, terms=tuple(terms))

    def _term(self) -> Term:
        token = self._peek()
        if token.kind == "IDENT":
            if (
                token.value.lower() in AGGREGATE_FUNCTION_NAMES
                and self._tokens[self._pos + 1].kind == "LPAREN"
            ):
                return self._aggregate_term()
            self._advance()
            return Variable(token.value)
        if token.kind == "UNDERSCORE":
            self._advance()
            return Anonymous()
        if token.kind == "NUMBER":
            self._advance()
            return Constant(_number_value(token.value))
        if token.kind == "STRING":
            self._advance()
            return Constant(token.value)
        raise DSLSyntaxError(f"expected a term, found {token.value!r}", token.line, token.column)

    def _aggregate_term(self) -> AggregateTerm:
        function = self._expect("IDENT").value.lower()
        self._expect("LPAREN")
        variable = Variable(self._expect("IDENT").value)
        self._expect("RPAREN")
        return AggregateTerm(function=function, variable=variable)

    def _aggregate_constraint(self) -> AggregateConstraint:
        aggregate = self._aggregate_term()
        op = self._expect("OP").value
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value: Any = _number_value(token.value)
        elif token.kind == "STRING":
            self._advance()
            value = token.value
        else:
            raise DSLSyntaxError(
                f"expected a literal after {aggregate} {op}, found {token.value!r}",
                token.line,
                token.column,
            )
        return AggregateConstraint(aggregate=aggregate, op=op, value=value)

    def _comparison(self) -> ComparisonPredicate:
        variable = Variable(self._expect("IDENT").value)
        op = self._expect("OP").value
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value: Any = _number_value(token.value)
        elif token.kind == "STRING":
            self._advance()
            value = token.value
        else:
            raise DSLSyntaxError(
                f"expected a literal after comparison operator, found {token.value!r}",
                token.line,
                token.column,
            )
        return ComparisonPredicate(variable=variable, op=op, value=value)


def parse(source: str) -> GraphSpec:
    """Parse DSL source text into a validated :class:`GraphSpec`."""
    return Parser(tokenize(source)).parse()
