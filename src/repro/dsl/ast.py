"""Abstract syntax tree for the GraphGen extraction DSL.

A parsed extraction query is a :class:`GraphSpec`: one or more ``Nodes``
rules and one or more ``Edges`` rules, each rule a head atom defined by a
conjunction of body atoms over database tables plus optional comparison
predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.exceptions import DSLValidationError

NODES_PREDICATE = "Nodes"
EDGES_PREDICATE = "Edges"


# --------------------------------------------------------------------------- #
# terms
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Variable:
    """A named logical variable, e.g. ``ID1`` or ``PubID``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A literal constant (number or string)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Anonymous:
    """The anonymous variable ``_`` (don't-care position)."""

    def __str__(self) -> str:
        return "_"


#: aggregate functions accepted by the DSL (lower-case); mirrors
#: :data:`repro.relational.aggregates.AGGREGATE_FUNCTIONS`
AGGREGATE_FUNCTION_NAMES = ("count", "count_distinct", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateTerm:
    """An aggregate expression ``function(variable)``.

    Allowed in two places (Section 3.2's "aggregation constructs"):

    * as an extra term of an ``Edges`` head, where it becomes an edge
      property of the extracted graph (e.g. ``Edges(ID1, ID2, count(PubID))``
      produces co-author edges weighted by the number of shared papers);
    * inside an :class:`AggregateConstraint` in a rule body, where it filters
      edges by the aggregate's value (e.g. ``count(PubID) >= 2``).
    """

    function: str
    variable: Variable

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTION_NAMES:
            raise DSLValidationError(
                f"unknown aggregate function {self.function!r}; "
                f"expected one of {AGGREGATE_FUNCTION_NAMES}"
            )

    @property
    def output_name(self) -> str:
        return f"{self.function}_{self.variable.name}"

    def __str__(self) -> str:
        return f"{self.function}({self.variable})"


Term = Variable | Constant | Anonymous | AggregateTerm


# --------------------------------------------------------------------------- #
# atoms and rules
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Atom:
    """``Predicate(t1, ..., tn)`` — predicate is a table name in rule bodies
    and ``Nodes``/``Edges`` in rule heads."""

    predicate: str
    terms: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Variable]:
        return [t for t in self.terms if isinstance(t, Variable)]

    def variable_names(self) -> list[str]:
        return [t.name for t in self.terms if isinstance(t, Variable)]

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"


@dataclass(frozen=True)
class ComparisonPredicate:
    """A built-in comparison in a rule body, e.g. ``Year > 2010``."""

    variable: Variable
    op: str
    value: Any

    def __str__(self) -> str:
        return f"{self.variable} {self.op} {self.value!r}"


@dataclass(frozen=True)
class AggregateConstraint:
    """A HAVING-style filter in a rule body, e.g. ``count(PubID) >= 2``."""

    aggregate: AggregateTerm
    op: str
    value: Any

    def __str__(self) -> str:
        return f"{self.aggregate} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Rule:
    """``head :- body_atoms, comparisons, aggregate_constraints.``"""

    head: Atom
    body: tuple[Atom, ...]
    comparisons: tuple[ComparisonPredicate, ...] = ()
    aggregate_constraints: tuple[AggregateConstraint, ...] = ()

    @property
    def is_nodes_rule(self) -> bool:
        return self.head.predicate == NODES_PREDICATE

    @property
    def is_edges_rule(self) -> bool:
        return self.head.predicate == EDGES_PREDICATE

    def body_variables(self) -> set[str]:
        names: set[str] = set()
        for atom in self.body:
            names.update(atom.variable_names())
        return names

    def head_aggregates(self) -> list[AggregateTerm]:
        """Aggregate terms appearing in the rule head (edge properties)."""
        return [t for t in self.head.terms if isinstance(t, AggregateTerm)]

    @property
    def has_aggregates(self) -> bool:
        """True if the rule uses any aggregation construct (forces Case 2)."""
        return bool(self.head_aggregates()) or bool(self.aggregate_constraints)

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        if self.comparisons:
            body += ", " + ", ".join(str(c) for c in self.comparisons)
        if self.aggregate_constraints:
            body += ", " + ", ".join(str(c) for c in self.aggregate_constraints)
        return f"{self.head} :- {body}."


# --------------------------------------------------------------------------- #
# graph specification
# --------------------------------------------------------------------------- #
@dataclass
class GraphSpec:
    """A full extraction query: at least one Nodes rule, at least one Edges rule."""

    node_rules: list[Rule] = field(default_factory=list)
    edge_rules: list[Rule] = field(default_factory=list)

    def all_rules(self) -> Iterator[Rule]:
        yield from self.node_rules
        yield from self.edge_rules

    def referenced_tables(self) -> list[str]:
        """Names of all database tables appearing in rule bodies (sorted, unique)."""
        tables: set[str] = set()
        for rule in self.all_rules():
            for atom in rule.body:
                tables.add(atom.predicate)
        return sorted(tables)

    def node_property_names(self) -> list[str]:
        """Property names attached to nodes — attributes beyond the ID in the
        first Nodes head (e.g. ``Name`` in ``Nodes(ID, Name)``)."""
        if not self.node_rules:
            return []
        head = self.node_rules[0].head
        return [t.name for t in head.terms[1:] if isinstance(t, Variable)]

    def validate_shape(self) -> None:
        """Check the structural constraints of Section 3.2:

        * at least one Nodes and one Edges statement,
        * Nodes heads have >= 1 term, the first being the node ID,
        * Edges heads have >= 2 terms, the first two being endpoint IDs,
        * every head variable appears in the rule body (safety).
        """
        if not self.node_rules:
            raise DSLValidationError("a graph specification needs at least one Nodes statement")
        if not self.edge_rules:
            raise DSLValidationError("a graph specification needs at least one Edges statement")
        for rule in self.node_rules:
            if rule.head.arity < 1:
                raise DSLValidationError(f"Nodes head must have at least an ID term: {rule}")
        for rule in self.edge_rules:
            if rule.head.arity < 2:
                raise DSLValidationError(
                    f"Edges head must have at least two ID terms: {rule}"
                )
        for rule in self.all_rules():
            body_vars = rule.body_variables()
            for term in rule.head.terms:
                if isinstance(term, Variable) and term.name not in body_vars:
                    raise DSLValidationError(
                        f"unsafe rule: head variable {term.name!r} does not occur "
                        f"in the body of {rule}"
                    )
                if isinstance(term, AggregateTerm) and term.variable.name not in body_vars:
                    raise DSLValidationError(
                        f"unsafe rule: aggregated variable {term.variable.name!r} does "
                        f"not occur in the body of {rule}"
                    )
            for constraint in rule.aggregate_constraints:
                if constraint.aggregate.variable.name not in body_vars:
                    raise DSLValidationError(
                        f"unsafe rule: aggregated variable "
                        f"{constraint.aggregate.variable.name!r} does not occur in the "
                        f"body of {rule}"
                    )
        # aggregate terms may only appear as *extra* terms of Edges heads
        for rule in self.node_rules:
            if rule.has_aggregates:
                raise DSLValidationError(
                    f"aggregation is only supported in Edges statements: {rule}"
                )
        for rule in self.edge_rules:
            for position, term in enumerate(rule.head.terms):
                if isinstance(term, AggregateTerm) and position < 2:
                    raise DSLValidationError(
                        f"the first two Edges head terms must be plain ID variables: {rule}"
                    )
            for atom in rule.body:
                if any(isinstance(t, AggregateTerm) for t in atom.terms):
                    raise DSLValidationError(
                        f"aggregate terms cannot appear inside body atoms: {rule}"
                    )

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.all_rules())


def make_variables(names: Sequence[str]) -> tuple[Term, ...]:
    """Helper for building atoms programmatically: ``'_'`` becomes Anonymous."""
    terms: list[Term] = []
    for name in names:
        if name == "_":
            terms.append(Anonymous())
        else:
            terms.append(Variable(name))
    return tuple(terms)
