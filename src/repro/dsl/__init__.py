"""The Datalog-based domain-specific language for specifying graph extraction.

Typical usage::

    from repro.dsl import parse, validate

    spec = parse('''
        Nodes(ID, Name) :- Author(ID, Name).
        Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
    ''')
    report = validate(spec, db)
"""

from repro.dsl.ast import (
    AGGREGATE_FUNCTION_NAMES,
    AggregateConstraint,
    AggregateTerm,
    Anonymous,
    Atom,
    ComparisonPredicate,
    Constant,
    GraphSpec,
    Rule,
    Term,
    Variable,
    make_variables,
)
from repro.dsl.lexer import Lexer, Token, tokenize
from repro.dsl.parser import Parser, parse
from repro.dsl.validator import (
    ChainLink,
    EdgeChain,
    ValidationReport,
    derive_chain,
    is_acyclic,
    validate,
)

__all__ = [
    "AGGREGATE_FUNCTION_NAMES",
    "AggregateConstraint",
    "AggregateTerm",
    "Anonymous",
    "Atom",
    "ComparisonPredicate",
    "Constant",
    "GraphSpec",
    "Rule",
    "Term",
    "Variable",
    "make_variables",
    "Lexer",
    "Token",
    "tokenize",
    "Parser",
    "parse",
    "ChainLink",
    "EdgeChain",
    "ValidationReport",
    "derive_chain",
    "is_acyclic",
    "validate",
]
