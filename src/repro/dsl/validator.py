"""Semantic validation and classification of extraction queries.

Beyond the syntactic checks in :meth:`GraphSpec.validate_shape`, GraphGen
needs to know (Section 3.3):

* **Case 1** — every Edges statement is an *acyclic*, aggregation-free
  conjunctive query: the condensed representation can be extracted.
* **Case 2** — otherwise: the full (expanded) edge set must be materialised
  with a single SQL query.

Acyclicity is checked with the classic GYO (Graham / Yu–Özsoyoğlu) ear-removal
reduction over the query hypergraph.  The validator also derives, for Case-1
Edges rules, a *join chain* of the form::

    Edges(ID1, ID2) :- R1(ID1, a1), R2(a1, a2), ..., Rn(a_{n-1}, ID2)

i.e. an ordering of the body atoms from the atom binding the source-ID to the
atom binding the target-ID with the join attribute linking each consecutive
pair — exactly the form Step 2 of Section 4.2 assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.ast import Atom, GraphSpec, Rule, Variable
from repro.exceptions import DSLValidationError
from repro.relational.database import Database


# --------------------------------------------------------------------------- #
# hypergraph acyclicity (GYO reduction)
# --------------------------------------------------------------------------- #
def is_acyclic(rule: Rule) -> bool:
    """True if the rule's body hypergraph is alpha-acyclic (GYO reduction)."""
    hyperedges: list[set[str]] = [set(atom.variable_names()) for atom in rule.body]
    hyperedges = [e for e in hyperedges if e]
    changed = True
    while changed and len(hyperedges) > 1:
        changed = False
        # 1. remove vertices that appear in exactly one hyperedge
        counts: dict[str, int] = {}
        for edge in hyperedges:
            for v in edge:
                counts[v] = counts.get(v, 0) + 1
        for edge in hyperedges:
            lonely = {v for v in edge if counts[v] == 1}
            if lonely:
                edge -= lonely
                changed = True
        hyperedges = [e for e in hyperedges if e]
        # 2. remove hyperedges contained in another hyperedge (ears)
        removed_index: int | None = None
        for i, edge in enumerate(hyperedges):
            for j, other in enumerate(hyperedges):
                if i != j and edge <= other:
                    removed_index = i
                    break
            if removed_index is not None:
                break
        if removed_index is not None:
            hyperedges.pop(removed_index)
            changed = True
    return len(hyperedges) <= 1


# --------------------------------------------------------------------------- #
# join-chain derivation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChainLink:
    """One atom in the linearised join chain of an Edges rule.

    ``in_variable`` is the variable shared with the previous atom (None for
    the first atom, where the source-ID variable plays that role) and
    ``out_variable`` the variable shared with the next atom (None for the
    last atom).
    """

    atom: Atom
    in_variable: str | None
    out_variable: str | None


@dataclass
class EdgeChain:
    """The join chain of a single Edges rule."""

    rule: Rule
    source_variable: str
    target_variable: str
    links: list[ChainLink]

    @property
    def join_variables(self) -> list[str]:
        """The chain's join attributes a1, ..., a_{n-1} in order."""
        return [link.out_variable for link in self.links[:-1] if link.out_variable is not None]

    def __len__(self) -> int:
        return len(self.links)


def derive_chain(rule: Rule) -> EdgeChain:
    """Linearise an acyclic Edges rule into a join chain from ID1 to ID2.

    Raises :class:`DSLValidationError` if the body cannot be ordered as a
    simple chain between the two head variables (e.g. the join graph branches
    in a way that prevents a path, or an endpoint variable is missing).
    """
    head_terms = rule.head.terms
    if len(head_terms) < 2 or not isinstance(head_terms[0], Variable) or not isinstance(head_terms[1], Variable):
        raise DSLValidationError(f"Edges head must start with two ID variables: {rule}")
    source_var = head_terms[0].name
    target_var = head_terms[1].name

    atoms = list(rule.body)
    source_atoms = [a for a in atoms if source_var in a.variable_names()]
    target_atoms = [a for a in atoms if target_var in a.variable_names()]
    if not source_atoms:
        raise DSLValidationError(f"no body atom binds the source variable {source_var!r}")
    if not target_atoms:
        raise DSLValidationError(f"no body atom binds the target variable {target_var!r}")

    # breadth-first search over atoms connected by shared variables, from an
    # atom binding ID1 to an atom binding ID2
    start = source_atoms[0]
    if len(atoms) == 1:
        only = atoms[0]
        if target_var not in only.variable_names():
            raise DSLValidationError(
                f"single-atom Edges rule must bind both endpoints: {rule}"
            )
        return EdgeChain(
            rule=rule,
            source_variable=source_var,
            target_variable=target_var,
            links=[ChainLink(atom=only, in_variable=None, out_variable=None)],
        )

    def shared_vars(a: Atom, b: Atom) -> set[str]:
        return set(a.variable_names()) & set(b.variable_names())

    # graph over atom indices
    n = len(atoms)
    adjacency: dict[int, list[int]] = {i: [] for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if shared_vars(atoms[i], atoms[j]):
                adjacency[i].append(j)
                adjacency[j].append(i)

    start_index = atoms.index(start)
    target_indexes = {atoms.index(a) for a in target_atoms}

    # BFS for shortest path start -> any target atom
    from collections import deque

    parents: dict[int, int | None] = {start_index: None}
    queue = deque([start_index])
    found: int | None = None
    # Prefer a target atom different from the start when the rule is a
    # self-join (e.g. the co-authors query), otherwise allow start==target.
    preferred_targets = target_indexes - {start_index} or target_indexes
    while queue:
        current = queue.popleft()
        if current in preferred_targets:
            found = current
            break
        for neighbor in adjacency[current]:
            if neighbor not in parents:
                parents[neighbor] = current
                queue.append(neighbor)
    if found is None:
        raise DSLValidationError(
            f"body atoms binding {source_var!r} and {target_var!r} are not connected: {rule}"
        )

    path: list[int] = []
    cursor: int | None = found
    while cursor is not None:
        path.append(cursor)
        cursor = parents[cursor]
    path.reverse()

    path_atoms = [atoms[i] for i in path]
    # atoms not on the path hang off it (e.g. property lookups); append them
    # after the atom they connect to so the chain still covers the whole body.
    remaining = [atoms[i] for i in range(n) if i not in path]
    ordered = list(path_atoms)
    while remaining:
        placed = False
        for atom in list(remaining):
            for position, existing in enumerate(ordered):
                if shared_vars(atom, existing):
                    ordered.insert(position + 1, atom)
                    remaining.remove(atom)
                    placed = True
                    break
            if placed:
                break
        if not placed:
            raise DSLValidationError(f"disconnected body atoms in Edges rule: {rule}")

    links: list[ChainLink] = []
    for index, atom in enumerate(ordered):
        in_var: str | None = None
        out_var: str | None = None
        if index > 0:
            shared = shared_vars(ordered[index - 1], atom)
            if not shared:
                raise DSLValidationError(
                    f"cannot linearise Edges rule into a join chain: {rule}"
                )
            in_var = sorted(shared)[0]
        if index < len(ordered) - 1:
            shared = shared_vars(atom, ordered[index + 1])
            if not shared:
                raise DSLValidationError(
                    f"cannot linearise Edges rule into a join chain: {rule}"
                )
            out_var = sorted(shared)[0]
        links.append(ChainLink(atom=atom, in_variable=in_var, out_variable=out_var))

    return EdgeChain(
        rule=rule, source_variable=source_var, target_variable=target_var, links=links
    )


# --------------------------------------------------------------------------- #
# whole-spec validation
# --------------------------------------------------------------------------- #
@dataclass
class ValidationReport:
    """Result of validating a :class:`GraphSpec` against a database."""

    spec: GraphSpec
    condensable: bool
    chains: list[EdgeChain]
    issues: list[str]

    @property
    def case(self) -> int:
        """1 if the condensed representation can be used, else 2."""
        return 1 if self.condensable else 2


def validate(spec: GraphSpec, db: Database | None = None) -> ValidationReport:
    """Validate a parsed spec; optionally check table/column references
    against a concrete database schema."""
    spec.validate_shape()
    issues: list[str] = []

    if db is not None:
        for rule in spec.all_rules():
            for atom in rule.body:
                if not db.has_table(atom.predicate):
                    raise DSLValidationError(
                        f"rule {rule} references unknown table {atom.predicate!r}"
                    )
                arity = db.table(atom.predicate).schema.arity
                if atom.arity != arity:
                    raise DSLValidationError(
                        f"atom {atom} has arity {atom.arity} but table "
                        f"{atom.predicate!r} has arity {arity}"
                    )

    condensable = True
    chains: list[EdgeChain] = []
    for rule in spec.edge_rules:
        if rule.has_aggregates:
            condensable = False
            issues.append(
                f"edges rule uses aggregation and requires full evaluation (Case 2): {rule}"
            )
            continue
        if not is_acyclic(rule):
            condensable = False
            issues.append(f"edges rule is cyclic: {rule}")
            continue
        try:
            chains.append(derive_chain(rule))
        except DSLValidationError as exc:
            condensable = False
            issues.append(str(exc))

    return ValidationReport(spec=spec, condensable=condensable, chains=chains, issues=issues)
