"""Tokenizer for the GraphGen Datalog-based DSL.

The DSL is a small non-recursive Datalog dialect (Section 3.2 of the paper):

.. code-block:: none

    Nodes(ID, Name) :- Author(ID, Name).
    Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).

Token kinds produced: ``IDENT``, ``NUMBER``, ``STRING``, ``LPAREN``,
``RPAREN``, ``COMMA``, ``IMPLIES`` (``:-``), ``DOT``, ``UNDERSCORE``,
``OP`` (comparison operators) and ``EOF``.  ``%`` and ``#`` start a comment
that runs to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import DSLSyntaxError

TOKEN_KINDS = (
    "IDENT",
    "NUMBER",
    "STRING",
    "LPAREN",
    "RPAREN",
    "COMMA",
    "IMPLIES",
    "DOT",
    "UNDERSCORE",
    "OP",
    "EOF",
)

_OPERATORS = ("<=", ">=", "!=", "==", "<", ">", "=")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Convert DSL source text into a stream of :class:`Token` objects."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ #
    def tokens(self) -> list[Token]:
        """Tokenize the whole input eagerly."""
        return list(self._iter_tokens())

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            token = self._next_token()
            yield token
            if token.kind == "EOF":
                return

    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch in "%#":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token("EOF", "", line, column)

        ch = self._peek()

        if ch == "(":
            self._advance()
            return Token("LPAREN", "(", line, column)
        if ch == ")":
            self._advance()
            return Token("RPAREN", ")", line, column)
        if ch == ",":
            self._advance()
            return Token("COMMA", ",", line, column)
        if ch == ".":
            self._advance()
            return Token("DOT", ".", line, column)
        if ch == ":" and self._peek(1) == "-":
            self._advance(2)
            return Token("IMPLIES", ":-", line, column)

        for op in _OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("OP", op, line, column)

        if ch == "_" and not (self._peek(1).isalnum() or self._peek(1) == "_"):
            self._advance()
            return Token("UNDERSCORE", "_", line, column)

        if ch in "\"'":
            return self._string(ch, line, column)

        if ch.isdigit() or (ch == "-" and self._peek(1).isdigit()):
            return self._number(line, column)

        if ch.isalpha() or ch == "_":
            return self._identifier(line, column)

        raise DSLSyntaxError(f"unexpected character {ch!r}", line, column)

    def _string(self, quote: str, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise DSLSyntaxError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\\" and self._peek() in ("\\", quote):
                ch = self._advance()
            chars.append(ch)
        return Token("STRING", "".join(chars), line, column)

    def _number(self, line: int, column: int) -> Token:
        chars = [self._advance()]
        has_dot = False
        while self._peek().isdigit() or (self._peek() == "." and self._peek(1).isdigit() and not has_dot):
            if self._peek() == ".":
                has_dot = True
            chars.append(self._advance())
        return Token("NUMBER", "".join(chars), line, column)

    def _identifier(self, line: int, column: int) -> Token:
        chars = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        return Token("IDENT", "".join(chars), line, column)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a list of tokens."""
    return Lexer(source).tokens()
