"""The vertex-centric ("think like a vertex") execution framework.

Section 3.4 of the paper describes a simple multi-threaded vertex-centric
framework: a coordinator object splits the vertex set into chunks, runs a
user-supplied ``compute`` function for every vertex each superstep, tracks
which vertices have voted to halt, and stops when all have halted (or a
superstep limit is reached).  Communication follows the gather-apply-scatter
style of GraphLab: a vertex reads its neighbors' *previous-superstep* values
directly instead of exchanging explicit messages.

This reproduction keeps the same API (an :class:`Executor` with a single
``compute`` method, run through :class:`VertexCentric`) but executes the
chunks sequentially — CPython threads would add overhead without parallelism,
and every comparison in the paper is relative between representations on the
same engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import VertexCentricError
from repro.graph.api import Graph, VertexId


class VertexContext:
    """Everything a ``compute`` function may touch for one vertex."""

    def __init__(self, coordinator: "VertexCentric", vertex: VertexId) -> None:
        self._coordinator = coordinator
        self.vertex = vertex

    # ------------------------------------------------------------------ #
    @property
    def superstep(self) -> int:
        return self._coordinator.superstep

    @property
    def graph(self) -> Graph:
        return self._coordinator.graph

    def neighbors(self) -> Iterator[VertexId]:
        return self._coordinator.graph.get_neighbors(self.vertex)

    def degree(self) -> int:
        return self._coordinator.degree(self.vertex)

    def num_vertices(self) -> int:
        return self._coordinator.num_vertices

    # ------------------------------------------------------------------ #
    # GAS-style value access: reads see the previous superstep, writes go to
    # the next one (double buffering keeps the execution deterministic)
    # ------------------------------------------------------------------ #
    def get_value(self, key: str = "value", default: Any = None) -> Any:
        return self._coordinator.read_value(self.vertex, key, default)

    def set_value(self, value: Any, key: str = "value") -> None:
        self._coordinator.write_value(self.vertex, key, value)

    def get_neighbor_value(self, neighbor: VertexId, key: str = "value", default: Any = None) -> Any:
        return self._coordinator.read_value(neighbor, key, default)

    def vote_to_halt(self) -> None:
        self._coordinator.vote_to_halt(self.vertex)

    def activate(self, vertex: VertexId) -> None:
        """Wake a halted vertex up for the next superstep."""
        self._coordinator.activate(vertex)


class Executor(ABC):
    """User programs implement this single-method interface (paper's API)."""

    @abstractmethod
    def compute(self, ctx: VertexContext) -> None:
        """Called once per active vertex per superstep."""


@dataclass
class RunStatistics:
    """Execution statistics of one vertex-centric run."""

    supersteps: int = 0
    compute_calls: int = 0
    halted_early: bool = False
    chunk_count: int = 0
    per_superstep_active: list[int] = field(default_factory=list)


class VertexCentric:
    """Coordinator for vertex-centric execution over any representation."""

    def __init__(self, graph: Graph, num_workers: int = 4, chunk_size: int | None = None) -> None:
        if num_workers < 1:
            raise VertexCentricError("num_workers must be at least 1")
        self.graph = graph
        self._vertices = list(graph.get_vertices())
        self.num_vertices = len(self._vertices)
        self._num_workers = num_workers
        self._chunk_size = chunk_size or max(1, self.num_vertices // num_workers)

        self.superstep = 0
        self._previous: dict[VertexId, dict[str, Any]] = {v: {} for v in self._vertices}
        self._next: dict[VertexId, dict[str, Any]] = {v: {} for v in self._vertices}
        self._halted: set[VertexId] = set()
        self._woken: set[VertexId] = set()
        self._degree_cache: dict[VertexId, int] = {}

    # ------------------------------------------------------------------ #
    # value buffers
    # ------------------------------------------------------------------ #
    def read_value(self, vertex: VertexId, key: str, default: Any = None) -> Any:
        return self._previous.get(vertex, {}).get(key, default)

    def write_value(self, vertex: VertexId, key: str, value: Any) -> None:
        self._next.setdefault(vertex, {})[key] = value

    def value(self, vertex: VertexId, key: str = "value", default: Any = None) -> Any:
        """Final value after :meth:`run` has completed."""
        return self._previous.get(vertex, {}).get(key, default)

    def values(self, key: str = "value") -> dict[VertexId, Any]:
        return {v: data.get(key) for v, data in self._previous.items()}

    # ------------------------------------------------------------------ #
    def degree(self, vertex: VertexId) -> int:
        """Cached logical out-degree (the paper precomputes degrees because
        condensed representations cannot read them off the adjacency list)."""
        if vertex not in self._degree_cache:
            self._degree_cache[vertex] = self.graph.degree(vertex)
        return self._degree_cache[vertex]

    def vote_to_halt(self, vertex: VertexId) -> None:
        self._halted.add(vertex)

    def activate(self, vertex: VertexId) -> None:
        self._woken.add(vertex)

    # ------------------------------------------------------------------ #
    def _chunks(self, vertices: list[VertexId]) -> Iterator[list[VertexId]]:
        for start in range(0, len(vertices), self._chunk_size):
            yield vertices[start : start + self._chunk_size]

    def run(self, executor: Executor, max_supersteps: int = 100) -> RunStatistics:
        """Run ``executor.compute`` until every vertex halts or the limit hits."""
        if not isinstance(executor, Executor):
            raise VertexCentricError("executor must implement the Executor interface")
        stats = RunStatistics()
        self.superstep = 0
        while self.superstep < max_supersteps:
            active = [v for v in self._vertices if v not in self._halted]
            if not active:
                stats.halted_early = True
                break
            stats.per_superstep_active.append(len(active))
            # carry forward values so untouched keys persist between supersteps
            self._next = {v: dict(data) for v, data in self._previous.items()}
            self._woken = set()
            for chunk in self._chunks(active):
                stats.chunk_count += 1
                for vertex in chunk:
                    executor.compute(VertexContext(self, vertex))
                    stats.compute_calls += 1
            self._previous = self._next
            self._halted -= self._woken
            self.superstep += 1
            stats.supersteps = self.superstep
        return stats
