"""The vertex-centric ("think like a vertex") execution framework.

Section 3.4 of the paper describes a simple multi-threaded vertex-centric
framework: a coordinator object splits the vertex set into chunks, runs a
user-supplied ``compute`` function for every vertex each superstep, tracks
which vertices have voted to halt, and stops when all have halted (or a
superstep limit is reached).  Communication follows the gather-apply-scatter
style of GraphLab: a vertex reads its neighbors' *previous-superstep* values
directly instead of exchanging explicit messages.

This reproduction keeps the same API (an :class:`Executor` with a single
``compute`` method, run through :class:`VertexCentric`).  By default the
chunks execute sequentially — CPython threads would add overhead without
parallelism, and every comparison in the paper is relative between
representations on the same engine.  With ``parallelism=N`` the coordinator
instead persists the snapshot to an mmap-able file and runs each superstep's
chunks in ``N`` worker *processes* that map the file read-only
(:mod:`repro.vertexcentric.parallel`); per-chunk outputs are merged in fixed
chunk order so results — including floating-point aggregator sums — are
bit-identical to serial execution.

Supersteps are scheduled over the graph's CSR snapshot
(:meth:`repro.graph.api.Graph.snapshot`): neighbor iteration and degrees come
from the flat offset/target arrays instead of per-vertex ``get_neighbors``
calls, so a PageRank superstep over a condensed representation no longer
re-traverses the virtual layer for every vertex.  The ``compute`` API is
unchanged and continues to see external vertex IDs.

The *gather* phase additionally routes through the selected kernel backend
(:func:`repro.graph.backend.get_backend`): ``ctx.gather_sum(key)`` returns
the sum of the vertex's out-neighbors' previous-superstep values for ``key``,
computed **once per superstep for all vertices** as a backend segment-sum
over the snapshot's flat adjacency — a vectorised scatter-gather on the
``numpy`` backend — instead of per-vertex dict lookups.  The ``python``
backend sums in snapshot target order, exactly the order the per-vertex loop
used, so results are bit-identical; parallel workers call the same kernel on
their partition of the shared mmap'd snapshot.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import VertexCentricError
from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend


class VertexContext:
    """Everything a ``compute`` function may touch for one vertex."""

    __slots__ = ("_coordinator", "vertex", "_index")

    def __init__(self, coordinator: "VertexCentric", vertex: VertexId, index: int) -> None:
        self._coordinator = coordinator
        self.vertex = vertex
        self._index = index

    # ------------------------------------------------------------------ #
    @property
    def superstep(self) -> int:
        return self._coordinator.superstep

    @property
    def graph(self) -> Graph:
        return self._coordinator.graph

    def neighbors(self) -> Iterator[VertexId]:
        """External IDs of the vertex's out-neighbors, off the CSR snapshot."""
        csr = self._coordinator.csr
        ids = csr.external_ids
        targets = csr.targets_list
        offsets = csr.offsets_list
        index = self._index
        return (ids[targets[e]] for e in range(offsets[index], offsets[index + 1]))

    def degree(self) -> int:
        csr = self._coordinator.csr
        index = self._index
        return csr.offsets_list[index + 1] - csr.offsets_list[index]

    def num_vertices(self) -> int:
        return self._coordinator.num_vertices

    # ------------------------------------------------------------------ #
    # GAS-style value access: reads see the previous superstep, writes go to
    # the next one (double buffering keeps the execution deterministic)
    # ------------------------------------------------------------------ #
    def get_value(self, key: str = "value", default: Any = None) -> Any:
        return self._coordinator.read_value(self.vertex, key, default)

    def set_value(self, value: Any, key: str = "value") -> None:
        self._coordinator.write_value(self.vertex, key, value)

    def get_neighbor_value(self, neighbor: VertexId, key: str = "value", default: Any = None) -> Any:
        return self._coordinator.read_value(neighbor, key, default)

    def gather_sum(self, key: str = "value", default: float = 0.0) -> float:
        """Sum of the out-neighbors' previous-superstep values for ``key``.

        The values must be numeric; missing entries count as ``default``.
        Computed through the kernel backend as a whole-graph segment sum the
        first time a superstep asks for ``key``, then served from the cached
        per-index list — the vectorised gather phase of the engine.
        """
        return self._coordinator.gather_sum(self._index, key, default)

    def vote_to_halt(self) -> None:
        self._coordinator.vote_to_halt(self.vertex)

    def activate(self, vertex: VertexId) -> None:
        """Wake a halted vertex up for the next superstep."""
        self._coordinator.activate(vertex)

    # ------------------------------------------------------------------ #
    # Pregel-style aggregators: contributions are summed during a superstep
    # and visible to every vertex in the next one
    # ------------------------------------------------------------------ #
    def aggregate(self, name: str, value: float) -> None:
        """Add ``value`` to the named sum aggregator for the next superstep."""
        self._coordinator.aggregate(name, value)

    def get_aggregate(self, name: str, default: float = 0.0) -> float:
        """The named aggregator's total from the previous superstep."""
        return self._coordinator.get_aggregate(name, default)


class Executor(ABC):
    """User programs implement this single-method interface (paper's API)."""

    @abstractmethod
    def compute(self, ctx: VertexContext) -> None:
        """Called once per active vertex per superstep."""


@dataclass
class RunStatistics:
    """Execution statistics of one vertex-centric run."""

    supersteps: int = 0
    compute_calls: int = 0
    halted_early: bool = False
    chunk_count: int = 0
    per_superstep_active: list[int] = field(default_factory=list)


class VertexCentric:
    """Coordinator for vertex-centric execution over any representation.

    The coordinator takes the graph's CSR snapshot once at construction; all
    supersteps run over that snapshot's dense arrays.
    """

    def __init__(
        self,
        graph: Graph,
        num_workers: int = 4,
        chunk_size: int | None = None,
        parallelism: int = 1,
        snapshot_path: str | None = None,
        backend: str | None = None,
        pool: "Any | None" = None,
    ) -> None:
        if num_workers < 1:
            raise VertexCentricError("num_workers must be at least 1")
        if parallelism < 1:
            raise VertexCentricError("parallelism must be at least 1")
        self.graph = graph
        #: kernel backend powering the gather phase (serial and in workers)
        self.backend = get_backend(backend)
        #: the shared physical core every superstep is scheduled over
        self.csr = graph.snapshot()
        self._vertices = self.csr.external_ids
        self.num_vertices = self.csr.n
        self._num_workers = num_workers
        self._chunk_size = chunk_size or max(1, self.num_vertices // num_workers)
        #: number of worker processes (1 = serial, the default)
        self._parallelism = parallelism
        #: where to persist the snapshot for parallel workers (None = tempfile)
        self._snapshot_path = snapshot_path
        #: an already-running shared worker pool (plan-level scheduling): the
        #: coordinator installs its program on the pool's generic workers and
        #: neither persists a snapshot nor starts/stops processes itself
        self._pool = pool

        self.superstep = 0
        self._previous: dict[VertexId, dict[str, Any]] = {v: {} for v in self._vertices}
        self._next: dict[VertexId, dict[str, Any]] = {v: {} for v in self._vertices}
        self._halted: set[VertexId] = set()
        self._woken: set[VertexId] = set()
        self._aggregate_previous: dict[str, float] = {}
        self._aggregate_next: dict[str, float] = {}
        #: per-superstep cache of backend segment sums: (key, default) -> list
        self._gather_cache: dict[tuple[str, float], list[float]] = {}

    # ------------------------------------------------------------------ #
    # value buffers
    # ------------------------------------------------------------------ #
    def read_value(self, vertex: VertexId, key: str, default: Any = None) -> Any:
        return self._previous.get(vertex, {}).get(key, default)

    def write_value(self, vertex: VertexId, key: str, value: Any) -> None:
        self._next.setdefault(vertex, {})[key] = value

    def value(self, vertex: VertexId, key: str = "value", default: Any = None) -> Any:
        """Final value after :meth:`run` has completed."""
        return self._previous.get(vertex, {}).get(key, default)

    def values(self, key: str = "value") -> dict[VertexId, Any]:
        return {v: data.get(key) for v, data in self._previous.items()}

    # ------------------------------------------------------------------ #
    def degree(self, vertex: VertexId) -> int:
        """Logical out-degree, read off the CSR snapshot's offset array."""
        index = self.csr.index(vertex)
        offsets = self.csr.offsets_list
        return offsets[index + 1] - offsets[index]

    def vote_to_halt(self, vertex: VertexId) -> None:
        self._halted.add(vertex)

    def activate(self, vertex: VertexId) -> None:
        self._woken.add(vertex)

    def aggregate(self, name: str, value: float) -> None:
        self._aggregate_next[name] = self._aggregate_next.get(name, 0.0) + value

    def get_aggregate(self, name: str, default: float = 0.0) -> float:
        return self._aggregate_previous.get(name, default)

    def gather_sum(self, index: int, key: str, default: float) -> float:
        """Backend-computed neighbor-sum of the previous superstep's ``key``
        values for the vertex at dense ``index`` (cached per superstep)."""
        entry = self._gather_cache.get((key, default))
        if entry is None:
            previous = self._previous
            values = [previous[v].get(key, default) for v in self._vertices]
            entry = self.backend.segment_sums(self.csr, values)
            self._gather_cache[(key, default)] = entry
        return entry[index]

    # ------------------------------------------------------------------ #
    def _chunks(self, indexes: list[int]) -> Iterator[list[int]]:
        for start in range(0, len(indexes), self._chunk_size):
            yield indexes[start : start + self._chunk_size]

    def run(self, executor: Executor, max_supersteps: int = 100) -> RunStatistics:
        """Run ``executor.compute`` until every vertex halts or the limit hits."""
        if not isinstance(executor, Executor):
            raise VertexCentricError("executor must implement the Executor interface")
        if (self._parallelism > 1 or self._pool is not None) and self.num_vertices > 0:
            return self._run_parallel(executor, max_supersteps)
        stats = RunStatistics()
        ids = self.csr.external_ids
        self.superstep = 0
        self._aggregate_previous = {}
        self._aggregate_next = {}
        while self.superstep < max_supersteps:
            halted = self._halted
            if halted:
                active = [i for i in range(self.num_vertices) if ids[i] not in halted]
            else:
                active = list(range(self.num_vertices))
            if not active:
                stats.halted_early = True
                break
            stats.per_superstep_active.append(len(active))
            # carry forward values so untouched keys persist between supersteps
            self._next = {v: dict(data) for v, data in self._previous.items()}
            self._woken = set()
            self._aggregate_next = {}
            self._gather_cache = {}
            compute = executor.compute
            for chunk in self._chunks(active):
                stats.chunk_count += 1
                for index in chunk:
                    compute(VertexContext(self, ids[index], index))
                    stats.compute_calls += 1
            self._previous = self._next
            self._aggregate_previous = self._aggregate_next
            self._halted -= self._woken
            self.superstep += 1
            stats.supersteps = self.superstep
        return stats

    # ------------------------------------------------------------------ #
    # process-parallel supersteps (see repro.vertexcentric.parallel)
    # ------------------------------------------------------------------ #
    def _run_parallel(self, executor: Executor, max_supersteps: int) -> RunStatistics:
        """Run supersteps in worker processes over a shared mmap'd snapshot
        file, merging chunk outputs in fixed chunk order.

        The merge order makes every result — value maps, halting, and
        floating-point aggregator totals — bit-identical to the serial path.
        Compute functions must not touch ``ctx.graph`` (workers only hold the
        snapshot) and must not rely on mutable executor state carried across
        supersteps (each worker runs on its own copy of the executor).

        With a shared ``pool`` (plan-level scheduling) the executor is
        installed on the pool's generic workers by value — it must be
        picklable — and the pool's snapshot file and process lifetime are
        owned by the caller; otherwise this run forks its own pool and, when
        no ``snapshot_path`` was given, persists the snapshot to a tempfile
        for the run's duration.
        """
        if self._pool is not None:
            self._pool.broadcast("install_program", executor)
            return self._superstep_loop(self._pool, max_supersteps)

        import os
        import tempfile

        from repro.vertexcentric.parallel import (
            ParallelSuperstepExecutor,
            VertexChunkWorkerFactory,
        )

        cleanup_path: str | None = None
        if self._snapshot_path is None:
            handle, path = tempfile.mkstemp(suffix=".csr", prefix="ggsnapshot-")
            os.close(handle)
            cleanup_path = path
            self.csr.save(path)
        else:
            from repro.graph.snapshot_store import ensure_saved

            path = str(ensure_saved(self.csr, self._snapshot_path))

        factory = VertexChunkWorkerFactory(path, executor, backend=self.backend.name)
        pool = ParallelSuperstepExecutor(self._parallelism, self.num_vertices, factory)
        try:
            pool.start()
            return self._superstep_loop(pool, max_supersteps)
        finally:
            pool.close()
            if cleanup_path is not None:
                try:
                    os.unlink(cleanup_path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    def _superstep_loop(self, pool, max_supersteps: int) -> RunStatistics:
        """Drive supersteps against a running pool (owned or shared)."""
        stats = RunStatistics()
        ids = self.csr.external_ids
        self.superstep = 0
        self._aggregate_previous = {}
        self._aggregate_next = {}
        deltas: dict[VertexId, dict[str, Any]] = {}
        while self.superstep < max_supersteps:
            halted = self._halted
            if halted:
                active = [i for i in range(self.num_vertices) if ids[i] not in halted]
            else:
                active = list(range(self.num_vertices))
            if not active:
                stats.halted_early = True
                break
            stats.per_superstep_active.append(len(active))
            # scatter: split the (ascending) active list along the fixed
            # partition bounds; broadcast last superstep's merged writes
            payloads = []
            position = 0
            for _, hi in pool.partitions:
                start = position
                while position < len(active) and active[position] < hi:
                    position += 1
                payloads.append(
                    (self.superstep, active[start:position], deltas, self._aggregate_previous)
                )
            results = pool.superstep(payloads)

            # merge in fixed chunk order — identical to the serial engine's
            # chunk-sequential execution
            self._next = {v: dict(data) for v, data in self._previous.items()}
            self._woken = set()
            merged_writes: dict[VertexId, dict[str, Any]] = {}
            aggregate_next: dict[str, float] = {}
            for writes, halts, woken, contributions, calls in results:
                stats.chunk_count += 1
                stats.compute_calls += calls
                for vertex, data in writes.items():
                    slot = self._next.get(vertex)
                    if slot is None:
                        self._next[vertex] = dict(data)
                    else:
                        slot.update(data)
                    merged = merged_writes.get(vertex)
                    if merged is None:
                        merged_writes[vertex] = dict(data)
                    else:
                        merged.update(data)
                self._halted.update(halts)
                self._woken.update(woken)
                for name, values in contributions.items():
                    # flat left-to-right sum in chunk order == serial order
                    total = aggregate_next.get(name, 0.0)
                    for value in values:
                        total = total + value
                    aggregate_next[name] = total
            self._previous = self._next
            self._aggregate_previous = aggregate_next
            self._aggregate_next = {}
            self._halted -= self._woken
            deltas = merged_writes
            self.superstep += 1
            stats.supersteps = self.superstep
        return stats
