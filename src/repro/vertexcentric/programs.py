"""Built-in vertex-centric programs.

Degree, PageRank and Connected Components are the three algorithms the paper
benchmarks on its vertex-centric framework (Figure 11) and on the Giraph port
(Table 4).  Single-Source Shortest Paths and Label Propagation are additional
programs in the same style, provided so that users have ready-made building
blocks for path and community analyses on extracted graphs.
"""

from __future__ import annotations

from collections import Counter

from repro.graph.api import Graph, VertexId
from repro.vertexcentric.framework import Executor, RunStatistics, VertexCentric, VertexContext


class DegreeProgram(Executor):
    """Store each vertex's logical out-degree in the ``degree`` value."""

    def compute(self, ctx: VertexContext) -> None:
        ctx.set_value(ctx.degree(), key="degree")
        ctx.vote_to_halt()


class PageRankProgram(Executor):
    """Classic synchronous PageRank with a fixed number of iterations.

    Dangling vertices (out-degree zero) redistribute their rank uniformly
    through a sum aggregator, matching the direct kernel's correction: the
    mass they hold after superstep ``k`` reaches every vertex in superstep
    ``k + 1``.

    Scatter-gather through the kernel backend: each superstep a vertex
    publishes its out-share (``rank / degree``) in the ``share`` value slot,
    and the next superstep pulls the neighbor sum with ``ctx.gather_sum`` —
    one backend segment-sum over the whole snapshot (vectorised on
    ``numpy``) instead of a per-vertex, per-neighbor dict-lookup loop.  The
    framework is GAS-style, so "incoming" contributions are emulated by
    gathering from out-neighbors, which is exact on the symmetric graphs the
    paper extracts.  The share a neighbor published is the same
    ``rank / degree`` quotient the old per-neighbor loop recomputed; on the
    ``python`` backend the segment sum adds them in the same snapshot target
    order, so results are bit-identical to the pre-backend program, while
    the ``numpy`` backend's ``reduceat`` re-associates the additions within
    the documented 1e-9 tolerance.  Parallel runs stay bit-identical to
    serial runs *per backend* (same per-segment reduction either way).
    """

    def __init__(self, iterations: int = 20, damping: float = 0.85) -> None:
        self.iterations = iterations
        self.damping = damping

    def compute(self, ctx: VertexContext) -> None:
        n = ctx.num_vertices()
        degree = ctx.degree()
        if ctx.superstep == 0:
            rank = 1.0 / n
            ctx.set_value(rank, key="rank")
            # the paper precomputes degrees before running PageRank because
            # condensed representations cannot read them for free
            ctx.set_value(degree, key="degree")
            ctx.set_value(rank / degree if degree else 0.0, key="share")
            if degree == 0:
                ctx.aggregate("dangling", rank)
            return
        total = ctx.gather_sum("share")
        dangling_mass = ctx.get_aggregate("dangling")
        rank = (1.0 - self.damping) / n + self.damping * (total + dangling_mass / n)
        ctx.set_value(rank, key="rank")
        ctx.set_value(rank / degree if degree else 0.0, key="share")
        if degree == 0:
            ctx.aggregate("dangling", rank)
        if ctx.superstep >= self.iterations:
            ctx.vote_to_halt()


class ConnectedComponentsProgram(Executor):
    """Minimum-label propagation; labels stabilise at the component minimum.

    Duplicate-insensitive, so it is safe to run directly on C-DUP.  Like the
    paper's extracted graphs, the input is assumed to be symmetric (labels
    only travel along out-edges); use
    :func:`repro.algorithms.connected_components` for arbitrary directed
    graphs.
    """

    def compute(self, ctx: VertexContext) -> None:
        if ctx.superstep == 0:
            ctx.set_value(_label(ctx.vertex), key="component")
            return
        current = ctx.get_value(key="component", default=_label(ctx.vertex))
        best = current
        for neighbor in ctx.neighbors():
            candidate = ctx.get_neighbor_value(
                neighbor, key="component", default=_label(neighbor)
            )
            if candidate < best:
                best = candidate
        if best < current:
            ctx.set_value(best, key="component")
            # a lowered label may allow neighbors to lower theirs next round
            for neighbor in ctx.neighbors():
                ctx.activate(neighbor)
        ctx.vote_to_halt()


def _label(vertex: VertexId) -> tuple[str, str]:
    """Totally ordered label for arbitrary (mixed-type) vertex identifiers."""
    return (type(vertex).__name__, repr(vertex))


class SingleSourceShortestPathsProgram(Executor):
    """Hop distance from a single source by synchronous relaxation.

    Unweighted edges: after superstep ``k`` every vertex within ``k`` hops of
    the source holds its exact BFS distance.  Like the other programs, labels
    travel along out-edges, which is exact for the symmetric graphs GraphGen
    extracts.
    """

    def __init__(self, source: VertexId) -> None:
        self.source = source

    def compute(self, ctx: VertexContext) -> None:
        if ctx.superstep == 0:
            ctx.set_value(0 if ctx.vertex == self.source else None, key="distance")
            return
        current = ctx.get_value(key="distance")
        best = current
        for neighbor in ctx.neighbors():
            neighbor_distance = ctx.get_neighbor_value(neighbor, key="distance")
            if neighbor_distance is None:
                continue
            candidate = neighbor_distance + 1
            if best is None or candidate < best:
                best = candidate
        if best != current:
            ctx.set_value(best, key="distance")
            for neighbor in ctx.neighbors():
                ctx.activate(neighbor)
        ctx.vote_to_halt()


class LabelPropagationProgram(Executor):
    """Community detection by synchronous majority label propagation.

    Every vertex starts in its own community and repeatedly adopts the most
    frequent label among its neighbors (ties broken by the smaller label, so
    the execution is deterministic).  Stops when no label changes or the
    superstep limit is reached.
    """

    def compute(self, ctx: VertexContext) -> None:
        if ctx.superstep == 0:
            ctx.set_value(_label(ctx.vertex), key="community")
            return
        current = ctx.get_value(key="community", default=_label(ctx.vertex))
        counts: Counter = Counter()
        for neighbor in ctx.neighbors():
            if neighbor == ctx.vertex:
                continue
            counts[ctx.get_neighbor_value(neighbor, key="community", default=_label(neighbor))] += 1
        if counts:
            best_count = max(counts.values())
            best = min(label for label, count in counts.items() if count == best_count)
            if best != current:
                ctx.set_value(best, key="community")
                for neighbor in ctx.neighbors():
                    ctx.activate(neighbor)
        ctx.vote_to_halt()


# --------------------------------------------------------------------------- #
# convenience wrappers
# --------------------------------------------------------------------------- #
def run_degree(
    graph: Graph,
    num_workers: int = 4,
    parallelism: int = 1,
    snapshot_path: str | None = None,
    backend: str | None = None,
    pool=None,
) -> tuple[dict[VertexId, int], RunStatistics]:
    coordinator = VertexCentric(
        graph,
        num_workers=num_workers,
        parallelism=parallelism,
        snapshot_path=snapshot_path,
        backend=backend,
        pool=pool,
    )
    stats = coordinator.run(DegreeProgram(), max_supersteps=2)
    return coordinator.values("degree"), stats


def run_pagerank(
    graph: Graph,
    iterations: int = 20,
    damping: float = 0.85,
    num_workers: int = 4,
    parallelism: int = 1,
    snapshot_path: str | None = None,
    backend: str | None = None,
    pool=None,
) -> tuple[dict[VertexId, float], RunStatistics]:
    coordinator = VertexCentric(
        graph,
        num_workers=num_workers,
        parallelism=parallelism,
        snapshot_path=snapshot_path,
        backend=backend,
        pool=pool,
    )
    stats = coordinator.run(PageRankProgram(iterations, damping), max_supersteps=iterations + 2)
    return coordinator.values("rank"), stats


def run_connected_components(
    graph: Graph,
    num_workers: int = 4,
    max_supersteps: int = 200,
    parallelism: int = 1,
    snapshot_path: str | None = None,
    backend: str | None = None,
    pool=None,
) -> tuple[dict[VertexId, object], RunStatistics]:
    coordinator = VertexCentric(
        graph,
        num_workers=num_workers,
        parallelism=parallelism,
        snapshot_path=snapshot_path,
        backend=backend,
        pool=pool,
    )
    stats = coordinator.run(ConnectedComponentsProgram(), max_supersteps=max_supersteps)
    return coordinator.values("component"), stats


def run_sssp(
    graph: Graph,
    source: VertexId,
    num_workers: int = 4,
    max_supersteps: int = 200,
    parallelism: int = 1,
    snapshot_path: str | None = None,
    backend: str | None = None,
    pool=None,
) -> tuple[dict[VertexId, int | None], RunStatistics]:
    coordinator = VertexCentric(
        graph,
        num_workers=num_workers,
        parallelism=parallelism,
        snapshot_path=snapshot_path,
        backend=backend,
        pool=pool,
    )
    stats = coordinator.run(SingleSourceShortestPathsProgram(source), max_supersteps=max_supersteps)
    return coordinator.values("distance"), stats


def run_label_propagation(
    graph: Graph,
    num_workers: int = 4,
    max_supersteps: int = 50,
    parallelism: int = 1,
    snapshot_path: str | None = None,
    backend: str | None = None,
    pool=None,
) -> tuple[dict[VertexId, object], RunStatistics]:
    coordinator = VertexCentric(
        graph,
        num_workers=num_workers,
        parallelism=parallelism,
        snapshot_path=snapshot_path,
        backend=backend,
        pool=pool,
    )
    stats = coordinator.run(LabelPropagationProgram(), max_supersteps=max_supersteps)
    return coordinator.values("community"), stats
