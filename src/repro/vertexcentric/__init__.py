"""Vertex-centric execution framework and built-in programs."""

from repro.vertexcentric.framework import (
    Executor,
    RunStatistics,
    VertexCentric,
    VertexContext,
)
from repro.vertexcentric.parallel import ParallelSuperstepExecutor, partition_range
from repro.vertexcentric.programs import (
    ConnectedComponentsProgram,
    DegreeProgram,
    LabelPropagationProgram,
    PageRankProgram,
    SingleSourceShortestPathsProgram,
    run_connected_components,
    run_degree,
    run_label_propagation,
    run_pagerank,
    run_sssp,
)

__all__ = [
    "Executor",
    "RunStatistics",
    "VertexCentric",
    "VertexContext",
    "ParallelSuperstepExecutor",
    "partition_range",
    "ConnectedComponentsProgram",
    "DegreeProgram",
    "LabelPropagationProgram",
    "PageRankProgram",
    "SingleSourceShortestPathsProgram",
    "run_connected_components",
    "run_degree",
    "run_label_propagation",
    "run_pagerank",
    "run_sssp",
]
