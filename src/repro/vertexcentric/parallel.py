"""Process-parallel superstep execution over a shared snapshot file.

The vertex-centric coordinator and the Giraph engine both schedule supersteps
over frozen dense-index arrays, which makes their per-superstep work
embarrassingly parallel *within* a superstep: the dense vertex range is split
into fixed contiguous partitions and each partition's ``compute`` calls run in
a separate worker process.  What is **not** trivially parallel is keeping the
results bit-identical to the serial engines — floating-point aggregation and
message delivery are order-sensitive.  This module provides the shared
machinery and its determinism contract:

* **Fixed contiguous partitions.**  ``partition_range(n, parallelism)`` splits
  ``[0, n)`` into ascending contiguous chunks once per run.  Partition ``k``
  always owns the same dense indexes.

* **Persistent workers, fork start method.**  One worker process per
  partition lives for the whole run (created with the ``fork`` start method,
  so engine-side state such as Giraph vertex sets is inherited without
  pickling).  Vertex-centric workers do not even inherit the graph: they map
  the run's **snapshot file** read-only
  (:func:`repro.graph.snapshot_store.load_snapshot` with ``mmap=True``), so
  every worker shares one physical copy of ``offsets``/``targets`` through
  the page cache.

* **Deterministic merge.**  Each superstep the master scatters one payload
  per partition and gathers results *in partition order*.  Order-sensitive
  outputs are returned as ordered sequences (per-aggregator contribution
  lists, per-sender message lists) and re-reduced by the master with one flat
  left-to-right pass — exactly the serial engines' iteration order (ascending
  dense index).  Floating-point results are therefore bit-identical to
  serial execution, not merely close.

Workers implement two methods: ``run_superstep(payload) -> result`` and
``collect() -> result``; the executor only moves bytes and enforces ordering.
"""

from __future__ import annotations

import multiprocessing
import threading
import traceback
from array import array
from typing import Any, Callable, Sequence

from repro.exceptions import VertexCentricError
from repro.graph.backend import get_backend
from repro.graph.kernel import CSRGraph

#: guards the process-global start counter (plans may run concurrently in
#: one process — the graph service runs one per request thread)
_COUNTER_LOCK = threading.Lock()
_THREAD_COUNTERS = threading.local()


def pool_starts_in_thread() -> int:
    """Cumulative successful pool starts *triggered by the current thread*.

    The per-plan ``report.pool_starts`` counter is a delta of this value, so
    plans running concurrently in one process (the graph service) never see
    each other's forks, while hidden per-request pools started anywhere in
    the calling thread's stack are still caught.
    """
    return getattr(_THREAD_COUNTERS, "started", 0)


def partition_range(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into ``parts`` contiguous, ascending ``(lo, hi)`` chunks.

    Sizes differ by at most one; with ``n < parts`` the tail chunks are empty
    (``lo == hi``) so partition identities stay stable regardless of size.
    """
    if parts < 1:
        raise VertexCentricError("parallelism must be at least 1")
    base, extra = divmod(n, parts)
    bounds = []
    lo = 0
    for k in range(parts):
        hi = lo + base + (1 if k < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# --------------------------------------------------------------------------- #
# numeric message batching (Giraph engine pipe traffic)
# --------------------------------------------------------------------------- #
class MessageChannel:
    """Stateful packer for one direction of one worker pipe.

    A superstep whose messages are all plain floats — every PageRank share —
    is batched into one flat index buffer (``array('i')``, or ``array('q')``
    for graphs beyond 2^31 vertices) plus one ``array('d')`` value buffer
    instead of a list of tuples of boxed Python objects.  Better: numeric
    supersteps usually scatter along the *same* target sequence every
    superstep (the fixed snapshot adjacency), so each side of the pipe keeps
    the last target buffer and, while it repeats, ships **values only** — 8
    bytes per message on the wire.  Mixed or non-numeric supersteps fall back
    to the raw pair list.

    Both endpoints advance their cached state from the packed form itself,
    so a ``pack``-side channel and its ``unpack``-side peer stay in lockstep
    without any extra coordination.  ``float64`` round-trips exactly and
    order is preserved, so delivery is bit-identical either way.
    """

    __slots__ = ("_targets",)

    def __init__(self) -> None:
        self._targets: array | None = None

    def pack(self, pairs: list) -> tuple:
        if pairs and all(type(message) is float for _, message in pairs):
            values = array("d", [message for _, message in pairs])
            indexes = [index for index, _ in pairs]
            typecode = "i" if max(indexes) < 2**31 else "q"
            targets = array(typecode, indexes)
            if targets == self._targets:
                return ("f64-repeat", values)
            self._targets = targets
            return ("f64", targets, values)
        return ("raw", pairs)

    def unpack(self, packed: tuple) -> list:
        tag = packed[0]
        if tag == "f64":
            self._targets = packed[1]
            return list(zip(packed[1].tolist(), packed[2].tolist()))
        if tag == "f64-repeat":
            return list(zip(self._targets.tolist(), packed[1].tolist()))
        return packed[1]


# --------------------------------------------------------------------------- #
# worker process main loop
# --------------------------------------------------------------------------- #
def _worker_main(conn, lo: int, hi: int, worker_factory) -> None:
    try:
        worker = worker_factory(lo, hi)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ready", None))
    try:
        while True:
            try:
                command, payload = conn.recv()
            except EOFError:
                break
            if command == "stop":
                break
            try:
                if command == "step":
                    result = worker.run_superstep(payload)
                elif command == "collect":
                    result = worker.collect()
                elif command == "call":
                    method, argument = payload
                    result = getattr(worker, method)(argument)
                else:
                    raise VertexCentricError(f"unknown worker command {command!r}")
                conn.send(("ok", result))
            except BaseException:
                conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class ParallelSuperstepExecutor:
    """A pool of persistent per-partition worker processes.

    ``worker_factory(lo, hi)`` is called *inside* each forked worker to build
    the partition's worker object; anything it references is inherited by the
    fork (or, for vertex-centric workers, loaded from the snapshot file).

    Use as a context manager, or call :meth:`start` / :meth:`close`.

    Beyond the superstep protocol, workers may expose extra methods invoked
    by name through :meth:`call` (broadcast one payload per partition, gather
    in partition order) or :meth:`map_tasks` (independent whole-graph tasks
    load-balanced over free workers) — the plan-level scheduler uses these to
    reuse one pool across heterogeneous requests.
    """

    #: cumulative successful :meth:`start` calls in this process — the
    #: instrumentation the plan-scheduling tests and the fig16 benchmark read
    #: to assert "one worker pool per plan"
    started_total = 0

    def __init__(
        self,
        parallelism: int,
        num_items: int,
        worker_factory: Callable[[int, int], Any],
        *,
        partitions: Sequence[tuple[int, int]] | None = None,
    ) -> None:
        if parallelism < 1:
            raise VertexCentricError("parallelism must be at least 1")
        if partitions is None:
            self.partitions = partition_range(num_items, parallelism)
        else:
            # explicit geometry — the out-of-core path hands the sharded
            # snapshot's manifest ranges straight in, so worker partitions
            # and segment files align one-to-one
            self.partitions = [(int(lo), int(hi)) for lo, hi in partitions]
            expected_lo = 0
            for lo, hi in self.partitions:
                if lo != expected_lo or hi < lo:
                    raise VertexCentricError(
                        f"explicit partitions must be contiguous ascending over "
                        f"[0, {num_items}), got {self.partitions}"
                    )
                expected_lo = hi
            if expected_lo != num_items:
                raise VertexCentricError(
                    f"explicit partitions cover [0, {expected_lo}), expected [0, {num_items})"
                )
        self._worker_factory = worker_factory
        self._procs: list = []
        self._conns: list = []
        self._started = False

    # ------------------------------------------------------------------ #
    def start(self) -> "ParallelSuperstepExecutor":
        if self._started:
            return self
        if "fork" not in multiprocessing.get_all_start_methods():
            raise VertexCentricError(
                "parallel supersteps require the 'fork' multiprocessing start "
                "method; run with parallelism=1 on this platform"
            )
        context = multiprocessing.get_context("fork")
        try:
            for lo, hi in self.partitions:
                parent, child = context.Pipe()
                proc = context.Process(
                    target=_worker_main, args=(child, lo, hi, self._worker_factory), daemon=True
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
            for conn in self._conns:
                status, payload = conn.recv()
                if status != "ready":
                    raise VertexCentricError(f"parallel worker failed to start:\n{payload}")
        except BaseException:
            self.close()
            raise
        self._started = True
        with _COUNTER_LOCK:
            ParallelSuperstepExecutor.started_total += 1
        _THREAD_COUNTERS.started = getattr(_THREAD_COUNTERS, "started", 0) + 1
        return self

    def __enter__(self) -> "ParallelSuperstepExecutor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _round(self, command: str, payloads: Sequence[Any]) -> list[Any]:
        if not self._started:
            raise VertexCentricError("executor is not running (call start() first)")
        for conn, payload in zip(self._conns, payloads):
            conn.send((command, payload))
        results = []
        for k, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except EOFError:
                self.close()
                raise VertexCentricError(f"parallel worker {k} died mid-superstep") from None
            if status != "ok":
                self.close()
                raise VertexCentricError(f"compute failed in parallel worker {k}:\n{payload}")
            results.append(payload)
        return results

    def superstep(self, payloads: Sequence[Any]) -> list[Any]:
        """Scatter one payload per partition, gather results in partition order."""
        if len(payloads) != len(self.partitions):
            raise VertexCentricError(
                f"expected {len(self.partitions)} payloads, got {len(payloads)}"
            )
        return self._round("step", payloads)

    def collect(self) -> list[Any]:
        """Gather each worker's ``collect()`` result in partition order."""
        return self._round("collect", [None] * len(self.partitions))

    # ------------------------------------------------------------------ #
    # generic named-method rounds (plan-level scheduling)
    # ------------------------------------------------------------------ #
    def call(self, method: str, payloads: Sequence[Any]) -> list[Any]:
        """Invoke ``worker.<method>(payload)`` on every worker — one payload
        per partition — and gather results in partition order."""
        if len(payloads) != len(self.partitions):
            raise VertexCentricError(
                f"expected {len(self.partitions)} payloads, got {len(payloads)}"
            )
        return self._round("call", [(method, payload) for payload in payloads])

    def broadcast(self, method: str, payload: Any) -> list[Any]:
        """Invoke ``worker.<method>(payload)`` with the same payload on every
        worker (e.g. installing a new superstep program on a reused pool)."""
        return self.call(method, [payload] * len(self.partitions))

    def map_tasks(self, method: str, arguments: Sequence[Any]) -> list[Any]:
        """Run independent whole-graph tasks load-balanced over the workers.

        Each task is ``worker.<method>(argument)``; tasks are handed to free
        workers as they finish, so heterogeneous task durations do not
        serialise on the slowest.  Results come back in ``arguments`` order.
        Tasks must not depend on worker identity or partition bounds.
        """
        if not self._started:
            raise VertexCentricError("executor is not running (call start() first)")
        from multiprocessing.connection import wait

        results: list[Any] = [None] * len(arguments)
        free = list(range(len(self._conns)))
        pending: dict[Any, tuple[int, int]] = {}  # connection -> (task, worker)
        next_task = 0
        while next_task < len(arguments) or pending:
            while free and next_task < len(arguments):
                worker = free.pop()
                conn = self._conns[worker]
                conn.send(("call", (method, arguments[next_task])))
                pending[conn] = (next_task, worker)
                next_task += 1
            if not pending:
                break
            for conn in wait(list(pending)):
                index, worker = pending.pop(conn)
                try:
                    status, payload = conn.recv()
                except EOFError:
                    self.close()
                    raise VertexCentricError(
                        f"parallel worker {worker} died running task {index}"
                    ) from None
                if status != "ok":
                    self.close()
                    raise VertexCentricError(
                        f"task {index} failed in parallel worker {worker}:\n{payload}"
                    )
                results[index] = payload
                free.append(worker)
        return results

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._procs = []
        self._conns = []
        self._started = False


# --------------------------------------------------------------------------- #
# the vertex-centric chunk worker (used by repro.vertexcentric.framework)
# --------------------------------------------------------------------------- #
class _WorkerCoordinator:
    """Duck-types :class:`~repro.vertexcentric.framework.VertexCentric` for
    :class:`~repro.vertexcentric.framework.VertexContext` inside a worker.

    Reads see the previous superstep's values (double buffering, as in the
    serial coordinator); writes, halts, wake-ups and aggregator contributions
    are recorded and shipped back to the master for the deterministic merge.
    ``graph`` is ``None`` in workers: parallel compute functions must read
    topology through the context (``neighbors`` / ``degree``), not through
    the source representation.
    """

    graph = None

    def __init__(self, csr: CSRGraph, lo: int = 0, hi: int | None = None, backend=None) -> None:
        self.csr = csr
        self.num_vertices = csr.n
        self.superstep = 0
        self.lo = lo
        self.hi = csr.n if hi is None else hi
        self.backend = backend if backend is not None else get_backend()
        self._previous: dict = {vertex: {} for vertex in csr.external_ids}
        self._aggregate_previous: dict[str, float] = {}
        self._writes: dict = {}
        self._halts: set = set()
        self._woken: set = set()
        self._contributions: dict[str, list[float]] = {}
        self._gather_cache: dict[tuple[str, float], list[float]] = {}

    def begin_superstep(self, superstep: int, deltas: dict, aggregates: dict) -> None:
        previous = self._previous
        for vertex, data in deltas.items():
            slot = previous.get(vertex)
            if slot is None:
                previous[vertex] = dict(data)
            else:
                slot.update(data)
        self.superstep = superstep
        self._aggregate_previous = aggregates
        self._writes = {}
        self._halts = set()
        self._woken = set()
        self._contributions = {}
        self._gather_cache = {}

    # -- the VertexContext-facing interface ----------------------------- #
    def read_value(self, vertex, key, default=None):
        return self._previous.get(vertex, {}).get(key, default)

    def write_value(self, vertex, key, value) -> None:
        slot = self._writes.get(vertex)
        if slot is None:
            self._writes[vertex] = {key: value}
        else:
            slot[key] = value

    def vote_to_halt(self, vertex) -> None:
        self._halts.add(vertex)

    def activate(self, vertex) -> None:
        self._woken.add(vertex)

    def aggregate(self, name: str, value: float) -> None:
        self._contributions.setdefault(name, []).append(value)

    def get_aggregate(self, name: str, default: float = 0.0) -> float:
        return self._aggregate_previous.get(name, default)

    def gather_sum(self, index: int, key: str, default: float) -> float:
        """Backend segment sums over this worker's partition of the shared
        mmap'd snapshot — the vectorised gather phase, computed once per
        (superstep, key) for the whole partition.  Identical per-vertex
        reductions to the serial coordinator's whole-graph call, so parallel
        gathers stay bit-identical to serial execution."""
        entry = self._gather_cache.get((key, default))
        if entry is None:
            previous = self._previous
            values = [previous[v].get(key, default) for v in self.csr.external_ids]
            entry = self.backend.segment_sums(self.csr, values, self.lo, self.hi)
            self._gather_cache[(key, default)] = entry
        return entry[index - self.lo]


class VertexChunkWorker:
    """Runs one partition's ``compute`` calls over the mmap-loaded snapshot."""

    def __init__(self, csr: CSRGraph, executor, lo: int, hi: int, backend=None) -> None:
        from repro.vertexcentric.framework import VertexContext

        self._context_class = VertexContext
        self._coordinator = _WorkerCoordinator(csr, lo, hi, backend=backend)
        self._compute = executor.compute
        self._ids = csr.external_ids
        self.lo = lo
        self.hi = hi

    def run_superstep(self, payload):
        superstep, active, deltas, aggregates = payload
        coordinator = self._coordinator
        coordinator.begin_superstep(superstep, deltas, aggregates)
        compute = self._compute
        make_context = self._context_class
        ids = self._ids
        calls = 0
        for index in active:
            compute(make_context(coordinator, ids[index], index))
            calls += 1
        return (
            coordinator._writes,
            coordinator._halts,
            coordinator._woken,
            coordinator._contributions,
            calls,
        )

    def collect(self):  # pragma: no cover - master merges every superstep
        return None

    def memory_stats(self, _payload=None) -> dict:
        """This worker's snapshot footprint — the out-of-core assertion data."""
        from repro.utils.memstats import mapped_snapshot_bytes, peak_rss_bytes

        return {
            "lo": self.lo,
            "hi": self.hi,
            "mapped_bytes": mapped_snapshot_bytes(self._coordinator.csr),
            "peak_rss_bytes": peak_rss_bytes(),
        }


class VertexChunkWorkerFactory:
    """Builds a :class:`VertexChunkWorker` inside a forked worker process.

    Loads the run's snapshot file with ``mmap=True`` so all workers share one
    physical copy of the arrays; the compute ``executor`` object is inherited
    through the fork.  With ``sharded=True`` the path is a shard *manifest*
    and each worker maps only its own partition's segment file
    (:func:`repro.graph.shard_store.load_shard` — the partition bounds must
    equal the manifest's shard ranges), so no single process ever maps the
    full graph.
    """

    def __init__(
        self,
        snapshot_path,
        executor,
        mmap: bool = True,
        backend: str | None = None,
        sharded: bool = False,
    ) -> None:
        self.snapshot_path = snapshot_path
        self.executor = executor
        self.mmap = mmap
        #: resolved backend name from the coordinator, so workers run the
        #: same kernels regardless of their inherited environment
        self.backend = backend
        self.sharded = sharded

    def __call__(self, lo: int, hi: int) -> VertexChunkWorker:
        if self.sharded:
            from repro.graph.shard_store import load_shard

            csr: CSRGraph = load_shard(self.snapshot_path, (lo, hi), mmap=self.mmap)
        else:
            csr = CSRGraph.load(self.snapshot_path, mmap=self.mmap, verify=False)
        return VertexChunkWorker(csr, self.executor, lo, hi, backend=get_backend(self.backend))
