"""Dataset generators: scaled-down, schema-faithful stand-ins for the paper's
DBLP / IMDB / TPC-H / UNIV databases and its synthetic condensed graphs."""

from repro.datasets.dblp import (
    AUTHOR_PUBLICATION_BIPARTITE_QUERY,
    COAUTHOR_QUERY,
    RECENT_COAUTHOR_QUERY_TEMPLATE,
    SAME_CONFERENCE_QUERY,
    generate_dblp,
)
from repro.datasets.imdb import ACTOR_MOVIE_BIPARTITE_QUERY, COACTOR_QUERY, generate_imdb
from repro.datasets.tpch import (
    COPURCHASE_QUERY,
    CUSTOMER_PART_BIPARTITE_QUERY,
    SHARED_SUPPLIER_QUERY,
    generate_tpch,
)
from repro.datasets.univ import (
    CO_TEACHING_QUERY,
    COENROLLMENT_QUERY,
    INSTRUCTOR_STUDENT_BIPARTITE_QUERY,
    generate_univ,
)
from repro.datasets.synthetic import (
    SMALL_SPECS,
    SyntheticSpec,
    generate_condensed,
    generate_from_spec,
)
from repro.datasets.large import (
    GIRAPH_SPECS,
    LAYERED_QUERY,
    LAYERED_SPECS,
    LayeredSpec,
    SINGLE_QUERY,
    SINGLE_SPECS,
    SingleSpec,
    generate_giraph_dataset,
    generate_layered,
    generate_single,
    measured_selectivity,
)

__all__ = [
    "AUTHOR_PUBLICATION_BIPARTITE_QUERY",
    "COAUTHOR_QUERY",
    "RECENT_COAUTHOR_QUERY_TEMPLATE",
    "SAME_CONFERENCE_QUERY",
    "generate_dblp",
    "ACTOR_MOVIE_BIPARTITE_QUERY",
    "COACTOR_QUERY",
    "generate_imdb",
    "COPURCHASE_QUERY",
    "CUSTOMER_PART_BIPARTITE_QUERY",
    "SHARED_SUPPLIER_QUERY",
    "generate_tpch",
    "CO_TEACHING_QUERY",
    "COENROLLMENT_QUERY",
    "INSTRUCTOR_STUDENT_BIPARTITE_QUERY",
    "generate_univ",
    "SMALL_SPECS",
    "SyntheticSpec",
    "generate_condensed",
    "generate_from_spec",
    "GIRAPH_SPECS",
    "LAYERED_QUERY",
    "LAYERED_SPECS",
    "LayeredSpec",
    "SINGLE_QUERY",
    "SINGLE_SPECS",
    "SingleSpec",
    "generate_giraph_dataset",
    "generate_layered",
    "generate_single",
    "measured_selectivity",
]
