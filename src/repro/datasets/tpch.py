"""Synthetic TPC-H-like dataset (Figure 15c schema).

The paper's TPC-H experiment connects customers who bought the same part
([Q2]); even though the base tables are small (765K rows), the extracted
graph has ~100M edges because many customers share popular parts — "datasets
don't necessarily have to be large in order to hide some very dense graphs".
The generator keeps that property by drawing part keys from a Zipf-like
distribution so a few parts are extremely popular.

Tables
------
``Customer(custkey, name)``, ``Orders(orderkey, custkey)``,
``LineItem(orderkey, partkey, suppkey)``, ``Part(partkey, name)``,
``Supplier(suppkey, name)``.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.utils.rand import SeededRandom

COPURCHASE_QUERY = """
Nodes(ID, Name) :- Customer(ID, Name).
Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK, SK1),
                   Orders(OK2, ID2), LineItem(OK2, PK, SK2).
"""

SHARED_SUPPLIER_QUERY = """
Nodes(ID, Name) :- Customer(ID, Name).
Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK1, SK),
                   Orders(OK2, ID2), LineItem(OK2, PK2, SK).
"""

CUSTOMER_PART_BIPARTITE_QUERY = """
Nodes(ID, Name) :- Customer(ID, Name).
Nodes(ID, Name) :- Part(ID, Name).
Edges(ID1, ID2) :- Orders(OK, ID1), LineItem(OK, ID2, SK).
"""


def generate_tpch(
    num_customers: int = 200,
    num_parts: int = 100,
    num_suppliers: int = 30,
    orders_per_customer: float = 3.0,
    lineitems_per_order: float = 4.0,
    part_skew: float = 1.0,
    seed: int = 0,
) -> Database:
    """Build a TPC-H-shaped database with skewed part popularity."""
    rng = SeededRandom(seed)
    db = Database("tpch")
    db.create_table("Customer", [("custkey", "int"), ("name", "str")], primary_key="custkey")
    db.create_table(
        "Orders",
        [("orderkey", "int"), ("custkey", "int")],
        primary_key="orderkey",
        foreign_keys=[("custkey", "Customer", "custkey")],
    )
    db.create_table(
        "LineItem",
        [("orderkey", "int"), ("partkey", "int"), ("suppkey", "int")],
        foreign_keys=[
            ("orderkey", "Orders", "orderkey"),
            ("partkey", "Part", "partkey"),
            ("suppkey", "Supplier", "suppkey"),
        ],
    )
    db.create_table("Part", [("partkey", "int"), ("name", "str")], primary_key="partkey")
    db.create_table("Supplier", [("suppkey", "int"), ("name", "str")], primary_key="suppkey")

    db.insert("Customer", [(c, f"customer_{c}") for c in range(num_customers)])
    db.insert("Part", [(p, f"part_{p}") for p in range(num_parts)])
    db.insert("Supplier", [(s, f"supplier_{s}") for s in range(num_suppliers)])

    orders = []
    lineitems: set[tuple[int, int, int]] = set()
    order_key = 0
    for customer in range(num_customers):
        order_count = rng.gauss_int(orders_per_customer, 1.0, minimum=1)
        for _ in range(order_count):
            orders.append((order_key, customer))
            item_count = rng.gauss_int(lineitems_per_order, 1.5, minimum=1)
            for _ in range(item_count):
                part = rng.zipf_int(part_skew, num_parts) - 1
                supplier = rng.randint(0, num_suppliers - 1)
                lineitems.add((order_key, part, supplier))
            order_key += 1
    db.insert("Orders", orders)
    db.insert("LineItem", sorted(lineitems))
    return db
