"""Synthetic condensed-graph generator (Appendix C.1).

The paper needs random graphs *in condensed form* — existing random graph
generators produce expanded graphs — so it builds one based on the
Barabási–Albert preferential-attachment model.  This module reproduces that
generator: it takes the number of real nodes, the number of virtual nodes,
and the mean / standard deviation of the virtual-node sizes, and produces a
single-layer symmetric :class:`~repro.graph.condensed.CondensedGraph`
(every virtual node is a clique over its member set).

Algorithm (following the paper's sketch):

1. create all real nodes and draw every virtual node's size from the normal
   distribution;
2. *initial splits* — each virtual node may be split in two with probability
   proportional to its size;
3. *initial batch* — 15% of the virtual nodes get members assigned uniformly
   at random;
4. *random or preferential attachment* — the rest either get random members
   (35% chance, for nodes that came from a split) or attach around a "seed"
   real node with degree-skewed selection of its neighborhood;
5. *cleanup* — the split halves are merged back into one virtual node.

The result has a preferential-attachment-like degree distribution while
preserving the local densities (overlapping cliques) seen in real data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.condensed import CondensedGraph
from repro.utils.rand import SeededRandom


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic condensed graph."""

    name: str
    num_real: int
    num_virtual: int
    mean_size: float
    std_size: float
    seed: int = 0


#: scaled-down versions of the paper's Table 2 small datasets
SMALL_SPECS: dict[str, SyntheticSpec] = {
    # Synthetic_1: many small virtual nodes over few real nodes
    "synthetic_1": SyntheticSpec("synthetic_1", num_real=400, num_virtual=2000, mean_size=7, std_size=2),
    # Synthetic_2: few, very large overlapping cliques
    "synthetic_2": SyntheticSpec("synthetic_2", num_real=1500, num_virtual=15, mean_size=90, std_size=20),
}


def generate_condensed(
    num_real: int,
    num_virtual: int,
    mean_size: float,
    std_size: float,
    seed: int = 0,
) -> CondensedGraph:
    """Generate a symmetric single-layer condensed graph (Appendix C.1)."""
    rng = SeededRandom(seed)
    graph = CondensedGraph()
    for real in range(num_real):
        graph.add_real_node(real)

    # step 1: draw sizes
    sizes = [rng.gauss_int(mean_size, std_size, minimum=2) for _ in range(num_virtual)]
    max_size = max(sizes) if sizes else 0

    # step 2: initial splits — larger virtual nodes are more likely to split
    pieces: list[tuple[int, bool]] = []  # (size, came_from_split)
    for size in sizes:
        if size >= 4 and rng.random() < size / (2.0 * max_size):
            half = size // 2
            pieces.append((half, True))
            pieces.append((size - half, True))
        else:
            pieces.append((size, False))

    # step 3: initial batch — 15% of the pieces get uniformly random members
    batch = max(1, int(0.15 * len(pieces)))
    memberships: list[list[int]] = []
    degrees = [0] * num_real
    for size, _ in pieces[:batch]:
        members = rng.sample(range(num_real), min(size, num_real))
        memberships.append(members)
        for member in members:
            degrees[member] += 1

    # step 4: random or preferential attachment for the remaining pieces
    for size, from_split in pieces[batch:]:
        size = min(size, num_real)
        if from_split and rng.random() < 0.35:
            members = rng.sample(range(num_real), size)
        else:
            members = _preferential_members(rng, degrees, size)
        memberships.append(members)
        for member in members:
            degrees[member] += 1

    # step 5: cleanup — merge split halves back together (pairs of split
    # pieces were appended adjacently, so merge consecutive split entries)
    merged: list[list[int]] = []
    index = 0
    flags = [from_split for _, from_split in pieces]
    while index < len(memberships):
        if index + 1 < len(memberships) and flags[index] and flags[index + 1]:
            merged.append(sorted(set(memberships[index]) | set(memberships[index + 1])))
            index += 2
        else:
            merged.append(memberships[index])
            index += 1

    for label, members in enumerate(merged):
        virtual = graph.add_virtual_node(("clique", label))
        for member in members:
            internal = graph.internal(member)
            graph.add_edge(internal, virtual)
            graph.add_edge(virtual, internal)
    return graph


def _preferential_members(rng: SeededRandom, degrees: list[int], size: int) -> list[int]:
    """Pick a seed real node and grow a member set biased towards its
    high-degree 'neighborhood' (degree-squared weighting, as in the paper)."""
    num_real = len(degrees)
    seed_node = max(
        rng.sample(range(num_real), min(16, num_real)), key=lambda n: degrees[n]
    )
    members = {seed_node}
    # candidate pool: a random slice of nodes, weighted by degree^2, so that
    # hubs keep accumulating memberships (preferential attachment)
    pool = rng.sample(range(num_real), min(max(size * 4, 8), num_real))
    weights = [(degrees[n] + 1) ** 2 for n in pool]
    while len(members) < size and pool:
        pick = _weighted_index(rng, weights)
        members.add(pool[pick])
        weights[pick] = 0
        if not any(weights):
            break
    # top up uniformly if the pool ran dry
    while len(members) < size:
        members.add(rng.randint(0, num_real - 1))
    return sorted(members)


def _weighted_index(rng: SeededRandom, weights: list[float]) -> int:
    total = sum(weights)
    if total <= 0:
        return 0
    threshold = rng.random() * total
    running = 0.0
    for index, weight in enumerate(weights):
        running += weight
        if running >= threshold:
            return index
    return len(weights) - 1


def generate_from_spec(spec: SyntheticSpec) -> CondensedGraph:
    return generate_condensed(
        spec.num_real, spec.num_virtual, spec.mean_size, spec.std_size, seed=spec.seed
    )
