"""Synthetic DBLP-like dataset (Figure 15a schema).

The real DBLP dump the paper uses (1.6M authors, 3M publications, 8.6M
author–publication rows) is not redistributable, so this generator produces a
scaled-down database with the same schema and the same structural knobs that
drive the space-explosion phenomenon: the number of authors, the number of
publications, and the distribution of authors per publication (DBLP's
real-world average is small, which the paper calls the "best-case scenario").

Tables
------
``Author(id, name)``, ``Publication(pid, title, year, cid)``,
``AuthorPub(aid, pid)``, ``Conference(cid, name)``.

Extraction queries provided as constants: co-authors (Table 1 / Q1), recent
co-authors (temporal variant), authors at the same conference (the 1.8B-edge
example from the introduction), and the bipartite author–publication graph.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.utils.rand import SeededRandom

COAUTHOR_QUERY = """
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
"""

RECENT_COAUTHOR_QUERY_TEMPLATE = """
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID),
                   Publication(PubID, Title, Year, CID), Year >= {year}.
"""

SAME_CONFERENCE_QUERY = """
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, P1), Publication(P1, T1, Y1, CID),
                   AuthorPub(ID2, P2), Publication(P2, T2, Y2, CID).
"""

AUTHOR_PUBLICATION_BIPARTITE_QUERY = """
Nodes(ID, Name) :- Author(ID, Name).
Nodes(ID, Title) :- Publication(ID, Title, Year, CID).
Edges(ID1, ID2) :- AuthorPub(ID1, ID2).
"""


def generate_dblp(
    num_authors: int = 500,
    num_publications: int = 800,
    mean_authors_per_pub: float = 3.0,
    std_authors_per_pub: float = 1.5,
    num_conferences: int = 20,
    year_range: tuple[int, int] = (1990, 2016),
    seed: int = 0,
) -> Database:
    """Build a DBLP-shaped database.

    Authors are attached to publications with a mild preferential-attachment
    skew so that prolific authors exist (as in the real data).
    """
    rng = SeededRandom(seed)
    db = Database("dblp")
    db.create_table("Author", [("id", "int"), ("name", "str")], primary_key="id")
    db.create_table(
        "Publication",
        [("pid", "int"), ("title", "str"), ("year", "int"), ("cid", "int")],
        primary_key="pid",
        foreign_keys=[("cid", "Conference", "cid")],
    )
    db.create_table(
        "AuthorPub",
        [("aid", "int"), ("pid", "int")],
        foreign_keys=[("aid", "Author", "id"), ("pid", "Publication", "pid")],
    )
    db.create_table("Conference", [("cid", "int"), ("name", "str")], primary_key="cid")

    db.insert("Conference", [(c, f"conf_{c}") for c in range(num_conferences)])
    db.insert("Author", [(a, f"author_{a}") for a in range(num_authors)])

    publications = []
    author_pub: set[tuple[int, int]] = set()
    # weights implement preferential attachment: every time an author is
    # picked their weight grows, giving the familiar skewed productivity
    weights = [1.0] * num_authors
    low_year, high_year = year_range
    for pid in range(num_publications):
        year = rng.randint(low_year, high_year)
        conference = rng.randint(0, num_conferences - 1)
        publications.append((pid, f"paper_{pid}", year, conference))
        count = rng.gauss_int(mean_authors_per_pub, std_authors_per_pub, minimum=1)
        chosen: set[int] = set()
        while len(chosen) < min(count, num_authors):
            author = _weighted_pick(rng, weights)
            chosen.add(author)
        for author in chosen:
            weights[author] += 1.0
            author_pub.add((author, pid))

    db.insert("Publication", publications)
    db.insert("AuthorPub", sorted(author_pub))
    return db


def _weighted_pick(rng: SeededRandom, weights: list[float]) -> int:
    """Pick an index proportionally to its weight (linear scan, small n)."""
    total = sum(weights)
    threshold = rng.random() * total
    running = 0.0
    for index, weight in enumerate(weights):
        running += weight
        if running >= threshold:
            return index
    return len(weights) - 1
