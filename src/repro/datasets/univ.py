"""Synthetic university dataset (the db-book.com schema used for UNIV in Table 1
and for the [Q3] heterogeneous bipartite example in Figure 4/5b).

Tables
------
``Student(id, name)``, ``Instructor(id, name)``, ``Course(course_id, title)``,
``TookCourse(student_id, course_id)``, ``TaughtCourse(instructor_id, course_id)``.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.utils.rand import SeededRandom

COENROLLMENT_QUERY = """
Nodes(ID, Name) :- Student(ID, Name).
Edges(ID1, ID2) :- TookCourse(ID1, CourseID), TookCourse(ID2, CourseID).
"""

INSTRUCTOR_STUDENT_BIPARTITE_QUERY = """
Nodes(ID, Name) :- Instructor(ID, Name).
Nodes(ID, Name) :- Student(ID, Name).
Edges(ID1, ID2) :- TaughtCourse(ID1, CourseID), TookCourse(ID2, CourseID).
"""

CO_TEACHING_QUERY = """
Nodes(ID, Name) :- Instructor(ID, Name).
Edges(ID1, ID2) :- TaughtCourse(ID1, CourseID), TaughtCourse(ID2, CourseID).
"""


def generate_univ(
    num_students: int = 300,
    num_instructors: int = 40,
    num_courses: int = 50,
    mean_courses_per_student: float = 4.0,
    mean_courses_per_instructor: float = 2.0,
    seed: int = 0,
) -> Database:
    """Build a university-shaped database.

    Student IDs and instructor IDs live in disjoint ranges so the
    heterogeneous bipartite graph of [Q3] has no identifier collisions.
    """
    rng = SeededRandom(seed)
    db = Database("univ")
    db.create_table("Student", [("id", "int"), ("name", "str")], primary_key="id")
    db.create_table("Instructor", [("id", "int"), ("name", "str")], primary_key="id")
    db.create_table("Course", [("course_id", "int"), ("title", "str")], primary_key="course_id")
    db.create_table(
        "TookCourse",
        [("student_id", "int"), ("course_id", "int")],
        foreign_keys=[("student_id", "Student", "id"), ("course_id", "Course", "course_id")],
    )
    db.create_table(
        "TaughtCourse",
        [("instructor_id", "int"), ("course_id", "int")],
        foreign_keys=[
            ("instructor_id", "Instructor", "id"),
            ("course_id", "Course", "course_id"),
        ],
    )

    instructor_base = 1_000_000  # keep instructor IDs disjoint from student IDs
    db.insert("Student", [(s, f"student_{s}") for s in range(num_students)])
    db.insert(
        "Instructor",
        [(instructor_base + i, f"instructor_{i}") for i in range(num_instructors)],
    )
    db.insert("Course", [(c, f"course_{c}") for c in range(num_courses)])

    took: set[tuple[int, int]] = set()
    for student in range(num_students):
        count = rng.gauss_int(mean_courses_per_student, 1.5, minimum=1)
        for course in rng.sample(range(num_courses), min(count, num_courses)):
            took.add((student, course))
    taught: set[tuple[int, int]] = set()
    for index in range(num_instructors):
        count = rng.gauss_int(mean_courses_per_instructor, 1.0, minimum=1)
        for course in rng.sample(range(num_courses), min(count, num_courses)):
            taught.add((instructor_base + index, course))

    db.insert("TookCourse", sorted(took))
    db.insert("TaughtCourse", sorted(taught))
    return db
