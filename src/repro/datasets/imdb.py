"""Synthetic IMDB-like dataset (Figure 15b schema).

The paper extracts the *co-actors* graph (actors connected when they appear in
the same movie) from an IMDB subset; movies have far larger casts than papers
have authors, which is what makes the IMDB expansion so much worse than DBLP
(8× between EXP and C-DUP in Figure 10).  The generator therefore defaults to
a much higher mean cast size than the DBLP generator's author count.

Tables
------
``name(id, name)`` (people), ``title(id, title, year)`` (movies),
``cast_info(id, person_id, movie_id, role_id)``.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.utils.rand import SeededRandom

COACTOR_QUERY = """
Nodes(ID, Name) :- name(ID, Name).
Edges(ID1, ID2) :- cast_info(_, ID1, MovieID, R1), cast_info(_, ID2, MovieID, R2).
"""

ACTOR_MOVIE_BIPARTITE_QUERY = """
Nodes(ID, Name) :- name(ID, Name).
Nodes(ID, Title) :- title(ID, Title, Year).
Edges(ID1, ID2) :- cast_info(_, ID1, ID2, Role).
"""


def generate_imdb(
    num_people: int = 400,
    num_movies: int = 60,
    mean_cast_size: float = 10.0,
    std_cast_size: float = 4.0,
    year_range: tuple[int, int] = (1950, 2016),
    seed: int = 0,
) -> Database:
    """Build an IMDB-shaped database with large overlapping casts."""
    rng = SeededRandom(seed)
    db = Database("imdb")
    db.create_table("name", [("id", "int"), ("name", "str")], primary_key="id")
    db.create_table(
        "title", [("id", "int"), ("title", "str"), ("year", "int")], primary_key="id"
    )
    db.create_table(
        "cast_info",
        [("id", "int"), ("person_id", "int"), ("movie_id", "int"), ("role_id", "int")],
        primary_key="id",
        foreign_keys=[("person_id", "name", "id"), ("movie_id", "title", "id")],
    )

    db.insert("name", [(p, f"person_{p}") for p in range(num_people)])
    low_year, high_year = year_range
    db.insert(
        "title",
        [(m, f"movie_{m}", rng.randint(low_year, high_year)) for m in range(num_movies)],
    )

    rows = []
    cast_id = 0
    for movie in range(num_movies):
        cast_size = rng.gauss_int(mean_cast_size, std_cast_size, minimum=2)
        for person in rng.sample(range(num_people), min(cast_size, num_people)):
            rows.append((cast_id, person, movie, rng.randint(0, 5)))
            cast_id += 1
    db.insert("cast_info", rows)
    return db
