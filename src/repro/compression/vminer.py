"""VMiner (Virtual Node Miner) — the graph-compression baseline of Figure 10.

Buehrer & Chellapilla's algorithm compresses a web graph by repeatedly mining
bi-cliques: groups of nodes ``A`` and ``B`` such that every ``u in A`` links to
every ``v in B``.  Each bi-clique is replaced by a virtual node ``C`` with
edges ``u -> C`` and ``C -> v``, saving ``|A|*|B| - (|A|+|B|)`` edges.  The
original uses frequent-pattern mining over clustered adjacency lists; this
reproduction uses the same structure with a simpler clustering step (min-hash
bucketing of out-neighbor lists) and a greedy common-neighbor extraction per
bucket, run for several passes.

The crucial point the paper makes is preserved by construction: **VMiner needs
the expanded graph as input** — it cannot start from the implicit relational
representation — and in practice it finds worse bi-cliques than the ones the
relational structure hands GraphGen for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.api import Graph
from repro.graph.condensed import CondensedGraph
from repro.utils.rand import SeededRandom


@dataclass
class VMinerResult:
    """Outcome of a VMiner compression run."""

    condensed: CondensedGraph
    passes: int
    bicliques_found: int
    input_edges: int
    output_edges: int
    virtual_nodes: int

    @property
    def compression_ratio(self) -> float:
        """Output edges / input edges (smaller is better)."""
        if self.input_edges == 0:
            return 1.0
        return self.output_edges / self.input_edges


def _minhash_signature(neighbors: list, hashes: list[int], universe: int) -> tuple[int, ...]:
    """Cheap min-hash signature of a neighbor list (one value per hash seed)."""
    signature = []
    for seed in hashes:
        best = None
        for neighbor in neighbors:
            value = (hash(neighbor) * 31 + seed) % universe
            if best is None or value < best:
                best = value
        signature.append(best if best is not None else -1)
    return tuple(signature)


def compress(
    graph: Graph,
    passes: int = 4,
    num_hashes: int = 2,
    min_group: int = 2,
    min_common: int = 2,
    seed: int = 0,
) -> VMinerResult:
    """Compress the expanded ``graph`` into a condensed representation.

    Parameters mirror the knobs the paper says it swept ("VMiner has several
    parameters which we exhaustively tried out combinations of"): the number
    of passes, the min-hash width used for clustering, and the minimum
    bi-clique dimensions worth extracting.
    """
    rng = SeededRandom(seed)

    # working adjacency (deduplicated out-neighbor sets of real nodes)
    adjacency: dict = {v: set(graph.get_neighbors(v)) for v in graph.get_vertices()}
    input_edges = sum(len(n) for n in adjacency.values())

    result = CondensedGraph()
    for vertex in adjacency:
        result.add_real_node(vertex)

    bicliques = 0
    universe = max(1024, 4 * len(adjacency))
    for _ in range(passes):
        hashes = [rng.randint(1, universe) for _ in range(num_hashes)]
        buckets: dict[tuple[int, ...], list] = {}
        for vertex, neighbors in adjacency.items():
            if len(neighbors) < min_common:
                continue
            signature = _minhash_signature(sorted(neighbors, key=repr), hashes, universe)
            buckets.setdefault(signature, []).append(vertex)

        progress = False
        for members in buckets.values():
            if len(members) < min_group:
                continue
            common = set.intersection(*(adjacency[m] for m in members))
            if len(common) < min_common:
                continue
            group_size, common_size = len(members), len(common)
            saving = group_size * common_size - (group_size + common_size)
            if saving <= 0:
                continue
            # replace the bi-clique with a virtual node
            virtual = result.add_virtual_node(("vminer", bicliques))
            for member in members:
                result.add_edge(result.internal(member), virtual)
                adjacency[member] -= common
            for target in sorted(common, key=repr):
                result.add_edge(virtual, result.internal(target))
            bicliques += 1
            progress = True
        if not progress:
            break

    # whatever edges remain stay as direct edges
    for vertex, neighbors in adjacency.items():
        for target in sorted(neighbors, key=repr):
            result.add_edge(result.internal(vertex), result.internal(target))

    output_edges = result.num_condensed_edges
    return VMinerResult(
        condensed=result,
        passes=passes,
        bicliques_found=bicliques,
        input_edges=input_edges,
        output_edges=output_edges,
        virtual_nodes=result.num_virtual_nodes,
    )
