"""External compression baselines (VMiner)."""

from repro.compression.vminer import VMinerResult, compress

__all__ = ["VMinerResult", "compress"]
