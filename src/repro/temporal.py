"""Temporal graph analytics helpers.

The paper's introduction motivates "juxtapos[ing] and compar[ing] graphs
constructed over different time periods (i.e., temporal graph analytics)" —
for example a co-author graph per year.  GraphGen makes extracting each
snapshot cheap (one extraction query with a time predicate per period); this
module provides the comparison side:

* :func:`extract_snapshots` — run one parameterised extraction query per
  period and collect the resulting graphs;
* :func:`snapshot_diff` — vertex / edge additions, removals and overlap
  between two snapshots;
* :func:`temporal_metrics` — per-period size and density plus turnover
  relative to the previous period, ready to print or plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from repro.core.graphgen import GraphGen
from repro.exceptions import GraphGenError
from repro.graph.api import Graph, VertexId, logical_edge_set


# --------------------------------------------------------------------------- #
# snapshot extraction
# --------------------------------------------------------------------------- #
def extract_snapshots(
    graphgen: GraphGen,
    query_template: str,
    periods: Mapping[Hashable, Mapping[str, Any]] | Sequence[Hashable],
    representation: str = "cdup",
) -> dict[Hashable, Graph]:
    """Extract one graph per period from a parameterised query.

    ``query_template`` is a ``str.format`` template; each period supplies the
    substitution values.  ``periods`` is either a mapping
    ``label -> format kwargs`` or a plain sequence of labels, in which case
    each label is passed as the single ``{period}`` value.

    Example::

        snapshots = extract_snapshots(
            gg,
            '''
            Nodes(ID, Name) :- Author(ID, Name).
            Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P),
                               Pub(P, Year), Year = {period}.
            ''',
            periods=[2015, 2016, 2017],
        )
    """
    if not isinstance(periods, Mapping):
        periods = {label: {"period": label} for label in periods}
    snapshots: dict[Hashable, Graph] = {}
    for label, parameters in periods.items():
        try:
            query = query_template.format(**parameters)
        except KeyError as exc:
            raise GraphGenError(
                f"period {label!r} does not supply template parameter {exc}"
            ) from None
        snapshots[label] = graphgen.extract(query, representation=representation)
    return snapshots


# --------------------------------------------------------------------------- #
# pairwise comparison
# --------------------------------------------------------------------------- #
@dataclass
class SnapshotDiff:
    """Difference between two graph snapshots (old -> new)."""

    added_vertices: set[VertexId]
    removed_vertices: set[VertexId]
    added_edges: set[tuple[VertexId, VertexId]]
    removed_edges: set[tuple[VertexId, VertexId]]
    common_vertices: int
    common_edges: int

    @property
    def vertex_jaccard(self) -> float:
        """Jaccard similarity of the two vertex sets (1.0 for identical sets)."""
        union = self.common_vertices + len(self.added_vertices) + len(self.removed_vertices)
        return self.common_vertices / union if union else 1.0

    @property
    def edge_jaccard(self) -> float:
        """Jaccard similarity of the two edge sets (1.0 for identical sets)."""
        union = self.common_edges + len(self.added_edges) + len(self.removed_edges)
        return self.common_edges / union if union else 1.0


def snapshot_diff(old: Graph, new: Graph) -> SnapshotDiff:
    """Compare two snapshots of (conceptually) the same evolving graph."""
    old_vertices = set(old.get_vertices())
    new_vertices = set(new.get_vertices())
    old_edges = logical_edge_set(old)
    new_edges = logical_edge_set(new)
    return SnapshotDiff(
        added_vertices=new_vertices - old_vertices,
        removed_vertices=old_vertices - new_vertices,
        added_edges=new_edges - old_edges,
        removed_edges=old_edges - new_edges,
        common_vertices=len(old_vertices & new_vertices),
        common_edges=len(old_edges & new_edges),
    )


# --------------------------------------------------------------------------- #
# series-level metrics
# --------------------------------------------------------------------------- #
def _density(num_vertices: int, num_edges: int) -> float:
    if num_vertices <= 1:
        return 0.0
    return num_edges / (num_vertices * (num_vertices - 1))


def temporal_metrics(snapshots: Mapping[Hashable, Graph]) -> list[dict[str, Any]]:
    """Per-period summary of an ordered series of snapshots.

    Returns one row per period (in the mapping's order) with vertex / edge
    counts, directed density, and — from the second period on — the edge
    Jaccard overlap and turnover with respect to the previous period.
    """
    rows: list[dict[str, Any]] = []
    previous_label: Hashable | None = None
    previous_graph: Graph | None = None
    for label, graph in snapshots.items():
        num_vertices = graph.num_vertices()
        num_edges = graph.num_edges()
        row: dict[str, Any] = {
            "period": label,
            "vertices": num_vertices,
            "edges": num_edges,
            "density": _density(num_vertices, num_edges),
        }
        if previous_graph is not None:
            diff = snapshot_diff(previous_graph, graph)
            row["previous_period"] = previous_label
            row["edge_jaccard"] = diff.edge_jaccard
            row["vertex_jaccard"] = diff.vertex_jaccard
            row["new_edges"] = len(diff.added_edges)
            row["disappeared_edges"] = len(diff.removed_edges)
        rows.append(row)
        previous_label, previous_graph = label, graph
    return rows
