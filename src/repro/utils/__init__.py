"""Small shared utilities: timing, memory estimation, seeded randomness."""

from repro.utils.timing import Timer, timed, time_call
from repro.utils.memory import (
    deep_size_of,
    estimate_adjacency_bytes,
    estimate_bitmap_bytes,
    format_bytes,
)
from repro.utils.memstats import mapped_snapshot_bytes, peak_rss_bytes
from repro.utils.rand import SeededRandom

__all__ = [
    "Timer",
    "timed",
    "time_call",
    "deep_size_of",
    "estimate_adjacency_bytes",
    "estimate_bitmap_bytes",
    "format_bytes",
    "mapped_snapshot_bytes",
    "peak_rss_bytes",
    "SeededRandom",
]
