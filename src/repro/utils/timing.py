"""Wall-clock timing helpers used by the benchmark harness and examples."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


class Timer:
    """A simple restartable wall-clock timer.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed(label: str, sink: dict[str, float] | None = None, verbose: bool = False) -> Iterator[Timer]:
    """Context manager that records the elapsed time under ``label``.

    Parameters
    ----------
    label:
        Name of the measured section.
    sink:
        Optional dict that receives ``sink[label] = seconds``.
    verbose:
        Print the measurement when the block exits.
    """
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()
        if sink is not None:
            sink[label] = timer.elapsed
        if verbose:
            print(f"[timed] {label}: {timer.elapsed:.4f}s")


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
