"""Memory-footprint estimation for in-memory graph representations.

The paper reports memory consumption (in GB) of the EXP, C-DUP, DEDUP-1 and
BITMAP representations (Tables 3 and 4).  Reproducing the exact JVM numbers is
not meaningful in Python, so this module provides two complementary tools:

* :func:`deep_size_of` — an actual recursive ``sys.getsizeof`` walk over a
  Python object graph, useful for small graphs and for sanity checks.
* :func:`estimate_adjacency_bytes` / :func:`estimate_bitmap_bytes` — analytic
  estimates using the cost model of the paper (a node costs one object plus
  two adjacency arrays, an edge costs one slot in each endpoint's array, a
  bitmap costs one bit per out-edge plus an index entry).  These scale to
  graphs of any size and are what the Table 3 / Table 4 benchmarks report.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable

#: analytic cost model (bytes); chosen to mirror a 64-bit JVM-ish layout so
#: that the *relative* sizes of the representations match the paper.
NODE_OVERHEAD_BYTES = 64
EDGE_SLOT_BYTES = 8
BITMAP_INDEX_ENTRY_BYTES = 16
PROPERTY_BYTES = 48


def deep_size_of(obj: Any, _seen: set[int] | None = None) -> int:
    """Recursively compute the size in bytes of ``obj`` and everything it
    references.  Shared sub-objects are counted once."""
    if _seen is None:
        _seen = set()
    oid = id(obj)
    if oid in _seen:
        return 0
    _seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_size_of(key, _seen)
            size += deep_size_of(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_size_of(item, _seen)
    elif hasattr(obj, "__dict__"):
        size += deep_size_of(vars(obj), _seen)
    elif hasattr(obj, "__slots__"):
        for slot in obj.__slots__:
            if hasattr(obj, slot):
                size += deep_size_of(getattr(obj, slot), _seen)
    return size


def estimate_adjacency_bytes(num_nodes: int, num_edges: int, num_properties: int = 0) -> int:
    """Analytic memory estimate for an adjacency-list (CSR-variant) graph.

    Each node pays :data:`NODE_OVERHEAD_BYTES` (object header + two array
    headers), each directed edge pays :data:`EDGE_SLOT_BYTES` in the source's
    out-list and the target's in-list.
    """
    if num_nodes < 0 or num_edges < 0:
        raise ValueError("node and edge counts must be non-negative")
    return (
        num_nodes * NODE_OVERHEAD_BYTES
        + 2 * num_edges * EDGE_SLOT_BYTES
        + num_properties * PROPERTY_BYTES
    )


def estimate_bitmap_bytes(bitmap_sizes: Iterable[tuple[int, int]]) -> int:
    """Analytic estimate of the extra memory the BITMAP representation pays.

    Parameters
    ----------
    bitmap_sizes:
        Iterable of ``(num_bitmaps, bits_per_bitmap)`` pairs, one per virtual
        node that carries bitmaps.
    """
    total = 0
    for num_bitmaps, bits in bitmap_sizes:
        if num_bitmaps < 0 or bits < 0:
            raise ValueError("bitmap counts must be non-negative")
        bytes_per_bitmap = (bits + 7) // 8
        total += num_bitmaps * (bytes_per_bitmap + BITMAP_INDEX_ENTRY_BYTES)
    return total


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(2048) == '2.0 KiB'``."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TiB"
