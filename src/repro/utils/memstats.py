"""Peak-RSS instrumentation for out-of-core workers (stdlib-only).

The sharded-snapshot contract — "no worker process ever maps more than its
own shard" — is asserted, not eyeballed: every plan worker reports how many
bytes of snapshot file it actually mapped plus its process-wide peak resident
set size, and the fig19 benchmark compares both against the configured
memory budget.  ``resource.getrusage`` is POSIX-only; on platforms without it
the helpers degrade to ``0`` (peak RSS unknown) rather than failing, since
the numbers are observability, not control flow.
"""

from __future__ import annotations

import sys

try:  # pragma: no cover - resource is present on every POSIX python
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """The calling process's lifetime peak resident set size, in bytes.

    ``ru_maxrss`` is reported in kilobytes on Linux and in bytes on macOS;
    0 means the platform cannot report it.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return maxrss if sys.platform == "darwin" else maxrss * 1024


def mapped_snapshot_bytes(csr) -> int:
    """How many bytes of snapshot file ``csr`` keeps memory-mapped.

    Zero-copy loads (monolithic or shard) keep their mapping alive through
    ``_buffer_owner``; heap-built or copied snapshots map nothing.
    """
    owner = getattr(csr, "_buffer_owner", None)
    if owner is None:
        return 0
    try:
        return len(owner)
    except TypeError:  # pragma: no cover - exotic buffer providers
        return 0
