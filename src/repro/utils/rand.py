"""Seeded randomness helpers.

All synthetic dataset generators in :mod:`repro.datasets` take a ``seed``
argument and route every random decision through a :class:`SeededRandom`, so
that datasets — and therefore benchmark results — are reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class SeededRandom:
    """Thin wrapper around :class:`random.Random` with a few extra draws."""

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = random.Random(seed)
        self.seed = seed

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items; if ``k`` exceeds the population size,
        return a shuffled copy of the whole population."""
        if k >= len(seq):
            items = list(seq)
            self._rng.shuffle(items)
            return items
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list[T]) -> list[T]:
        self._rng.shuffle(seq)
        return seq

    def gauss_int(self, mean: float, std: float, minimum: int = 1) -> int:
        """Draw from a normal distribution, round and clamp below at ``minimum``.

        Used for virtual-node sizes in the synthetic condensed-graph
        generator (Appendix C.1 of the paper).
        """
        value = int(round(self._rng.gauss(mean, std)))
        return max(minimum, value)

    def zipf_int(self, alpha: float, max_value: int) -> int:
        """Draw an integer in ``[1, max_value]`` with a Zipf-like skew.

        A simple inverse-CDF construction is used so we do not depend on
        numpy here.  ``alpha`` close to 0 is near uniform, larger values skew
        towards 1.
        """
        if max_value < 1:
            raise ValueError("max_value must be >= 1")
        u = self._rng.random()
        # inverse of P(X <= x) ~ (x / max)^(1/(1+alpha))
        value = int(max_value * (u ** (1.0 + alpha))) + 1
        return min(value, max_value)

    def spawn(self) -> "SeededRandom":
        """Derive an independent child generator (deterministic given parent)."""
        return SeededRandom(self._rng.randrange(2**63))
