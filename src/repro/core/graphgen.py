"""The public GraphGen facade.

This is the class users interact with: connect it to a
:class:`~repro.relational.database.Database`, hand it an extraction query in
the Datalog DSL, and get back an in-memory graph in the representation of
your choice::

    gg = GraphGen(db)
    graph = gg.extract('''
        Nodes(ID, Name) :- Author(ID, Name).
        Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
    ''', representation="bitmap")
    pagerank = repro.algorithms.pagerank(graph)

Representations: ``"cdup"`` (default, no preprocessing), ``"exp"``,
``"dedup1"``, ``"dedup2"``, ``"bitmap"`` or ``"auto"`` (follow the paper's
Section 6.5 guidance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.config import ENGINE_AUTO, ENGINE_PUSHDOWN, ExtractionOptions
from repro.relational.pushdown import PushdownUnsupported
from repro.core.extractor import ExtractionReport, Extractor, maybe_auto_expand
from repro.core.planner import ExtractionPlan, Planner
from repro.dedup import deduplicate_dedup1, deduplicate_dedup2, preprocess_bitmap
from repro.dedup.expand import expand
from repro.dsl.ast import GraphSpec
from repro.dsl.parser import parse
from repro.exceptions import ExtractionError
from repro.graph.api import Graph
from repro.graph.cdup import CDupGraph
from repro.graph.condensed import CondensedGraph
from repro.relational.database import Database

REPRESENTATIONS = ("cdup", "exp", "dedup1", "dedup2", "bitmap", "auto")


@dataclass
class ExtractionResult:
    """A graph plus everything we know about how it was produced."""

    graph: Graph
    condensed: CondensedGraph
    plan: ExtractionPlan
    report: ExtractionReport
    representation: str


class GraphGen:
    """End-to-end hidden-graph extraction over a relational database."""

    def __init__(self, database: Database, options: ExtractionOptions | None = None, **option_overrides: Any) -> None:
        if options is not None and option_overrides:
            raise ValueError("pass either an ExtractionOptions object or keyword overrides, not both")
        self._db = database
        self._options = options or ExtractionOptions(**option_overrides)
        self._planner = Planner(database, self._options)
        self._extractor = Extractor(database, self._options)

    # ------------------------------------------------------------------ #
    @property
    def database(self) -> Database:
        return self._db

    @property
    def options(self) -> ExtractionOptions:
        return self._options

    # ------------------------------------------------------------------ #
    def parse(self, query: str | GraphSpec) -> GraphSpec:
        """Parse an extraction query (strings only; specs pass through)."""
        if isinstance(query, GraphSpec):
            return query
        return parse(query)

    def plan(self, query: str | GraphSpec) -> ExtractionPlan:
        """Plan an extraction without executing it."""
        return self._planner.plan(self.parse(query))

    def explain(self, query: str | GraphSpec) -> str:
        """Human-readable plan description plus the SQL that would be issued.

        When a pushdown-capable engine is selected, the set-based SQL program
        (temp-table materialisation, window-function virtual-node numbering,
        sorted edge emission) is printed after the per-segment SQL.
        """
        plan = self.plan(query)
        lines = [plan.describe(), "sql:"]
        lines.extend(f"  {statement}" for statement in plan.sql(self._db))
        if self._options.resolved_engine() in (ENGINE_AUTO, ENGINE_PUSHDOWN):
            lines.append("pushdown sql:")
            try:
                lines.extend(f"  {statement}" for statement in plan.pushdown_sql(self._db))
            except PushdownUnsupported as exc:
                lines.append(
                    f"  (not pushable: {exc}; "
                    f"the {self._options.fallback_engine()} engine would run)"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    def extract_condensed(self, query: str | GraphSpec) -> tuple[CondensedGraph, ExtractionReport]:
        """Extract the raw condensed (C-DUP) structure."""
        return self._extractor.extract_condensed(self.plan(query))

    def extract(
        self,
        query: str | GraphSpec,
        representation: str = "cdup",
        dedup_algorithm: str = "greedy_virtual_first",
        bitmap_algorithm: str = "bitmap2",
        ordering: str = "random",
        seed: int = 0,
    ) -> Graph:
        """Extract a graph and return it in the requested representation."""
        return self.extract_with_report(
            query,
            representation=representation,
            dedup_algorithm=dedup_algorithm,
            bitmap_algorithm=bitmap_algorithm,
            ordering=ordering,
            seed=seed,
        ).graph

    def extract_with_report(
        self,
        query: str | GraphSpec,
        representation: str = "cdup",
        dedup_algorithm: str = "greedy_virtual_first",
        bitmap_algorithm: str = "bitmap2",
        ordering: str = "random",
        seed: int = 0,
    ) -> ExtractionResult:
        """Like :meth:`extract` but also return the plan, condensed graph and
        extraction statistics."""
        if representation not in REPRESENTATIONS:
            raise ExtractionError(
                f"unknown representation {representation!r}; expected one of {REPRESENTATIONS}"
            )
        plan = self.plan(query)
        condensed, report = self._extractor.extract_condensed(plan)

        graph: Graph
        if representation == "auto":
            chosen, expanded = maybe_auto_expand(condensed, self._options)
            if expanded:
                graph = chosen  # type: ignore[assignment]
                representation = "exp"
            else:
                graph = CDupGraph(condensed)
                representation = "cdup"
        elif representation == "cdup":
            graph = CDupGraph(condensed)
        elif representation == "exp":
            graph = expand(condensed)
            report.expanded_edges = graph.num_edges()
        elif representation == "dedup1":
            graph = deduplicate_dedup1(
                condensed, algorithm=dedup_algorithm, ordering=ordering, seed=seed
            )
        elif representation == "dedup2":
            graph = deduplicate_dedup2(condensed)
        elif representation == "bitmap":
            graph = preprocess_bitmap(condensed, algorithm=bitmap_algorithm)
        else:  # pragma: no cover - guarded above
            raise ExtractionError(f"unhandled representation {representation!r}")

        return ExtractionResult(
            graph=graph,
            condensed=condensed,
            plan=plan,
            report=report,
            representation=representation,
        )
