"""GraphGen's core: planning, extraction and the user-facing facade."""

from repro.core.config import (
    ENGINE_AUTO,
    ENGINE_PUSHDOWN,
    ENGINE_PYTHON,
    ENGINE_SQLITE,
    EXTRACT_ENGINES,
    ExtractionOptions,
)
from repro.core.planner import (
    EdgePlan,
    ExtractionPlan,
    JoinDecision,
    NodePlan,
    Planner,
    SegmentPlan,
)
from repro.core.extractor import ExtractionReport, Extractor, QueryExecutor, maybe_auto_expand
from repro.core.graphgen import ExtractionResult, GraphGen, REPRESENTATIONS

__all__ = [
    "ENGINE_AUTO",
    "ENGINE_PUSHDOWN",
    "ENGINE_PYTHON",
    "ENGINE_SQLITE",
    "EXTRACT_ENGINES",
    "ExtractionOptions",
    "EdgePlan",
    "ExtractionPlan",
    "JoinDecision",
    "NodePlan",
    "Planner",
    "SegmentPlan",
    "ExtractionReport",
    "Extractor",
    "QueryExecutor",
    "maybe_auto_expand",
    "ExtractionResult",
    "GraphGen",
    "REPRESENTATIONS",
]
