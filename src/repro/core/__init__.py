"""GraphGen's core: planning, extraction and the user-facing facade."""

from repro.core.config import ExtractionOptions
from repro.core.planner import (
    EdgePlan,
    ExtractionPlan,
    JoinDecision,
    NodePlan,
    Planner,
    SegmentPlan,
)
from repro.core.extractor import ExtractionReport, Extractor, QueryExecutor, maybe_auto_expand
from repro.core.graphgen import ExtractionResult, GraphGen, REPRESENTATIONS

__all__ = [
    "ExtractionOptions",
    "EdgePlan",
    "ExtractionPlan",
    "JoinDecision",
    "NodePlan",
    "Planner",
    "SegmentPlan",
    "ExtractionReport",
    "Extractor",
    "QueryExecutor",
    "maybe_auto_expand",
    "ExtractionResult",
    "GraphGen",
    "REPRESENTATIONS",
]
