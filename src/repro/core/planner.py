"""Query planning: deciding which joins to postpone (Section 4.2, Steps 1–3).

The planner turns a parsed :class:`~repro.dsl.ast.GraphSpec` into an
:class:`ExtractionPlan`:

* every Nodes rule becomes a conjunctive query producing ``(id, prop...)``;
* every acyclic Edges rule is linearised into a join chain
  ``R1(ID1, a1), R2(a1, a2), ..., Rn(a_{n-1}, ID2)`` and each join attribute
  ``ai`` is classified as *large-output* or not using the catalog statistics;
* the chain is then split at the large-output joins into *segments*; each
  segment becomes one conjunctive query (these are the queries handed to the
  database), and each large-output join attribute becomes a layer of virtual
  nodes in the condensed graph;
* cyclic / non-linearisable Edges rules fall back to a single query that
  materialises the full edge list (the paper's Case 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.ast import Anonymous, Atom, Constant, GraphSpec, Rule, Variable
from repro.dsl.validator import EdgeChain, derive_chain, is_acyclic
from repro.exceptions import DSLValidationError, ExtractionError
from repro.core.config import (
    ENGINE_AUTO,
    ENGINE_PUSHDOWN,
    ENGINE_SQLITE,
    ESTIMATOR_EXACT,
    ExtractionOptions,
)
from repro.relational.aggregates import (
    AggregateQuery,
    AggregateSpec,
    HavingClause,
    aggregate_to_sql,
)
from repro.relational.database import Database
from repro.relational.query import Comparison, ConjunctiveQuery, Const, QueryAtom
from repro.relational.sql import to_sql


# --------------------------------------------------------------------------- #
# plan data structures
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class JoinDecision:
    """Classification of one join in an Edges chain."""

    variable: str
    left_table: str
    left_column: str
    right_table: str
    right_column: str
    left_rows: int
    right_rows: int
    estimated_output: float
    threshold: float
    is_large_output: bool


@dataclass
class SegmentPlan:
    """One conjunctive query of an Edges chain between two boundary variables."""

    query: ConjunctiveQuery
    in_variable: str
    out_variable: str
    #: True when ``in_variable`` is the rule's source-ID variable
    starts_at_source: bool
    #: True when ``out_variable`` is the rule's target-ID variable
    ends_at_target: bool


@dataclass
class EdgePlan:
    """Plan for a single Edges rule."""

    rule: Rule
    condensed: bool
    #: populated when ``condensed`` is True
    chain: EdgeChain | None = None
    decisions: list[JoinDecision] = field(default_factory=list)
    segments: list[SegmentPlan] = field(default_factory=list)
    #: the large-output join variables, in chain order (one virtual layer each)
    virtual_attributes: list[str] = field(default_factory=list)
    #: populated when ``condensed`` is False: one query computing (ID1, ID2)
    full_query: ConjunctiveQuery | None = None
    #: populated instead of ``full_query`` for rules that use aggregation
    #: constructs; produces (ID1, ID2, aggregates...) rows
    aggregate_query: AggregateQuery | None = None


@dataclass
class NodePlan:
    """Plan for a single Nodes rule."""

    rule: Rule
    query: ConjunctiveQuery
    id_variable: str
    property_variables: list[str]


@dataclass
class ExtractionPlan:
    """The complete plan for one extraction query."""

    spec: GraphSpec
    node_plans: list[NodePlan]
    edge_plans: list[EdgePlan]
    options: ExtractionOptions

    @property
    def is_fully_condensed(self) -> bool:
        return all(plan.condensed for plan in self.edge_plans)

    @property
    def case(self) -> int:
        """1 when every Edges rule admits the condensed extraction, else 2."""
        return 1 if self.is_fully_condensed else 2

    def num_virtual_layers(self) -> int:
        return max((len(p.virtual_attributes) for p in self.edge_plans), default=0)

    def sql(self, db: Database) -> list[str]:
        """The SQL statements this plan would issue, in execution order."""
        statements = [to_sql(db, plan.query) for plan in self.node_plans]
        for plan in self.edge_plans:
            if plan.condensed:
                statements.extend(to_sql(db, seg.query) for seg in plan.segments)
            elif plan.aggregate_query is not None:
                statements.append(aggregate_to_sql(db, plan.aggregate_query))
            elif plan.full_query is not None:
                statements.append(to_sql(db, plan.full_query))
        return statements

    def pushdown_sql(self, db: Database) -> list[str]:
        """The set-based SQL program the pushdown engine would run.

        Lowers the plan through :mod:`repro.relational.pushdown`; raises
        :class:`~repro.relational.pushdown.PushdownUnsupported` when the plan
        cannot be pushed down (callers show the fallback instead).
        """
        from repro.relational.pushdown import compile_plan

        return compile_plan(db, self).display

    def describe(self) -> str:
        """Human-readable plan summary (used by ``GraphGen.explain``)."""
        lines = [f"extraction plan (case {self.case})"]
        for node_plan in self.node_plans:
            lines.append(f"  nodes: {node_plan.rule}")
        for edge_plan in self.edge_plans:
            lines.append(f"  edges: {edge_plan.rule}")
            if edge_plan.condensed:
                for decision in edge_plan.decisions:
                    kind = "LARGE-OUTPUT" if decision.is_large_output else "small"
                    lines.append(
                        f"    join on {decision.variable}: "
                        f"{decision.left_table}({decision.left_column}) x "
                        f"{decision.right_table}({decision.right_column}) "
                        f"~ {decision.estimated_output:.0f} rows [{kind}]"
                    )
                lines.append(
                    f"    -> {len(edge_plan.segments)} segment(s), "
                    f"{len(edge_plan.virtual_attributes)} virtual layer(s)"
                )
            elif edge_plan.aggregate_query is not None:
                lines.append("    -> aggregated (expanded) edge query")
            else:
                lines.append("    -> full (expanded) edge query")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def dsl_atom_to_query_atom(atom: Atom) -> QueryAtom:
    """Convert a DSL atom into the relational layer's QueryAtom."""
    arguments: list[object] = []
    for term in atom.terms:
        if isinstance(term, Variable):
            arguments.append(term.name)
        elif isinstance(term, Constant):
            arguments.append(Const(term.value))
        elif isinstance(term, Anonymous):
            arguments.append(None)
        else:  # pragma: no cover - defensive
            raise DSLValidationError(f"unsupported term {term!r} in atom {atom}")
    return QueryAtom(table=atom.predicate, arguments=tuple(arguments))


def _comparisons_for(rule: Rule, atoms: list[Atom]) -> list[Comparison]:
    """Rule comparisons whose variable is bound by one of ``atoms``."""
    bound: set[str] = set()
    for atom in atoms:
        bound.update(atom.variable_names())
    return [
        Comparison(c.variable.name, c.op, c.value)
        for c in rule.comparisons
        if c.variable.name in bound
    ]


def _column_for_variable(db: Database, atom: Atom, variable: str) -> str:
    """Column name bound to ``variable`` in ``atom`` (first occurrence)."""
    schema = db.table(atom.predicate).schema
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable) and term.name == variable:
            return schema.column_names[position]
    raise ExtractionError(
        f"variable {variable!r} does not occur in atom {atom} (planner bug)"
    )


# --------------------------------------------------------------------------- #
# the planner
# --------------------------------------------------------------------------- #
class Planner:
    """Builds :class:`ExtractionPlan` objects from parsed specifications."""

    def __init__(self, db: Database, options: ExtractionOptions | None = None) -> None:
        self._db = db
        self._options = options or ExtractionOptions()
        self._probe_cache: dict[tuple[Any, ...], int] = {}

    # ------------------------------------------------------------------ #
    # catalog probes
    #
    # When a SQLite-backed engine will run the plan, the planner probes
    # row_count / n_distinct / exact join sizes through the database's cached
    # SQLite mirror (one shared mirror per Database) instead of the Python
    # catalog.  The SQL is written to return exactly the catalog's numbers
    # (DISTINCT counts NULL as one value; joins use NULL-safe IS equality),
    # so plans are identical across engines.
    # ------------------------------------------------------------------ #
    def _sqlite_probe_backend(self):
        if self._options.resolved_engine() not in (ENGINE_SQLITE, ENGINE_PUSHDOWN, ENGINE_AUTO):
            return None
        try:
            return self._db.sqlite_backend()
        except Exception:
            return None

    def _probe(self, key: tuple[Any, ...], sql: str) -> int | None:
        if key in self._probe_cache:
            return self._probe_cache[key]
        backend = self._sqlite_probe_backend()
        if backend is None:
            return None
        try:
            value = int(backend.execute_sql(sql)[0][0])
        except Exception:
            return None
        self._probe_cache[key] = value
        return value

    def _row_count(self, table: str) -> int:
        probed = self._probe(("rows", table), f"SELECT COUNT(*) FROM {table}")
        if probed is not None:
            return probed
        return self._db.catalog.row_count(table)

    def _n_distinct(self, table: str, column: str) -> int:
        probed = self._probe(
            ("distinct", table, column),
            f"SELECT COUNT(*) FROM (SELECT DISTINCT {column} FROM {table})",
        )
        if probed is not None:
            return probed
        return self._db.catalog.column_stats(table, column).n_distinct

    # ------------------------------------------------------------------ #
    def plan(self, spec: GraphSpec) -> ExtractionPlan:
        spec.validate_shape()
        node_plans = [self._plan_nodes_rule(rule) for rule in spec.node_rules]
        edge_plans = [self._plan_edges_rule(rule) for rule in spec.edge_rules]
        return ExtractionPlan(
            spec=spec, node_plans=node_plans, edge_plans=edge_plans, options=self._options
        )

    # ------------------------------------------------------------------ #
    def _plan_nodes_rule(self, rule: Rule) -> NodePlan:
        head_terms = rule.head.terms
        if not isinstance(head_terms[0], Variable):
            raise DSLValidationError(f"the first Nodes term must be the ID variable: {rule}")
        id_variable = head_terms[0].name
        property_variables = [t.name for t in head_terms[1:] if isinstance(t, Variable)]
        query = ConjunctiveQuery(
            head_vars=[id_variable] + property_variables,
            atoms=[dsl_atom_to_query_atom(a) for a in rule.body],
            comparisons=_comparisons_for(rule, list(rule.body)),
            name="nodes",
        )
        return NodePlan(
            rule=rule,
            query=query,
            id_variable=id_variable,
            property_variables=property_variables,
        )

    # ------------------------------------------------------------------ #
    def _plan_edges_rule(self, rule: Rule) -> EdgePlan:
        if rule.has_aggregates:
            return self._plan_aggregate_rule(rule)
        if not is_acyclic(rule):
            return self._plan_full_rule(rule)
        try:
            chain = derive_chain(rule)
        except DSLValidationError:
            return self._plan_full_rule(rule)

        decisions = self._classify_joins(chain)
        segments = self._build_segments(rule, chain, decisions)
        virtual_attributes = [d.variable for d in decisions if d.is_large_output]
        return EdgePlan(
            rule=rule,
            condensed=True,
            chain=chain,
            decisions=decisions,
            segments=segments,
            virtual_attributes=virtual_attributes,
        )

    def _plan_aggregate_rule(self, rule: Rule) -> EdgePlan:
        """Plan an Edges rule that uses aggregation constructs (Case 2).

        The rule is evaluated as one grouped query: the join result is grouped
        by the two endpoint IDs, head aggregates become edge properties and
        ``count(X) >= k``-style constraints become HAVING clauses.
        """
        head_terms = rule.head.terms
        source = head_terms[0].name if isinstance(head_terms[0], Variable) else None
        target = head_terms[1].name if isinstance(head_terms[1], Variable) else None
        if source is None or target is None:
            raise DSLValidationError(f"Edges head must start with two ID variables: {rule}")

        specs: dict[tuple[str, str], AggregateSpec] = {}
        for term in rule.head_aggregates():
            key = (term.function, term.variable.name)
            specs.setdefault(key, AggregateSpec(term.function, term.variable.name))
        having: list[HavingClause] = []
        for constraint in rule.aggregate_constraints:
            key = (constraint.aggregate.function, constraint.aggregate.variable.name)
            spec = specs.setdefault(
                key, AggregateSpec(constraint.aggregate.function, constraint.aggregate.variable.name)
            )
            having.append(HavingClause(spec, constraint.op, constraint.value))

        aggregated_variables = sorted({var for _, var in specs})
        head_vars = [source, target] + [v for v in aggregated_variables if v not in (source, target)]
        inner = ConjunctiveQuery(
            head_vars=head_vars,
            atoms=[dsl_atom_to_query_atom(a) for a in rule.body],
            comparisons=_comparisons_for(rule, list(rule.body)),
            name="edges_aggregate_inner",
        )
        aggregate_query = AggregateQuery(
            query=inner,
            group_by=[source, target],
            aggregates=list(specs.values()),
            having=having,
            name="edges_aggregate",
        )
        return EdgePlan(rule=rule, condensed=False, aggregate_query=aggregate_query)

    def _plan_full_rule(self, rule: Rule) -> EdgePlan:
        head_terms = rule.head.terms
        source = head_terms[0].name if isinstance(head_terms[0], Variable) else None
        target = head_terms[1].name if isinstance(head_terms[1], Variable) else None
        if source is None or target is None:
            raise DSLValidationError(f"Edges head must start with two ID variables: {rule}")
        query = ConjunctiveQuery(
            head_vars=[source, target],
            atoms=[dsl_atom_to_query_atom(a) for a in rule.body],
            comparisons=_comparisons_for(rule, list(rule.body)),
            name="edges_full",
        )
        return EdgePlan(rule=rule, condensed=False, full_query=query)

    # ------------------------------------------------------------------ #
    def _classify_joins(self, chain: EdgeChain) -> list[JoinDecision]:
        decisions: list[JoinDecision] = []
        for left_link, right_link in zip(chain.links, chain.links[1:]):
            variable = left_link.out_variable
            assert variable is not None  # guaranteed by derive_chain
            left_atom, right_atom = left_link.atom, right_link.atom
            left_column = _column_for_variable(self._db, left_atom, variable)
            right_column = _column_for_variable(self._db, right_atom, variable)
            left_rows = self._row_count(left_atom.predicate)
            right_rows = self._row_count(right_atom.predicate)

            if self._options.estimator == ESTIMATOR_EXACT:
                estimate = float(self._exact_join_size(left_atom, left_column, right_atom, right_column))
            else:
                d = max(
                    self._n_distinct(left_atom.predicate, left_column),
                    self._n_distinct(right_atom.predicate, right_column),
                )
                estimate = 0.0 if d == 0 else left_rows * right_rows / d
            threshold = self._options.threshold_factor * (left_rows + right_rows)
            decisions.append(
                JoinDecision(
                    variable=variable,
                    left_table=left_atom.predicate,
                    left_column=left_column,
                    right_table=right_atom.predicate,
                    right_column=right_column,
                    left_rows=left_rows,
                    right_rows=right_rows,
                    estimated_output=estimate,
                    threshold=threshold,
                    is_large_output=estimate > threshold,
                )
            )
        return decisions

    def _exact_join_size(
        self, left_atom: Atom, left_column: str, right_atom: Atom, right_column: str
    ) -> int:
        """True equi-join output size computed from per-value counts."""
        # sum of per-value count products: a grouped join over the (small)
        # distinct value sets — a direct COUNT(*) over L JOIN R would nested-
        # loop on the unindexed mirror tables (IS joins get no automatic index)
        probed = self._probe(
            ("join", left_atom.predicate, left_column, right_atom.predicate, right_column),
            f"SELECT COALESCE(SUM(L.n * R.n), 0) FROM "
            f"(SELECT {left_column} AS v, COUNT(*) AS n "
            f"FROM {left_atom.predicate} GROUP BY {left_column}) L "
            f"JOIN (SELECT {right_column} AS v, COUNT(*) AS n "
            f"FROM {right_atom.predicate} GROUP BY {right_column}) R ON L.v IS R.v",
        )
        if probed is not None:
            return probed
        left_index = self._db.table(left_atom.predicate).index_on(left_column)
        right_index = self._db.table(right_atom.predicate).index_on(right_column)
        smaller, larger = (
            (left_index, right_index)
            if len(left_index) <= len(right_index)
            else (right_index, left_index)
        )
        return sum(
            len(rows) * len(larger[value]) for value, rows in smaller.items() if value in larger
        )

    # ------------------------------------------------------------------ #
    def _build_segments(
        self, rule: Rule, chain: EdgeChain, decisions: list[JoinDecision]
    ) -> list[SegmentPlan]:
        links = chain.links
        # boundaries[i] is True when the join between links[i] and links[i+1]
        # is large-output, i.e. the chain is cut there
        boundaries = [d.is_large_output for d in decisions]

        segments: list[SegmentPlan] = []
        start = 0
        for index in range(len(links)):
            last_link = index == len(links) - 1
            if last_link or boundaries[index]:
                atoms = [link.atom for link in links[start : index + 1]]
                in_variable = (
                    chain.source_variable if start == 0 else links[start].in_variable
                )
                out_variable = (
                    chain.target_variable if last_link else links[index].out_variable
                )
                assert in_variable is not None and out_variable is not None
                query = ConjunctiveQuery(
                    head_vars=[in_variable, out_variable],
                    atoms=[dsl_atom_to_query_atom(a) for a in atoms],
                    comparisons=_comparisons_for(rule, atoms),
                    name=f"edges_segment_{len(segments)}",
                )
                segments.append(
                    SegmentPlan(
                        query=query,
                        in_variable=in_variable,
                        out_variable=out_variable,
                        starts_at_source=start == 0,
                        ends_at_target=last_link,
                    )
                )
                start = index + 1
        return segments
