"""Graph extraction: executing a plan against the database (Section 4.2).

Given an :class:`~repro.core.planner.ExtractionPlan`, the extractor

1. loads the node set(s) by evaluating the Nodes queries (Step 1),
2. evaluates every segment query of every Edges rule (Step 3),
3. creates one virtual node per distinct value of every large-output join
   attribute (Step 4) and wires up the condensed edges (Step 5),
4. optionally expands the cheap virtual nodes (Step 6 preprocessing) and
   optionally expands the whole graph when that would grow it only slightly.

The result is a :class:`~repro.graph.condensed.CondensedGraph` (which is the
C-DUP representation) plus an :class:`ExtractionReport` with the statistics
the Table 1 experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.core.config import (
    BACKEND_SQLITE,
    ENGINE_AUTO,
    ENGINE_PUSHDOWN,
    ENGINE_SQLITE,
    ExtractionOptions,
)
from repro.core.planner import EdgePlan, ExtractionPlan, NodePlan
from repro.dedup.expand import expand, expand_virtual_node
from repro.exceptions import ExtractionError
from repro.graph.condensed import CondensedGraph
from repro.graph.expanded import ExpandedGraph
from repro.relational.aggregates import aggregate_to_sql, evaluate_aggregate
from repro.relational.database import Database
from repro.relational.pushdown import PushdownExecutor, PushdownUnsupported
from repro.relational.query import ConjunctiveQuery, evaluate
from repro.relational.sqlite_backend import SQLiteBackend
from repro.utils.timing import Timer


@dataclass
class ExtractionReport:
    """What happened during one extraction (Table 1's columns and more).

    ``engine`` records which extraction engine actually ran (``"python"``,
    ``"sqlite"`` or ``"pushdown"``); ``notes`` carries provenance such as
    pushdown fallbacks.  ``queries_executed`` counts the queries the engine
    issued — per segment for the row engines, per SQL statement for pushdown
    — so it is engine-specific by design.
    """

    condensed_edges: int = 0
    expanded_edges: int | None = None
    real_nodes: int = 0
    virtual_nodes: int = 0
    skipped_edge_tuples: int = 0
    preprocessing_expanded_virtual_nodes: int = 0
    seconds: float = 0.0
    queries_executed: int = 0
    auto_expanded: bool = False
    per_rule_edges: list[int] = field(default_factory=list)
    engine: str = "python"
    notes: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return dict(self.__dict__)


class QueryExecutor:
    """Evaluates conjunctive queries either in Python or through SQLite.

    The SQLite path borrows the database's cached mirror
    (:meth:`~repro.relational.database.Database.sqlite_backend`) instead of
    re-mirroring every table into ``:memory:`` per extraction; :meth:`close`
    therefore only drops the reference — the mirror belongs to the database.
    """

    def __init__(
        self,
        db: Database,
        options: ExtractionOptions,
        use_sqlite: bool | None = None,
    ) -> None:
        self._db = db
        self._options = options
        if use_sqlite is None:
            use_sqlite = options.backend == BACKEND_SQLITE
        self._sqlite: SQLiteBackend | None = None
        if use_sqlite:
            self._sqlite = db.sqlite_backend()

    def run(self, query: ConjunctiveQuery) -> list[tuple[Any, ...]]:
        if self._sqlite is not None:
            return self._sqlite.evaluate(query)
        return evaluate(self._db, query)

    def run_aggregate(self, aggregate_query: Any) -> list[tuple[Any, ...]]:
        """Evaluate a grouped query — generated GROUP BY/HAVING SQL on the
        SQLite path, the pure-Python evaluator otherwise."""
        if self._sqlite is not None:
            parameters: list[Any] = []
            sql = aggregate_to_sql(self._db, aggregate_query, parameters=parameters)
            return self._sqlite.execute_sql(sql, parameters)
        return evaluate_aggregate(self._db, aggregate_query)

    def close(self) -> None:
        self._sqlite = None


class Extractor:
    """Executes extraction plans and builds condensed / expanded graphs."""

    def __init__(self, db: Database, options: ExtractionOptions | None = None) -> None:
        self._db = db
        self._options = options or ExtractionOptions()

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def extract_condensed(
        self, plan: ExtractionPlan
    ) -> tuple[CondensedGraph, ExtractionReport]:
        """Build the condensed (C-DUP) graph for ``plan``.

        Dispatches to the engine selected by
        :meth:`~repro.core.config.ExtractionOptions.resolved_engine`: the
        row-at-a-time reference engines (``python``/``sqlite``) or the
        set-based SQL ``pushdown`` engine, which falls back to a reference
        engine — with a note in the report — whenever the plan or data cannot
        be pushed down.  All engines produce logically equivalent graphs.
        """
        engine = self._options.resolved_engine()
        if engine in (ENGINE_PUSHDOWN, ENGINE_AUTO):
            try:
                return self._extract_condensed_pushdown(plan)
            except PushdownUnsupported as exc:
                fallback = self._options.fallback_engine()
                graph, report = self._extract_condensed_rows(plan, fallback)
                report.notes.append(
                    f"pushdown unavailable ({exc}); fell back to the {fallback} engine"
                )
                return graph, report
        return self._extract_condensed_rows(plan, engine)

    def _extract_condensed_pushdown(
        self, plan: ExtractionPlan
    ) -> tuple[CondensedGraph, ExtractionReport]:
        """The set-based engine: one SQL program per rule, bulk-loaded."""
        report = ExtractionReport(engine=ENGINE_PUSHDOWN)
        timer = Timer().start()
        executor = PushdownExecutor(
            self._db, skip_unknown_endpoints=self._options.skip_unknown_endpoints
        )
        graph = CondensedGraph()
        executor.run(plan, graph, report)
        if self._options.preprocess:
            report.preprocessing_expanded_virtual_nodes = self._preprocess(graph)
        report.seconds = timer.stop()
        report.real_nodes = graph.num_real_nodes
        report.virtual_nodes = graph.num_virtual_nodes
        report.condensed_edges = graph.num_condensed_edges
        return graph, report

    def _extract_condensed_rows(
        self, plan: ExtractionPlan, engine: str
    ) -> tuple[CondensedGraph, ExtractionReport]:
        """The row-at-a-time reference path (kept verbatim from the
        pre-pushdown extractor)."""
        report = ExtractionReport(engine=engine)
        timer = Timer().start()
        executor = QueryExecutor(self._db, self._options, use_sqlite=engine == ENGINE_SQLITE)
        try:
            graph = CondensedGraph()
            self._load_nodes(executor, plan.node_plans, graph, report)
            for edge_plan in plan.edge_plans:
                before = graph.num_condensed_edges
                if edge_plan.condensed:
                    self._load_condensed_edges(executor, edge_plan, graph, report)
                elif edge_plan.aggregate_query is not None:
                    self._load_aggregate_edges(executor, edge_plan, graph, report)
                else:
                    self._load_full_edges(executor, edge_plan, graph, report)
                report.per_rule_edges.append(graph.num_condensed_edges - before)
            if self._options.preprocess:
                report.preprocessing_expanded_virtual_nodes = self._preprocess(graph)
        finally:
            executor.close()
        report.seconds = timer.stop()
        report.real_nodes = graph.num_real_nodes
        report.virtual_nodes = graph.num_virtual_nodes
        report.condensed_edges = graph.num_condensed_edges
        return graph, report

    def extract_expanded(
        self, plan: ExtractionPlan
    ) -> tuple[ExpandedGraph, ExtractionReport]:
        """Build the fully expanded (EXP) graph for ``plan``.

        This is the baseline path: the condensed structure is built first and
        then expanded in memory, which mirrors what a user would obtain by
        running the full join in the database.
        """
        graph, report = self.extract_condensed(plan)
        timer = Timer().start()
        expanded = expand(graph)
        report.seconds += timer.stop()
        report.expanded_edges = expanded.num_edges()
        report.auto_expanded = True
        return expanded, report

    # ------------------------------------------------------------------ #
    # Step 1: nodes
    # ------------------------------------------------------------------ #
    def _load_nodes(
        self,
        executor: QueryExecutor,
        node_plans: list[NodePlan],
        graph: CondensedGraph,
        report: ExtractionReport,
    ) -> None:
        for plan in node_plans:
            rows = executor.run(plan.query)
            report.queries_executed += 1
            for row in rows:
                node_id = row[0]
                properties = dict(zip(plan.property_variables, row[1:]))
                graph.add_real_node(node_id, **properties)

    # ------------------------------------------------------------------ #
    # Steps 3-5: condensed edges
    # ------------------------------------------------------------------ #
    def _load_condensed_edges(
        self,
        executor: QueryExecutor,
        plan: EdgePlan,
        graph: CondensedGraph,
        report: ExtractionReport,
    ) -> None:
        # virtual nodes live on the *boundaries* between consecutive segments
        # of the rule's chain: one node per (boundary, join value), created
        # lazily as values appear (Step 4).  Keying by boundary index — not by
        # join-attribute name — keeps the condensed graph a DAG even when the
        # same variable spans several boundaries (e.g. a filter segment
        # ``P -> P``): attribute-keyed sharing would fuse the two layers into
        # one virtual node, producing a self-edge (an infinite traversal
        # cycle) and unsound paths that bypass the middle segment.
        virtual_of: dict[tuple[int, Hashable], int] = {}

        def virtual_for(boundary: int, attribute: str, value: Hashable) -> int:
            key = (boundary, value)
            if key not in virtual_of:
                virtual_of[key] = graph.add_virtual_node((attribute, value))
            return virtual_of[key]

        for index, segment in enumerate(plan.segments):
            rows = executor.run(segment.query)
            report.queries_executed += 1
            # segment queries are DISTINCT, so edges cannot repeat within a
            # segment; only direct real->real edges (single-segment rules) can
            # collide with edges produced by other rules and need the check
            allow_duplicate = not (segment.starts_at_source and segment.ends_at_target)
            for left_value, right_value in rows:
                # resolve the left endpoint (in-boundary of segment ``index``)
                if segment.starts_at_source:
                    if not graph.has_external(left_value):
                        if self._options.skip_unknown_endpoints:
                            report.skipped_edge_tuples += 1
                            continue
                        graph.add_real_node(left_value)
                    source = graph.internal(left_value)
                else:
                    source = virtual_for(index - 1, segment.in_variable, left_value)
                # resolve the right endpoint (out-boundary of segment ``index``)
                if segment.ends_at_target:
                    if not graph.has_external(right_value):
                        if self._options.skip_unknown_endpoints:
                            report.skipped_edge_tuples += 1
                            continue
                        graph.add_real_node(right_value)
                    target = graph.internal(right_value)
                else:
                    target = virtual_for(index, segment.out_variable, right_value)
                graph.add_edge(source, target, allow_duplicate=allow_duplicate)

    # ------------------------------------------------------------------ #
    # Case 2: fully expanded edge rule
    # ------------------------------------------------------------------ #
    def _load_full_edges(
        self,
        executor: QueryExecutor,
        plan: EdgePlan,
        graph: CondensedGraph,
        report: ExtractionReport,
    ) -> None:
        if plan.full_query is None:  # pragma: no cover - defensive
            raise ExtractionError(f"edge plan for {plan.rule} has no query")
        rows = executor.run(plan.full_query)
        report.queries_executed += 1
        for source_value, target_value in rows:
            known_source = graph.has_external(source_value)
            known_target = graph.has_external(target_value)
            if not (known_source and known_target):
                if self._options.skip_unknown_endpoints:
                    report.skipped_edge_tuples += 1
                    continue
                graph.add_real_node(source_value)
                graph.add_real_node(target_value)
            graph.add_edge(
                graph.internal(source_value),
                graph.internal(target_value),
                allow_duplicate=False,
            )

    # ------------------------------------------------------------------ #
    # Case 2 with aggregation: grouped edge rule (weights / HAVING filters)
    # ------------------------------------------------------------------ #
    def _load_aggregate_edges(
        self,
        executor: QueryExecutor,
        plan: EdgePlan,
        graph: CondensedGraph,
        report: ExtractionReport,
    ) -> None:
        """Load an aggregated Edges rule as direct, annotated real→real edges.

        Grouped rules run through the executor like every other rule: the
        SQLite path executes the generated ``GROUP BY``/``HAVING`` SQL, the
        Python path the built-in grouped evaluator — both counted once in
        ``queries_executed``.  Either way this is the paper's Case-2 fallback
        of materialising the full edge list.
        """
        aggregate_query = plan.aggregate_query
        if aggregate_query is None:  # pragma: no cover - defensive
            raise ExtractionError(f"edge plan for {plan.rule} has no aggregate query")
        rows = executor.run_aggregate(aggregate_query)
        report.queries_executed += 1
        property_names = [spec.output_name for spec in aggregate_query.aggregates]
        for row in rows:
            source_value, target_value = row[0], row[1]
            known_source = graph.has_external(source_value)
            known_target = graph.has_external(target_value)
            if not (known_source and known_target):
                if self._options.skip_unknown_endpoints:
                    report.skipped_edge_tuples += 1
                    continue
                graph.add_real_node(source_value)
                graph.add_real_node(target_value)
            source = graph.internal(source_value)
            target = graph.internal(target_value)
            graph.add_edge(source, target, allow_duplicate=False)
            if property_names:
                graph.annotate_edge(
                    source, target, **dict(zip(property_names, row[2:]))
                )

    # ------------------------------------------------------------------ #
    # Step 6: preprocessing
    # ------------------------------------------------------------------ #
    def _preprocess(self, graph: CondensedGraph) -> int:
        """Expand every virtual node whose expansion does not pay off keeping.

        A virtual node with ``in`` incoming and ``out`` outgoing edges costs
        ``in + out`` edges plus the node itself; expanding it costs at most
        ``in * out`` direct edges.  When ``in * out <= in + out + 1`` the
        expansion is never larger, so it is applied (Section 4.2, Step 6).
        """
        expanded = 0
        for virtual in list(graph.virtual_nodes()):
            fan_in = len(graph.inn(virtual))
            fan_out = len(graph.out(virtual))
            if fan_in * fan_out <= fan_in + fan_out + 1:
                expand_virtual_node(graph, virtual)
                expanded += 1
        return expanded


def maybe_auto_expand(
    graph: CondensedGraph, options: ExtractionOptions
) -> tuple[CondensedGraph | ExpandedGraph, bool]:
    """Apply the paper's "expand if the increase is small" rule (Section 6.5).

    Returns ``(graph_or_expanded, expanded?)``.
    """
    if options.auto_expand_growth is None:
        return graph, False
    condensed_edges = graph.num_condensed_edges
    if condensed_edges == 0:
        return graph, False
    expanded_edges = graph.expanded_edge_count()
    if expanded_edges <= (1.0 + options.auto_expand_growth) * condensed_edges:
        return expand(graph), True
    return graph, False
