"""Configuration options for the extraction pipeline."""

from __future__ import annotations

from dataclasses import dataclass

#: planner estimators for join output size
ESTIMATOR_DISTINCT = "distinct"
ESTIMATOR_EXACT = "exact"

#: execution backends
BACKEND_PYTHON = "python"
BACKEND_SQLITE = "sqlite"

#: extraction engines (the seam introduced for SQL pushdown)
ENGINE_PYTHON = "python"
ENGINE_SQLITE = "sqlite"
ENGINE_PUSHDOWN = "pushdown"
ENGINE_AUTO = "auto"
EXTRACT_ENGINES = (ENGINE_PYTHON, ENGINE_SQLITE, ENGINE_PUSHDOWN, ENGINE_AUTO)


@dataclass
class ExtractionOptions:
    """Tunable knobs of the GraphGen pipeline.

    Parameters
    ----------
    threshold_factor:
        The constant in the large-output-join test
        ``|Ri| * |Rj| / d > factor * (|Ri| + |Rj|)`` (paper uses 2).
    estimator:
        ``"distinct"`` — the paper's uniform-distribution estimate based on
        the catalog's distinct counts; ``"exact"`` — compute the true join
        output size from the per-value counts (more work, never misses a
        large-output join).
    backend:
        ``"python"`` executes the generated conjunctive queries with the
        built-in hash-join executor; ``"sqlite"`` generates SQL and runs it
        on an in-memory SQLite database.
    preprocess:
        Apply Step 6 of Section 4.2: expand every virtual node ``V`` with
        ``in(V) * out(V) <= in(V) + out(V) + 1``.
    auto_expand_growth:
        After extraction, fully expand the graph if the expanded edge count
        is at most ``(1 + auto_expand_growth)`` times the condensed edge
        count (the paper suggests 20%, i.e. 0.2).  ``None`` disables the
        check.
    skip_unknown_endpoints:
        Edge tuples whose endpoints were not produced by any Nodes statement
        are skipped (and counted) rather than silently adding vertices.
    extract_engine:
        Which extraction engine runs the plan.  ``"python"`` and ``"sqlite"``
        are the row-at-a-time reference engines (per-row ``add_edge`` over the
        Python hash-join executor / generated per-segment SQL respectively);
        ``"pushdown"`` compiles the whole plan into set-based SQL
        (:mod:`repro.relational.pushdown`) whose sorted result arrays bulk-load
        the condensed graph, falling back to the reference engine with a note
        when the plan or data cannot be pushed down; ``"auto"`` is pushdown
        with a silent-by-report fallback too (the two differ only in intent:
        ``pushdown`` is an explicit request, ``auto`` a hint).  ``None``
        (default) derives the engine from ``backend`` so existing
        configurations behave exactly as before.
    """

    threshold_factor: float = 2.0
    estimator: str = ESTIMATOR_DISTINCT
    backend: str = BACKEND_PYTHON
    preprocess: bool = True
    auto_expand_growth: float | None = None
    skip_unknown_endpoints: bool = True
    extract_engine: str | None = None

    def __post_init__(self) -> None:
        if self.threshold_factor <= 0:
            raise ValueError("threshold_factor must be positive")
        if self.estimator not in (ESTIMATOR_DISTINCT, ESTIMATOR_EXACT):
            raise ValueError(f"unknown estimator {self.estimator!r}")
        if self.backend not in (BACKEND_PYTHON, BACKEND_SQLITE):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.extract_engine is not None and self.extract_engine not in EXTRACT_ENGINES:
            raise ValueError(
                f"unknown extract_engine {self.extract_engine!r}; "
                f"expected one of {EXTRACT_ENGINES}"
            )

    def resolved_engine(self) -> str:
        """The engine that will run: ``extract_engine``, or derived from
        ``backend`` when unset (preserving pre-seam behaviour)."""
        if self.extract_engine is not None:
            return self.extract_engine
        return ENGINE_SQLITE if self.backend == BACKEND_SQLITE else ENGINE_PYTHON

    def fallback_engine(self) -> str:
        """The row-at-a-time engine pushdown falls back to."""
        return ENGINE_SQLITE if self.backend == BACKEND_SQLITE else ENGINE_PYTHON
