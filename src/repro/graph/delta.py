"""Edge-delta journals: mutations stop costing a full snapshot rebuild.

Before this module every structural mutation invalidated the whole CSR
snapshot: ``add_edge`` bumped the representation's version counter, the next
``snapshot()`` walked the entire graph again, and
:meth:`~repro.graph.snapshot_store.SnapshotStore.fetch` declared the
persisted file stale and rewrote all of it.  For the paper's mutation
workloads (Section 4.4) — k edge changes with ``k`` far below ``m`` — that
is the wrong asymptotic: the new snapshot differs from the old one by ``k``
adjacency entries, yet we paid ``O(n + m)`` to rediscover it.

:class:`JournaledGraph` wraps any live representation and records every
*effective* logical mutation as an append-only delta record instead:

* ``("+", (u, v))`` — directed logical edge appeared,
* ``("-", (u, v))`` — directed logical edge disappeared,
* ``("V", u)``      — new vertex appeared.

Records are captured by probing ``exists_edge`` around the delegated
mutation, so symmetric representations (DEDUP-2 adds both directions from
one ``add_edge``) journal exactly the logical deltas they produced, and
no-op mutations journal nothing.  The wrapper's ``snapshot()`` then *merges*
instead of rebuilding: the frozen **base** CSR (built once) plus a
:class:`DeltaOverlay` decoded from the pending records yields the current
snapshot in ``O(n + m)`` array copying with zero graph traversal — and both
kernel backends expose a vectorised ``apply_overlay`` entry point for the
merge itself.

The journal also persists: ``<name>.csrd`` next to the base snapshot file
(versioned header carrying the content hash of the base it extends; see
:data:`DELTA_MAGIC`), appended to with ``O(new records)`` I/O by
:meth:`DeltaJournal.sync`.  ``SnapshotStore.fetch`` uses it to answer
``"base+delta"`` instead of ``"stale"`` for journaled graphs, compacting
into a fresh base once the journal exceeds a configurable fraction of the
base edge count.

Deletions of whole vertices (and any out-of-band mutation of the wrapped
graph, detected through its version token) cannot be expressed as edge
records; the wrapper then *rebaselines* — builds a fresh base from the
inner representation, rebases the journal onto it and bumps its
``generation`` so dynamic-algorithm state keyed to the old delta stream is
invalidated (see :mod:`repro.incremental`).
"""

from __future__ import annotations

import os
import struct
from array import array
from pathlib import Path
from pickle import dumps as _pickle_dumps
from pickle import loads as _pickle_loads
from typing import TYPE_CHECKING, Any, Iterator

from repro.exceptions import SnapshotFormatError
from repro.graph.api import Graph, VertexId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.kernel import CSRGraph

DELTA_MAGIC = b"GGCSRDLT"
DELTA_FORMAT_VERSION = 1
_DELTA_HEADER = struct.Struct("<8sHHIQ32s")  # magic, version, flags, reserved, count, base hash
DELTA_HEADER_SIZE = _DELTA_HEADER.size  # 56 bytes
_RECORD_PREFIX = struct.Struct("<cI")  # op byte, payload length

#: valid record op bytes -> op strings
_OPS = {b"+": "+", b"-": "-", b"V": "V"}


# --------------------------------------------------------------------------- #
# journal file format
# --------------------------------------------------------------------------- #
def _encode_record(op: str, payload: Any) -> bytes:
    body = _pickle_dumps(payload, protocol=4)
    return _RECORD_PREFIX.pack(op.encode("ascii"), len(body)) + body


def _encode_records(records: list[tuple[str, Any]]) -> bytes:
    return b"".join(_encode_record(op, payload) for op, payload in records)


def _pack_header(count: int, base_hash: bytes) -> bytes:
    return _DELTA_HEADER.pack(DELTA_MAGIC, DELTA_FORMAT_VERSION, 0, 0, count, base_hash)


def write_journal(
    path: str | os.PathLike, base_hash: bytes, records: list[tuple[str, Any]]
) -> Path:
    """Write a complete delta journal atomically (write-to-temp + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as handle:
            handle.write(_pack_header(len(records), base_hash))
            handle.write(_encode_records(records))
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def read_journal(path: str | os.PathLike) -> tuple[bytes, list[tuple[str, Any]]]:
    """Read a ``.csrd`` delta journal back as ``(base_hash, records)``.

    Every malformed shape — short or bad header, unknown op byte, truncated
    payload, trailing bytes, corrupt pickle — raises
    :class:`~repro.exceptions.SnapshotFormatError`; callers treat that as
    "journal unusable" and fall back to a full snapshot rebuild.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotFormatError(f"cannot read delta journal {path}: {exc}") from None
    if len(data) < DELTA_HEADER_SIZE:
        raise SnapshotFormatError(
            f"{path}: file too small for a delta journal header "
            f"({len(data)} < {DELTA_HEADER_SIZE} bytes)"
        )
    magic, version, flags, reserved, count, base_hash = _DELTA_HEADER.unpack(
        data[:DELTA_HEADER_SIZE]
    )
    if magic != DELTA_MAGIC:
        raise SnapshotFormatError(
            f"{path}: bad magic {magic!r}, expected {DELTA_MAGIC!r}"
        )
    if version != DELTA_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{path}: unsupported delta journal version {version} "
            f"(this build reads version {DELTA_FORMAT_VERSION})"
        )
    if flags or reserved:
        raise SnapshotFormatError(f"{path}: reserved header fields are non-zero")

    records: list[tuple[str, Any]] = []
    position = DELTA_HEADER_SIZE
    for _ in range(count):
        if position + _RECORD_PREFIX.size > len(data):
            raise SnapshotFormatError(
                f"{path}: truncated delta journal (record {len(records) + 1} "
                f"of {count} is incomplete)"
            )
        op_byte, length = _RECORD_PREFIX.unpack_from(data, position)
        op = _OPS.get(op_byte)
        if op is None:
            raise SnapshotFormatError(
                f"{path}: unknown delta record op {op_byte!r}"
            )
        position += _RECORD_PREFIX.size
        if position + length > len(data):
            raise SnapshotFormatError(
                f"{path}: truncated delta journal (record {len(records) + 1} "
                f"payload runs past the end of the file)"
            )
        try:
            payload = _pickle_loads(data[position : position + length])
        except Exception as exc:
            raise SnapshotFormatError(
                f"{path}: corrupt delta record payload: {exc}"
            ) from None
        position += length
        records.append((op, payload))
    if position != len(data):
        raise SnapshotFormatError(
            f"{path}: {len(data) - position} trailing byte(s) after the last "
            "delta record"
        )
    return base_hash, records


# --------------------------------------------------------------------------- #
# the in-memory journal
# --------------------------------------------------------------------------- #
class DeltaJournal:
    """Append-only log of logical edge deltas since the current base snapshot.

    ``total`` counts every record ever appended (monotonic across rebases),
    which gives dynamic algorithms a stable *position* to key their previous
    results to: :meth:`records_since` replays exactly the records a result
    has not yet absorbed, or returns ``None`` when they predate the current
    base (compacted away) and the caller must recompute.
    """

    def __init__(self, base_hash: bytes | None = None) -> None:
        #: content hash of the base snapshot the pending records extend
        self.base_hash = base_hash
        #: records appended since the last :meth:`rebase`
        self.records: list[tuple[str, Any]] = []
        #: absolute position of ``records[0]`` (== records compacted away)
        self.base_total = 0
        #: records ever appended (monotonic)
        self.total = 0
        #: completed journal compactions (rebase onto a merged base)
        self.compactions = 0
        # (path, records synced, file size) of the last sync target, so
        # repeated syncs append O(new records) instead of rewriting
        self._synced: tuple[str, int, int] | None = None

    def __len__(self) -> int:
        return len(self.records)

    @property
    def edge_records(self) -> int:
        """Pending edge records (``V`` vertex records excluded)."""
        return sum(1 for op, _ in self.records if op != "V")

    def append(self, op: str, payload: Any) -> None:
        if op not in ("+", "-", "V"):
            raise ValueError(f"unknown delta op {op!r}")
        self.records.append((op, payload))
        self.total += 1

    def rebase(self, new_base_hash: bytes, *, compacted: bool = False) -> None:
        """Drop the pending records: they are merged into a new base."""
        self.base_total = self.total
        self.records = []
        self.base_hash = new_base_hash
        self._synced = None
        if compacted:
            self.compactions += 1

    def records_since(self, position: int) -> list[tuple[str, Any]] | None:
        """Records appended after absolute ``position``, or ``None`` when the
        requested range predates the current base (no longer replayable)."""
        if position < self.base_total or position > self.total:
            return None
        return self.records[position - self.base_total :]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def sync(self, path: str | os.PathLike) -> str:
        """Make ``path`` hold exactly this journal; returns how.

        ``"appended"`` — the file already held a prefix of the pending
        records for the same base, so only the new ones were written (plus a
        header rewrite): ``O(new records)`` I/O.  ``"rewritten"`` — the file
        was missing, for a different base, or diverged, and was atomically
        replaced.  ``"unchanged"`` — nothing to do.  An existing file that
        is *corrupt* (unparseable) raises
        :class:`~repro.exceptions.SnapshotFormatError` instead — the caller
        decides whether to rebuild from scratch.
        """
        if self.base_hash is None:
            raise ValueError("cannot sync a journal with no base hash")
        path = Path(path)
        key = str(path)
        count = len(self.records)

        if self._synced is not None and self._synced[0] == key:
            _, synced_count, synced_size = self._synced
            try:
                size_ok = path.stat().st_size == synced_size
            except OSError:
                size_ok = False
            if size_ok and synced_count <= count:
                if synced_count == count:
                    return "unchanged"
                self._append_to(path, synced_count, synced_size)
                return "appended"
            self._synced = None  # file changed under us: revalidate below

        if path.exists():
            stored_hash, stored = read_journal(path)  # raises on corruption
            if (
                stored_hash == self.base_hash
                and len(stored) <= count
                and stored == self.records[: len(stored)]
            ):
                self._synced = (key, len(stored), path.stat().st_size)
                if len(stored) == count:
                    return "unchanged"
                self._append_to(path, len(stored), self._synced[2])
                return "appended"
            # readable but for another base (or diverged): plain rewrite

        write_journal(path, self.base_hash, self.records)
        self._synced = (key, count, path.stat().st_size)
        return "rewritten"

    def _append_to(self, path: Path, from_count: int, at_size: int) -> None:
        payload = _encode_records(self.records[from_count:])
        with path.open("r+b") as handle:
            handle.seek(at_size)
            handle.write(payload)
            handle.seek(0)
            handle.write(_pack_header(len(self.records), self.base_hash))
        self._synced = (str(path), len(self.records), at_size + len(payload))


# --------------------------------------------------------------------------- #
# the overlay: net adjacency patches over a base snapshot
# --------------------------------------------------------------------------- #
class DeltaOverlay:
    """Net structural patch decoded from a delta record stream.

    The net state of a directed pair is its *last* record in the stream
    (an edge added then removed nets out; removed then re-added nets to
    present).  :meth:`materialize` merges the patch over a base
    :class:`~repro.graph.kernel.CSRGraph` by pure array copying:

    * base vertex order is preserved; new vertices append in
      first-appearance order,
    * each base row keeps its original target order minus any touched pair,
      then the row's net additions append in ascending dense-index order
      (the sorted adjacency patch both backends consume).

    Two overlays decoded from the same records over the same base produce
    element-wise identical snapshots on every backend.
    """

    def __init__(self, records: list[tuple[str, Any]]) -> None:
        last: dict[tuple[VertexId, VertexId], str] = {}
        vertices: list[VertexId] = []
        seen: set[VertexId] = set()
        edge_records = 0
        for op, payload in records:
            if op == "V":
                if payload not in seen:
                    seen.add(payload)
                    vertices.append(payload)
                continue
            edge_records += 1
            u, v = payload
            last[(u, v)] = op
            for endpoint in (u, v):
                if endpoint not in seen:
                    seen.add(endpoint)
                    vertices.append(endpoint)
        #: every directed pair the stream touched (stripped from base rows)
        self.touched: set[tuple[VertexId, VertexId]] = set(last)
        #: net-present pairs, in first-touch order
        self.added: list[tuple[VertexId, VertexId]] = [
            pair for pair, op in last.items() if op == "+"
        ]
        #: net-absent pairs
        self.removed: list[tuple[VertexId, VertexId]] = [
            pair for pair, op in last.items() if op == "-"
        ]
        #: vertices the stream may have introduced, first-appearance order
        #: (filtered against the base at materialisation time)
        self.vertex_candidates: list[VertexId] = vertices
        #: number of edge records decoded (the provenance ``delta_edges`` K)
        self.delta_edges = edge_records

    def __bool__(self) -> bool:
        return bool(self.touched or self.vertex_candidates)

    def plan(self, base: "CSRGraph") -> tuple[list[VertexId], dict[int, set[int]], dict[int, list[int]]]:
        """Resolve the patch against ``base``'s codec: the appended new
        vertices plus per-dense-row strip sets and sorted addition lists
        (rows indexed in the *merged* vertex order)."""
        index = dict(base._index)
        new_vertices = [v for v in self.vertex_candidates if v not in index]
        for vertex in new_vertices:
            index[vertex] = len(index)
        strip: dict[int, set[int]] = {}
        additions: dict[int, list[int]] = {}
        for u, v in self.touched:
            strip.setdefault(index[u], set()).add(index[v])
        for u, v in self.added:
            additions.setdefault(index[u], []).append(index[v])
        for row in additions.values():
            row.sort()
        return new_vertices, strip, additions

    def materialize(
        self,
        base: "CSRGraph",
        *,
        source: "Graph | None" = None,
        backend: Any = None,
    ) -> "CSRGraph":
        """The merged snapshot ``base ⊕ overlay`` (see class docstring).

        ``backend`` may supply a vectorised ``apply_overlay`` entry point
        (the numpy backend does); results are element-wise identical either
        way.
        """
        if backend is not None and hasattr(backend, "apply_overlay"):
            return backend.apply_overlay(base, self, source=source)
        return merge_overlay(base, self, source=source)


def merge_overlay(
    base: "CSRGraph", overlay: DeltaOverlay, *, source: "Graph | None" = None
) -> "CSRGraph":
    """Reference (pure-python) overlay merge — the contract
    ``backend.apply_overlay`` implementations must match element-wise."""
    from repro.graph.kernel import CSRGraph

    new_vertices, strip, additions = overlay.plan(base)
    external_ids = list(base.external_ids) + new_vertices
    n = len(external_ids)
    base_n = base.n
    old_offsets = base.offsets
    old_targets = base.targets

    offsets = array("q", bytes(8 * (n + 1)))
    targets = array("q")
    extend = targets.extend
    for i in range(n):
        if i < base_n:
            row = old_targets[old_offsets[i] : old_offsets[i + 1]]
            dropped = strip.get(i)
            if dropped:
                extend(t for t in row if t not in dropped)
            else:
                extend(row)
        extra = additions.get(i)
        if extra:
            extend(extra)
        offsets[i + 1] = len(targets)
    return CSRGraph(offsets, targets, external_ids, source=source)


# --------------------------------------------------------------------------- #
# the journaling wrapper
# --------------------------------------------------------------------------- #
class JournaledGraph(Graph):
    """Graph API wrapper that journals effective mutations as edge deltas.

    All logical queries delegate to the wrapped representation; mutations
    delegate too, but probe ``exists_edge`` around the call so exactly the
    *effective* directed deltas are appended to :attr:`journal` (symmetric
    representations journal both directions; no-op mutations journal
    nothing).  ``snapshot()`` merges the frozen base CSR with the pending
    overlay instead of walking the representation (see the module
    docstring).
    """

    def __init__(self, inner: Graph) -> None:
        self._inner = inner
        self.representation_name = inner.representation_name
        self.journal = DeltaJournal()
        self._base_csr: "CSRGraph | None" = None
        #: bumped whenever the journal could not express a change (vertex
        #: deletion, out-of-band mutation): previous results keyed to the
        #: delta stream are then unmaintainable
        self._generation = 0
        self._needs_rebaseline = False
        self._expected_inner_token: Any = None
        self._notes: list[str] = []

    # ------------------------------------------------------------------ #
    @property
    def inner(self) -> Graph:
        """The wrapped live representation."""
        return self._inner

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def delta_edges(self) -> int:
        """Pending edge-delta records over the current base (provenance K)."""
        return self.journal.edge_records

    @property
    def base_snapshot(self) -> "CSRGraph":
        """The frozen base CSR the journal extends (built on first use)."""
        self._ensure_baseline()
        return self._base_csr

    @property
    def base_hash(self) -> bytes:
        return self.base_snapshot.content_hash

    def add_note(self, note: str) -> None:
        """Queue a provenance note for the next snapshot consumer."""
        self._notes.append(note)

    def consume_notes(self) -> tuple[str, ...]:
        notes = tuple(self._notes)
        self._notes.clear()
        return notes

    # ------------------------------------------------------------------ #
    # journaling mutators
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: VertexId, **properties: Any) -> None:
        known = self._inner.has_vertex(vertex)
        self._inner.add_vertex(vertex, **properties)
        if not known:
            self.journal.append("V", vertex)
        self._note_inner_token()

    def add_edge(self, source: VertexId, target: VertexId) -> None:
        inner = self._inner
        new_source = not inner.has_vertex(source)
        new_target = not inner.has_vertex(target) and target != source or (
            new_source and target == source
        )
        existed = not new_source and not new_target
        had_forward = existed and inner.exists_edge(source, target)
        had_backward = (
            existed and source != target and inner.exists_edge(target, source)
        )
        inner.add_edge(source, target)
        if new_source:
            self.journal.append("V", source)
        if new_target and target != source:
            self.journal.append("V", target)
        if not had_forward and inner.exists_edge(source, target):
            self.journal.append("+", (source, target))
        if source != target and not had_backward and inner.exists_edge(target, source):
            self.journal.append("+", (target, source))
        self._note_inner_token()

    def delete_edge(self, source: VertexId, target: VertexId) -> None:
        inner = self._inner
        had_forward = inner.exists_edge(source, target)
        had_backward = source != target and inner.exists_edge(target, source)
        inner.delete_edge(source, target)
        if had_forward and not inner.exists_edge(source, target):
            self.journal.append("-", (source, target))
        if source != target and had_backward and not inner.exists_edge(target, source):
            self.journal.append("-", (target, source))
        self._note_inner_token()

    #: the ISSUE/paper name for edge removal
    remove_edge = delete_edge

    def delete_vertex(self, vertex: VertexId) -> None:
        # a vertex deletion removes an unbounded edge set the journal does
        # not enumerate; the next snapshot rebaselines from the inner graph
        self._inner.delete_vertex(vertex)
        self._needs_rebaseline = True
        self._note_inner_token()

    # ------------------------------------------------------------------ #
    # delegated queries
    # ------------------------------------------------------------------ #
    def get_vertices(self) -> Iterator[VertexId]:
        return self._inner.get_vertices()

    def get_neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        return self._inner.get_neighbors(vertex)

    def exists_edge(self, source: VertexId, target: VertexId) -> bool:
        return self._inner.exists_edge(source, target)

    def get_property(self, vertex: VertexId, key: str, default: Any = None) -> Any:
        return self._inner.get_property(vertex, key, default)

    def set_property(self, vertex: VertexId, key: str, value: Any) -> None:
        self._inner.set_property(vertex, key, value)
        self._note_inner_token()

    def get_edge_property(
        self, source: VertexId, target: VertexId, key: str, default: Any = None
    ) -> Any:
        return self._inner.get_edge_property(source, target, key, default)

    def has_vertex(self, vertex: VertexId) -> bool:
        return self._inner.has_vertex(vertex)

    def num_vertices(self) -> int:
        return self._inner.num_vertices()

    def num_edges(self) -> int:
        return self._inner.num_edges()

    def degree(self, vertex: VertexId) -> int:
        return self._inner.degree(vertex)

    def snapshot_edges(self) -> Iterator[tuple[VertexId, list[VertexId]]]:
        return self._inner.snapshot_edges()

    # ------------------------------------------------------------------ #
    # snapshotting: base ⊕ overlay instead of a representation walk
    # ------------------------------------------------------------------ #
    def _snapshot_token(self) -> Any:
        return (self._generation, self.journal.total, self._inner._snapshot_token())

    def _note_inner_token(self) -> None:
        self._expected_inner_token = self._inner._snapshot_token()

    def _ensure_baseline(self) -> None:
        inner_token = self._inner._snapshot_token()
        if self._base_csr is None:
            # first snapshot: the inner build already reflects any journaled
            # mutations, so the pending records are absorbed into the base
            self._set_baseline(self._inner.snapshot())
            return
        out_of_band = (
            self._expected_inner_token is not None
            and inner_token != self._expected_inner_token
        )
        if self._needs_rebaseline or out_of_band:
            if out_of_band and not self._needs_rebaseline:
                self._notes.append(
                    "note: out-of-band mutation of the journaled graph "
                    "detected; rebuilt the base snapshot"
                )
            self._set_baseline(self._inner.snapshot())
            self._generation += 1

    def _set_baseline(self, snap: "CSRGraph") -> None:
        self._base_csr = snap
        self.journal.rebase(snap.content_hash)
        self._needs_rebaseline = False
        self._note_inner_token()

    def rebase_onto(self, snap: "CSRGraph", *, compacted: bool = True) -> None:
        """Adopt ``snap`` (the merged current snapshot) as the new base —
        journal compaction (or, with ``compacted=False``, a plain recovery
        rebase).  Previous-result positions stay valid: nothing about the
        delta stream changed, only where the base sits in it."""
        self._base_csr = snap
        self.journal.rebase(snap.content_hash, compacted=compacted)
        self._csr_cache = (self._snapshot_token(), snap)

    def snapshot(self) -> "CSRGraph":
        self._ensure_baseline()
        token = self._snapshot_token()
        cached = self._csr_cache
        if cached is not None and cached[0] == token:
            return cached[1]
        if not self.journal.records:
            snap = self._base_csr
        else:
            from repro.graph.backend import get_backend

            overlay = DeltaOverlay(self.journal.records)
            snap = overlay.materialize(
                self._base_csr, source=self, backend=get_backend()
            )
        self._csr_cache = (token, snap)
        return snap

    def adopt_snapshot(self, csr: "CSRGraph") -> "CSRGraph":
        """Adopt a store-loaded (mmap-backed) snapshot.

        A load matching the *base* hash replaces the heap base (freeing its
        arrays); it only becomes the served snapshot when no deltas are
        pending.  Anything else follows the default adoption contract."""
        if self.journal.base_hash is not None and csr.content_hash == self.journal.base_hash:
            self._base_csr = csr
            if not self.journal.records:
                self._csr_cache = (self._snapshot_token(), csr)
            return csr
        return super().adopt_snapshot(csr)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<JournaledGraph over {self._inner!r} pending={len(self.journal)} "
            f"total={self.journal.total}>"
        )
