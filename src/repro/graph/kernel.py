"""The CSR execution kernel: array-backed snapshots of any Graph.

The paper's EXP representation is explicitly a CSR-variant ("arrays of
arrays", Section 4.3), yet the Graph API exposes every representation through
per-vertex iterators over hashable external IDs.  Whole-graph algorithms —
PageRank, BFS, connected components — pay a hash lookup and a generator
resumption per edge per pass when run directly against that API.

:class:`CSRGraph` is the physical execution layer underneath the logical
API: a frozen compressed-sparse-row snapshot of the *logical* (expanded,
de-duplicated) graph with

* ``offsets`` — ``array('q')`` of length ``n + 1``,
* ``targets`` — ``array('q')`` of length ``m`` holding dense vertex indexes,
* a codec between dense indexes (``0 .. n-1``) and the external vertex IDs.

Every algorithm in :mod:`repro.algorithms` is two-phase: encode the input
graph into a ``CSRGraph`` once, run the kernel over dense ``int`` indexes and
flat lists, decode the result back to external IDs at the boundary.  The
vertex-centric framework and the Giraph adapters schedule over the same
snapshot, so all three execution layers share one physical core.

Construction goes through the :meth:`repro.graph.api.Graph.snapshot_edges`
bulk-iteration hook, with fast paths for the condensed representations
(direct virtual-layer expansion in internal-integer space, skipping the
per-vertex ``get_neighbors`` generators and all external-ID hashing) and for
:class:`~repro.graph.expanded.ExpandedGraph` (adjacency-dict flattening).

Snapshots are immutable; :meth:`repro.graph.api.Graph.snapshot` caches one
per graph and invalidates it through the representations' version counters,
so repeated algorithm calls on an unmodified graph reuse the same arrays.

Invariants
----------
* vertex order equals the order of ``Graph.get_vertices()`` at snapshot time;
* per-vertex target order equals the order of ``Graph.get_neighbors()``;
* two snapshots of the same unmodified graph are element-wise identical,

which together make the kernels bit-for-bit deterministic and let ported
algorithms reproduce the exact floating-point results of the pre-kernel
implementations (same summation order).
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Iterator

from repro.exceptions import RepresentationError
from repro.graph.api import VertexId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.api import Graph


class CSRGraph:
    """Immutable compressed-sparse-row snapshot of a logical graph."""

    #: process-wide count of snapshots *built* from a live graph
    #: (:meth:`from_graph`; file loads are not builds).  Instrumentation for
    #: the session layer's amortisation contract: tests assert that a
    #: multi-algorithm :meth:`repro.session.AnalysisPlan.run` moves this
    #: counter by exactly one.
    build_count = 0

    __slots__ = (
        "offsets",
        "targets",
        "external_ids",
        "_index",
        "source",
        "_offsets_list",
        "_targets_list",
        "_undirected",
        "_degrees",
        "_backend_cache",
        "_buffer_owner",
        "_content_hash",
    )

    def __init__(
        self,
        offsets: array,
        targets: array,
        external_ids: list[VertexId],
        source: "Graph | None" = None,
    ) -> None:
        self.offsets = offsets
        self.targets = targets
        self.external_ids = external_ids
        self._index: dict[VertexId, int] = {
            external: index for index, external in enumerate(external_ids)
        }
        if len(self._index) != len(external_ids):
            seen: set = set()
            duplicates: list[VertexId] = []
            for external in external_ids:
                if external in seen and external not in duplicates:
                    duplicates.append(external)
                seen.add(external)
            raise RepresentationError(
                "duplicate external vertex IDs in snapshot: "
                + ", ".join(repr(d) for d in duplicates[:5])
                + ("..." if len(duplicates) > 5 else "")
            )
        #: the Graph this snapshot was taken from (for property reads)
        self.source = source
        self._offsets_list: list[int] | None = None
        self._targets_list: list[int] | None = None
        self._undirected: list[set[int]] | None = None
        self._degrees: list[int] | None = None
        #: scratch space for kernel backends (e.g. cached NumPy views over the
        #: offset/target buffers, symmetrised CSR forms).  Snapshots are
        #: immutable, so entries never go stale; a structural mutation of the
        #: source graph bumps its version counter and the next
        #: ``Graph.snapshot()`` call builds a fresh CSRGraph with an empty
        #: cache, which is how these materialisations are invalidated.
        self._backend_cache: dict[str, Any] = {}
        #: keeps an mmap (or other buffer provider) alive for zero-copy loads
        self._buffer_owner: Any = None
        self._content_hash: bytes | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: "Graph") -> "CSRGraph":
        """Build a snapshot of ``graph``, using the fastest available path."""
        from repro.graph.condensed_base import CondensedBackedGraph

        CSRGraph.build_count += 1
        if isinstance(graph, CondensedBackedGraph):
            return cls._from_condensed(graph)
        return cls._from_snapshot_edges(graph)

    @classmethod
    def _from_snapshot_edges(cls, graph: "Graph") -> "CSRGraph":
        """Generic path: consume the ``snapshot_edges`` bulk-iteration hook."""
        external_ids: list[VertexId] = []
        neighbor_lists: list[list[VertexId]] = []
        for vertex, neighbors in graph.snapshot_edges():
            external_ids.append(vertex)
            neighbor_lists.append(neighbors)
        index = {external: i for i, external in enumerate(external_ids)}

        offsets = array("q", [0] * (len(external_ids) + 1))
        targets_list: list[int] = []
        append = targets_list.append
        for i, neighbors in enumerate(neighbor_lists):
            for neighbor in neighbors:
                append(index[neighbor])
            offsets[i + 1] = len(targets_list)
        return cls(offsets, array("q", targets_list), external_ids, source=graph)

    @classmethod
    def _from_condensed(cls, graph: Any) -> "CSRGraph":
        """Fast path for condensed-backed representations.

        Expands the virtual layer directly in internal-integer space: real
        nodes are renumbered densely, neighbor targets are produced by the
        representation's internal traversal (hash-set, invariant or
        bitmap-guided), and external IDs are materialised once per vertex
        instead of once per edge.
        """
        cg = graph.condensed
        internal_nodes = list(cg.real_nodes())
        dense_of = {node: i for i, node in enumerate(internal_nodes)}

        offsets = array("q", [0] * (len(internal_nodes) + 1))
        targets_list: list[int] = []
        extend = targets_list.extend
        expand = graph._internal_neighbors_list
        for i, node in enumerate(internal_nodes):
            extend(dense_of[t] for t in expand(node))
            offsets[i + 1] = len(targets_list)

        external = cg.external
        external_ids = [external(node) for node in internal_nodes]
        return cls(offsets, array("q", targets_list), external_ids, source=graph)

    # ------------------------------------------------------------------ #
    # persistence (see repro.graph.snapshot_store for the file format)
    # ------------------------------------------------------------------ #
    @property
    def content_hash(self) -> bytes:
        """SHA-256 of the snapshot's logical content (arrays + codec).

        Two snapshots of the same unmodified graph hash identically; any
        structural change produces a different hash, which is how persisted
        snapshot files are checked for staleness.
        """
        if self._content_hash is None:
            from repro.graph.snapshot_store import compute_content_hash, encode_codec

            self._content_hash = compute_content_hash(
                self.offsets, self.targets, encode_codec(self.external_ids)
            )
        return self._content_hash

    def save(self, path) -> "Any":
        """Persist this snapshot to ``path`` (mmap-able binary format)."""
        from repro.graph.snapshot_store import save_snapshot

        return save_snapshot(self, path)

    @classmethod
    def load(
        cls, path, *, mmap: bool = True, verify: bool = True, source: "Graph | None" = None
    ) -> "CSRGraph":
        """Load a snapshot persisted with :meth:`save`.

        With ``mmap=True`` the arrays are zero-copy views over a read-only
        memory mapping of the file (shared page-cache copy across processes).
        """
        from repro.graph.snapshot_store import load_snapshot

        return load_snapshot(path, mmap=mmap, verify=verify, source=source)

    # ------------------------------------------------------------------ #
    # sizes
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.external_ids)

    @property
    def num_edges(self) -> int:
        """Number of (logical, directed) edges."""
        return len(self.targets)

    def __len__(self) -> int:
        return len(self.external_ids)

    # ------------------------------------------------------------------ #
    # codec
    # ------------------------------------------------------------------ #
    def index(self, external: VertexId) -> int:
        """Dense index of an external vertex ID."""
        try:
            return self._index[external]
        except KeyError:
            raise RepresentationError(
                f"vertex {external!r} is not in this snapshot"
            ) from None

    def external(self, index: int) -> VertexId:
        """External ID of a dense index."""
        return self.external_ids[index]

    def has_vertex(self, external: VertexId) -> bool:
        return external in self._index

    def decode(self, values: list) -> dict[VertexId, Any]:
        """Zip a dense per-vertex value list back onto external IDs."""
        return dict(zip(self.external_ids, values))

    # ------------------------------------------------------------------ #
    # kernel-facing views
    # ------------------------------------------------------------------ #
    @property
    def offsets_list(self) -> list[int]:
        """``offsets`` as a plain list (cached; faster to index in kernels)."""
        if self._offsets_list is None:
            self._offsets_list = self.offsets.tolist()
        return self._offsets_list

    @property
    def targets_list(self) -> list[int]:
        """``targets`` as a plain list (cached; faster to index in kernels)."""
        if self._targets_list is None:
            self._targets_list = self.targets.tolist()
        return self._targets_list

    def neighbors(self, index: int) -> array:
        """Dense out-neighbor indexes of ``index`` (a zero-copy-ish slice)."""
        return self.targets[self.offsets[index] : self.offsets[index + 1]]

    def neighbor_set(self, index: int) -> set[int]:
        """Out-neighbors of ``index`` as a set of dense indexes."""
        return set(self.targets[self.offsets[index] : self.offsets[index + 1]])

    def out_degree(self, index: int) -> int:
        return self.offsets[index + 1] - self.offsets[index]

    def degrees(self) -> list[int]:
        """Out-degree per dense index (cached; snapshots are immutable, so
        repeated algorithm calls — including on mmap-backed snapshots, whose
        offsets are memoryviews and comparatively slow to index — share one
        materialised list)."""
        if self._degrees is None:
            offsets = self.offsets_list
            self._degrees = [offsets[i + 1] - offsets[i] for i in range(self.n)]
        return self._degrees

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """All edges as dense ``(source, target)`` index pairs."""
        offsets = self.offsets_list
        targets = self.targets_list
        for u in range(self.n):
            for e in range(offsets[u], offsets[u + 1]):
                yield u, targets[e]

    def is_symmetric(self) -> bool:
        """True if every edge ``u → v`` has its reverse ``v → u``.

        The paper's co-occurrence extractions are symmetric; the superstep
        programs in :mod:`repro.vertexcentric.programs` gather from
        out-neighbors and are exact only on symmetric graphs, so callers
        routing work to them (e.g. the CLI's ``--parallel``) check this first.
        """
        edges = set(self.iter_edges())
        return all((v, u) in edges for (u, v) in edges)

    def undirected_sets(self) -> list[set[int]]:
        """Symmetrised adjacency (``u ~ v`` iff ``u→v`` or ``v→u``) as a list
        of dense-index sets with self-loops dropped.  Cached: triangles,
        k-core and similarity kernels all start from this view.

        When another consumer (e.g. the NumPy backend) already derived the
        backend-neutral :meth:`undirected_csr`, the sets are rebuilt from
        those shared arrays instead of re-symmetrising the edge list."""
        if self._undirected is None:
            neutral = self._backend_cache.get("und_csr")
            if neutral is not None:
                offsets, targets = neutral
                self._undirected = [
                    set(targets[offsets[u] : offsets[u + 1]]) for u in range(self.n)
                ]
            else:
                adjacency: list[set[int]] = [set() for _ in range(self.n)]
                offsets = self.offsets_list
                targets = self.targets_list
                for u in range(self.n):
                    for e in range(offsets[u], offsets[u + 1]):
                        v = targets[e]
                        if v != u:
                            adjacency[u].add(v)
                            adjacency[v].add(u)
                self._undirected = adjacency
        return self._undirected

    def undirected_csr(self) -> tuple[array, array]:
        """Symmetrised, deduplicated adjacency as a backend-neutral sorted CSR:
        ``('q')`` offset/target arrays with each row ascending, self-loops
        dropped — the same logical view as :meth:`undirected_sets`.

        Cached in ``_backend_cache`` under the single backend-independent key
        ``"und_csr"`` so a session that runs python *and* numpy kernels over
        one snapshot derives the symmetrised form once: the NumPy backend
        wraps these arrays zero-copy (and publishes its own vectorised build
        here), while :meth:`undirected_sets` converts in either direction."""
        neutral = self._backend_cache.get("und_csr")
        if neutral is None:
            if self._undirected is not None:
                rows: list[list[int]] = [sorted(s) for s in self._undirected]
            else:
                sets: list[set[int]] = [set() for _ in range(self.n)]
                offsets_list = self.offsets_list
                targets_list = self.targets_list
                for u in range(self.n):
                    for e in range(offsets_list[u], offsets_list[u + 1]):
                        v = targets_list[e]
                        if v != u:
                            sets[u].add(v)
                            sets[v].add(u)
                rows = [sorted(s) for s in sets]
            offsets = array("q", [0])
            targets = array("q")
            for row in rows:
                targets.extend(row)
                offsets.append(len(targets))
            neutral = self._backend_cache["und_csr"] = (offsets, targets)
        return neutral

    # ------------------------------------------------------------------ #
    # property pass-through (snapshots are structural; properties live on
    # the source representation)
    # ------------------------------------------------------------------ #
    def get_property(self, index: int, key: str, default: Any = None) -> Any:
        """Property ``key`` of the vertex at ``index``, read from the source
        graph the snapshot was taken from."""
        if self.source is None:
            return default
        return self.source.get_property(self.external_ids[index], key, default)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<CSRGraph n={self.n} m={self.num_edges}>"


# --------------------------------------------------------------------------- #
# shared traversal kernels (used by several algorithm modules)
# --------------------------------------------------------------------------- #
def bfs_distances_kernel(
    csr: CSRGraph, source: int, max_depth: int | None = None
) -> list[int]:
    """Hop distances from dense index ``source``; ``-1`` marks unreachable.

    Level-synchronous expansion; vertices are discovered in exactly the same
    order as a FIFO BFS that follows snapshot target order.
    """
    offsets = csr.offsets_list
    targets = csr.targets_list
    distances = [-1] * csr.n
    distances[source] = 0
    frontier = [source]
    depth = 0
    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        depth += 1
        next_frontier: list[int] = []
        push = next_frontier.append
        for u in frontier:
            for e in range(offsets[u], offsets[u + 1]):
                v = targets[e]
                if distances[v] < 0:
                    distances[v] = depth
                    push(v)
        frontier = next_frontier
    return distances


def bfs_order_kernel(csr: CSRGraph, source: int) -> list[int]:
    """Dense indexes in BFS visit order from ``source``."""
    offsets = csr.offsets_list
    targets = csr.targets_list
    seen = bytearray(csr.n)
    seen[source] = 1
    order = [source]
    head = 0
    while head < len(order):
        u = order[head]
        head += 1
        for e in range(offsets[u], offsets[u + 1]):
            v = targets[e]
            if not seen[v]:
                seen[v] = 1
                order.append(v)
    return order


def bfs_parents_kernel(csr: CSRGraph, source: int) -> list[int]:
    """BFS-tree parent per dense index (``-1`` = root or unreachable)."""
    offsets = csr.offsets_list
    targets = csr.targets_list
    parents = [-2] * csr.n  # -2 = undiscovered
    parents[source] = -1
    queue = [source]
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for e in range(offsets[u], offsets[u + 1]):
            v = targets[e]
            if parents[v] == -2:
                parents[v] = u
                queue.append(v)
    return parents
