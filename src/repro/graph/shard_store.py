"""Sharded CSR snapshots: per-vertex-range segment files plus a manifest.

The monolithic format of :mod:`repro.graph.snapshot_store` maps the whole
graph into every process that opens it.  That is the right trade until the
snapshot no longer fits one address space — the ROADMAP's table3-scale ×100
target — at which point the persisted form has to split along the same lines
the execution layers already parallelise over: **contiguous vertex ranges**
(:func:`repro.vertexcentric.parallel.partition_range` partitions, the plan
workers' ``(lo, hi)`` chunk bounds).

A sharded snapshot is one **manifest** file plus ``num_shards`` **segment**
files.  Shard ``k`` owns the vertex range ``[lo_k, hi_k)`` and stores only
that range's CSR rows:

* its offsets section holds ``hi - lo + 1`` entries rebased to 0 (entry
  ``j`` is ``offsets[lo + j] - offsets[lo]`` of the full graph), and
* its targets section holds those rows' edges — **global** dense vertex
  indexes, so cross-shard edges need no translation table.

A worker that loads shard ``k`` therefore maps ``O(rows_k + edges_k)`` bytes
instead of ``O(n + m)``; the returned :class:`ShardView` pads the local
offsets back to full length (zeros before ``lo``, the shard's edge count
after ``hi``) so both kernel backends index it with *global* vertex numbers
unchanged.  Rows outside ``[lo, hi)`` read as empty — shard consumers must
only traverse the adjacency of their own range, which is exactly the
contract the superstep gather (``segment_sums(csr, values, lo, hi)``) and
``VertexContext.neighbors()`` already honor.

Manifest layout (version 1; all integers little-endian)
-------------------------------------------------------
======  ====  =====================================================
offset  size  field
======  ====  =====================================================
0       8     magic ``b"GGCSRMAN"``
8       2     format version (``u16``, currently 1)
10      2     flags (``u16``, reserved, must be 0)
12      4     reserved padding (``u32``, must be 0)
16      8     ``n`` — number of vertices (``u64``)
24      8     ``m`` — number of directed edges (``u64``)
32      8     ``num_shards`` (``u64``)
40      8     codec section length in bytes (``u64``)
48      32    global SHA-256 content hash (see below)
80      —     shard table: ``num_shards`` × 56-byte records
              ``(lo u64, hi u64, edges u64, shard sha-256)``
—       —     codec section: pickled ``external_ids`` list
======  ====  =====================================================

The **global content hash equals the monolithic format's**
(``sha256(n || m || offsets || targets || codec)`` of the full graph), so a
live graph's ``csr.content_hash`` compares against a manifest exactly as it
does against a ``.csr`` file — the store's staleness detection is format
agnostic.  Each shard file carries its own header (magic ``b"GGCSRSHD"``,
mirrored range/edge counts, global ``n``) plus a per-shard hash
``sha256(lo || hi || local offsets || targets)`` recorded in both the shard
header and the manifest table, so a truncated, swapped or corrupted segment
is detected without touching the other shards.

Shard files hold **no codec**: workers decode the external-ID table once
from the manifest (every superstep worker needs the full codec anyway, to
translate global target indexes), and the mapped per-worker bytes stay the
shard's arrays only.

Determinism: shard boundaries are planned once per save (explicitly with
``shards=N`` — :func:`partition_range`, the executor's own geometry — or
greedily under ``max_bytes``), recorded in the manifest, and reused verbatim
as the worker partition bounds, so the partition-order merge contract of
:mod:`repro.vertexcentric.parallel` applies unchanged and results are
bit-identical to the unsharded path.
"""

from __future__ import annotations

import hashlib
import mmap as _mmap
import os
import struct
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.exceptions import SnapshotFormatError
from repro.graph.kernel import CSRGraph
from repro.graph.snapshot_store import (
    _LITTLE_ENDIAN,
    _array_bytes_le,
    _record_save,
    decode_codec,
    encode_codec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

MANIFEST_MAGIC = b"GGCSRMAN"
SHARD_MAGIC = b"GGCSRSHD"
SHARD_FORMAT_VERSION = 1
_MANIFEST_HEADER = struct.Struct("<8sHHIQQQQ32s")
MANIFEST_HEADER_SIZE = _MANIFEST_HEADER.size  # 80 bytes, 8-aligned
_SHARD_TABLE_ENTRY = struct.Struct("<QQQ32s")
SHARD_TABLE_ENTRY_SIZE = _SHARD_TABLE_ENTRY.size  # 56 bytes
_SHARD_HEADER = struct.Struct("<8sHHIQQQQ32s")
SHARD_HEADER_SIZE = _SHARD_HEADER.size  # 80 bytes, 8-aligned
_ITEM = 8  # bytes per offsets/targets element

#: conventional manifest filename suffix (the store uses it for its keys)
MANIFEST_SUFFIX = ".csrm"


def shard_path(manifest_path: str | os.PathLike, index: int) -> Path:
    """The segment file of shard ``index``, derived from the manifest path."""
    manifest_path = Path(manifest_path)
    return manifest_path.with_name(manifest_path.name + f".shard{index:03d}")


def snapshot_payload_bytes(csr: "CSRGraph") -> int:
    """The snapshot's array payload in bytes: ``8 * (n + 1 + m)``.

    This is what sharding divides (and what workers actually map, headers
    aside): the codec is pickled into the manifest once and heap-decoded,
    never mapped per worker, so memory budgets are planned against the array
    sections alone.
    """
    return (csr.n + 1 + csr.num_edges) * _ITEM


# --------------------------------------------------------------------------- #
# shard planning
# --------------------------------------------------------------------------- #
def plan_shard_ranges(
    csr: "CSRGraph", *, shards: int | None = None, max_bytes: int | None = None
) -> list[tuple[int, int]]:
    """Contiguous ascending ``(lo, hi)`` shard bounds covering ``[0, n)``.

    With explicit ``shards=N`` the bounds are exactly
    :func:`~repro.vertexcentric.parallel.partition_range`'s — the superstep
    executor's own geometry, so worker partitions and shard files align by
    construction.  With ``max_bytes`` the split is greedy by payload bytes
    (8 per offset entry + 8 per edge, headers included): every shard's file
    stays ≤ ``max_bytes`` except when a single vertex's adjacency alone
    exceeds it (rows are never split).
    """
    from repro.vertexcentric.parallel import partition_range

    n = csr.n
    if shards is not None:
        if shards < 1:
            raise SnapshotFormatError(f"shards must be at least 1 (got {shards})")
        if n == 0:
            return [(0, 0)] * shards
        return partition_range(n, shards)
    if max_bytes is None:
        raise SnapshotFormatError("plan_shard_ranges needs shards=N or max_bytes=B")
    if max_bytes < 1:
        raise SnapshotFormatError(f"max_bytes must be positive (got {max_bytes})")
    if n == 0:
        return [(0, 0)]
    offsets = csr.offsets
    base = SHARD_HEADER_SIZE + _ITEM  # header plus the leading offset entry
    ranges: list[tuple[int, int]] = []
    lo = 0
    used = base
    for vertex in range(n):
        row = _ITEM + (offsets[vertex + 1] - offsets[vertex]) * _ITEM
        if vertex > lo and used + row > max_bytes:
            ranges.append((lo, vertex))
            lo = vertex
            used = base
        used += row
    ranges.append((lo, n))
    return ranges


def _validate_ranges(ranges: Sequence[tuple[int, int]], n: int, *, source: str) -> None:
    expected_lo = 0
    for lo, hi in ranges:
        if lo != expected_lo or hi < lo:
            raise SnapshotFormatError(
                f"{source}: shard table is not contiguous ascending over [0, {n}) "
                f"(found range ({lo}, {hi}), expected lo {expected_lo})"
            )
        expected_lo = hi
    if expected_lo != n:
        raise SnapshotFormatError(
            f"{source}: shard table covers [0, {expected_lo}), header says n={n}"
        )


# --------------------------------------------------------------------------- #
# manifest structures
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardInfo:
    """One shard table record of a manifest."""

    index: int
    lo: int
    hi: int
    edges: int
    shard_hash: bytes

    @property
    def rows(self) -> int:
        return self.hi - self.lo

    @property
    def file_size(self) -> int:
        return SHARD_HEADER_SIZE + (self.rows + 1) * _ITEM + self.edges * _ITEM


@dataclass(frozen=True)
class ShardManifest:
    """Decoded header + shard table of a sharded snapshot manifest."""

    path: Path
    version: int
    n: int
    m: int
    codec_length: int
    content_hash: bytes
    shards: tuple[ShardInfo, ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def codec_start(self) -> int:
        return MANIFEST_HEADER_SIZE + self.num_shards * SHARD_TABLE_ENTRY_SIZE

    @property
    def file_size(self) -> int:
        return self.codec_start + self.codec_length

    def ranges(self) -> list[tuple[int, int]]:
        return [(shard.lo, shard.hi) for shard in self.shards]

    def shard_path(self, index: int) -> Path:
        return shard_path(self.path, index)


def _shard_hash(lo: int, hi: int, offsets_bytes: bytes, targets_bytes: bytes) -> bytes:
    digest = hashlib.sha256()
    digest.update(struct.pack("<QQ", lo, hi))
    digest.update(offsets_bytes)
    digest.update(targets_bytes)
    return digest.digest()


# --------------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------------- #
def save_sharded_snapshot(
    csr: "CSRGraph",
    manifest_path: str | os.PathLike,
    *,
    ranges: Sequence[tuple[int, int]] | None = None,
    shards: int | None = None,
    max_bytes: int | None = None,
) -> Path:
    """Write ``csr`` as a sharded snapshot rooted at ``manifest_path``.

    Segment files are written first (write-to-temp + rename each), the
    manifest last — a crash mid-save leaves the previous manifest (or none)
    in place, so readers never observe a manifest describing missing shards.
    Counts as **one** snapshot write in the store instrumentation: it is one
    logical persist, however many segment files it produces.
    """
    manifest_path = Path(manifest_path)
    if ranges is None:
        ranges = plan_shard_ranges(csr, shards=shards, max_bytes=max_bytes)
    ranges = [(int(lo), int(hi)) for lo, hi in ranges]
    _validate_ranges(ranges, csr.n, source=str(manifest_path))
    _record_save()

    offsets = csr.offsets
    targets = csr.targets
    codec_bytes = encode_codec(csr.external_ids)
    content_hash = csr.content_hash

    table: list[ShardInfo] = []
    pid = os.getpid()
    written_tmp: list[tuple[Path, Path]] = []
    try:
        for index, (lo, hi) in enumerate(ranges):
            edge_lo = offsets[lo]
            edge_hi = offsets[hi]
            local_offsets = array("q", [offsets[v] - edge_lo for v in range(lo, hi + 1)])
            offsets_bytes = _array_bytes_le(local_offsets)
            targets_bytes = _array_bytes_le(targets[edge_lo:edge_hi])
            digest = _shard_hash(lo, hi, offsets_bytes, targets_bytes)
            table.append(ShardInfo(index, lo, hi, edge_hi - edge_lo, digest))
            header = _SHARD_HEADER.pack(
                SHARD_MAGIC,
                SHARD_FORMAT_VERSION,
                0,
                index,
                lo,
                hi,
                edge_hi - edge_lo,
                csr.n,
                digest,
            )
            final = shard_path(manifest_path, index)
            tmp = final.with_name(final.name + f".tmp.{pid}")
            written_tmp.append((tmp, final))
            with tmp.open("wb") as handle:
                handle.write(header)
                handle.write(offsets_bytes)
                handle.write(targets_bytes)
        for tmp, final in written_tmp:
            os.replace(tmp, final)
        written_tmp = []

        header = _MANIFEST_HEADER.pack(
            MANIFEST_MAGIC,
            SHARD_FORMAT_VERSION,
            0,
            0,
            csr.n,
            csr.num_edges,
            len(table),
            len(codec_bytes),
            content_hash,
        )
        tmp = manifest_path.with_name(manifest_path.name + f".tmp.{pid}")
        try:
            with tmp.open("wb") as handle:
                handle.write(header)
                for shard in table:
                    handle.write(
                        _SHARD_TABLE_ENTRY.pack(
                            shard.lo, shard.hi, shard.edges, shard.shard_hash
                        )
                    )
                handle.write(codec_bytes)
            os.replace(tmp, manifest_path)
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed write
                tmp.unlink()
    finally:
        for tmp, _ in written_tmp:  # pragma: no cover - only on a failed write
            if tmp.exists():
                tmp.unlink()

    # drop segment files a previous, wider sharding left behind — a stale
    # .shard007 next to a 4-shard manifest would otherwise look adoptable
    index = len(table)
    while True:
        leftover = shard_path(manifest_path, index)
        if not leftover.exists():
            break
        leftover.unlink()
        index += 1
    return manifest_path


# --------------------------------------------------------------------------- #
# read
# --------------------------------------------------------------------------- #
def peek_manifest(path: str | os.PathLike) -> ShardManifest:
    """Decode and validate a manifest's header + shard table (no codec, no
    shard files) — the cheap staleness/geometry check."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            head = handle.read(MANIFEST_HEADER_SIZE)
            if len(head) < MANIFEST_HEADER_SIZE:
                raise SnapshotFormatError(
                    f"{path}: file too small for a shard manifest header "
                    f"({len(head)} < {MANIFEST_HEADER_SIZE} bytes)"
                )
            magic, version, flags, reserved, n, m, num_shards, codec_length, content_hash = (
                _MANIFEST_HEADER.unpack(head)
            )
            if magic != MANIFEST_MAGIC:
                raise SnapshotFormatError(
                    f"{path}: bad magic {magic!r}, expected {MANIFEST_MAGIC!r}"
                )
            if version != SHARD_FORMAT_VERSION:
                raise SnapshotFormatError(
                    f"{path}: unsupported shard manifest version {version} "
                    f"(this build reads version {SHARD_FORMAT_VERSION})"
                )
            if flags or reserved:
                raise SnapshotFormatError(f"{path}: reserved header fields are non-zero")
            if num_shards < 1 or num_shards > 1_000_000:
                raise SnapshotFormatError(f"{path}: implausible shard count {num_shards}")
            table_bytes = handle.read(num_shards * SHARD_TABLE_ENTRY_SIZE)
    except OSError as exc:
        raise SnapshotFormatError(f"cannot read shard manifest {path}: {exc}") from None
    if len(table_bytes) != num_shards * SHARD_TABLE_ENTRY_SIZE:
        raise SnapshotFormatError(f"{path}: truncated shard table")
    shards = tuple(
        ShardInfo(index, *_SHARD_TABLE_ENTRY.unpack_from(table_bytes, index * SHARD_TABLE_ENTRY_SIZE))
        for index in range(num_shards)
    )
    manifest = ShardManifest(
        path=path,
        version=version,
        n=n,
        m=m,
        codec_length=codec_length,
        content_hash=content_hash,
        shards=shards,
    )
    _validate_ranges(manifest.ranges(), n, source=str(path))
    if sum(shard.edges for shard in shards) != m:
        raise SnapshotFormatError(
            f"{path}: shard edge counts do not sum to the header's m={m}"
        )
    actual = path.stat().st_size
    if actual != manifest.file_size:
        raise SnapshotFormatError(
            f"{path}: truncated or oversized manifest "
            f"(header implies {manifest.file_size} bytes, file has {actual})"
        )
    return manifest


def read_manifest_codec(manifest: ShardManifest) -> list:
    """The manifest's pickled external-ID table, decoded and length-checked."""
    with manifest.path.open("rb") as handle:
        handle.seek(manifest.codec_start)
        codec_bytes = handle.read(manifest.codec_length)
    if len(codec_bytes) != manifest.codec_length:
        raise SnapshotFormatError(f"{manifest.path}: truncated codec section")
    external_ids = decode_codec(codec_bytes)
    if len(external_ids) != manifest.n:
        raise SnapshotFormatError(
            f"{manifest.path}: codec lists {len(external_ids)} vertices, "
            f"header says {manifest.n}"
        )
    return external_ids


def verify_shard_files(manifest: ShardManifest, *, deep: bool = False) -> bool:
    """Whether every segment file exists with the expected size (and, with
    ``deep=True``, a matching payload hash).  False means "rewrite me"."""
    try:
        for shard in manifest.shards:
            path = manifest.shard_path(shard.index)
            if path.stat().st_size != shard.file_size:
                return False
            if deep:
                _read_shard_payload(manifest, shard, mmap=False, verify=True)
    except (OSError, SnapshotFormatError):
        return False
    return True


class ShardView(CSRGraph):
    """One shard's rows behind the full-graph CSR interface.

    ``offsets`` is a full-length padded array — global vertex indexing works
    unchanged in both kernel backends — while ``targets`` holds only this
    shard's edges (zero-copy over the segment file's mapping when possible).
    Rows outside ``[shard_lo, shard_hi)`` read as empty: consumers must
    restrict adjacency traversal to their own range, which is what the
    superstep machinery's fixed partitions guarantee.  ``num_edges`` is the
    *local* edge count, i.e. the bytes this process actually maps.
    """

    __slots__ = ("shard_index", "shard_lo", "shard_hi", "shard_count", "shard_file_bytes")


def _read_shard_payload(manifest: ShardManifest, shard: ShardInfo, *, mmap: bool, verify: bool):
    """Open one segment file, validate its header against the manifest, and
    return ``(offsets_view, targets_view, mapping_or_None)``."""
    path = manifest.shard_path(shard.index)
    use_mmap = mmap and _LITTLE_ENDIAN
    try:
        handle = path.open("rb")
    except OSError as exc:
        raise SnapshotFormatError(f"cannot read snapshot shard {path}: {exc}") from None
    with handle:
        if use_mmap:
            try:
                mapping = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
            except (ValueError, OSError) as exc:  # e.g. empty file
                raise SnapshotFormatError(f"cannot mmap snapshot shard {path}: {exc}") from None
            data: bytes | memoryview = memoryview(mapping)
        else:
            mapping = None
            data = handle.read()

    if len(data) < SHARD_HEADER_SIZE:
        raise SnapshotFormatError(
            f"{path}: file too small for a shard header "
            f"({len(data)} < {SHARD_HEADER_SIZE} bytes)"
        )
    magic, version, flags, index, lo, hi, edges, n, digest = _SHARD_HEADER.unpack(
        bytes(data[:SHARD_HEADER_SIZE])
    )
    if magic != SHARD_MAGIC:
        raise SnapshotFormatError(f"{path}: bad magic {magic!r}, expected {SHARD_MAGIC!r}")
    if version != SHARD_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{path}: unsupported shard format version {version} "
            f"(this build reads version {SHARD_FORMAT_VERSION})"
        )
    if flags:
        raise SnapshotFormatError(f"{path}: reserved header fields are non-zero")
    if (index, lo, hi, edges, n) != (shard.index, shard.lo, shard.hi, shard.edges, manifest.n):
        raise SnapshotFormatError(
            f"{path}: shard header (index={index}, range=({lo}, {hi}), edges={edges}, "
            f"n={n}) does not match its manifest entry"
        )
    if digest != shard.shard_hash:
        raise SnapshotFormatError(f"{path}: shard hash does not match the manifest")
    if len(data) != shard.file_size:
        raise SnapshotFormatError(
            f"{path}: truncated or oversized shard "
            f"(manifest implies {shard.file_size} bytes, file has {len(data)})"
        )
    offsets_start = SHARD_HEADER_SIZE
    targets_start = offsets_start + (shard.rows + 1) * _ITEM
    offsets_view = data[offsets_start:targets_start]
    targets_view = data[targets_start : shard.file_size]
    if verify:
        if _shard_hash(lo, hi, bytes(offsets_view), bytes(targets_view)) != digest:
            raise SnapshotFormatError(
                f"{path}: shard content hash mismatch — the segment file is corrupt"
            )
    return offsets_view, targets_view, mapping


def load_shard(
    manifest_path: str | os.PathLike,
    shard: int | tuple[int, int],
    *,
    mmap: bool = True,
    verify: bool = False,
    manifest: ShardManifest | None = None,
    external_ids: list | None = None,
) -> ShardView:
    """Load one shard as a :class:`ShardView` (see the class doc).

    ``shard`` is either a shard index or an exact ``(lo, hi)`` bound — the
    latter is what worker factories use, since their partition bounds *are*
    the manifest's ranges.  ``manifest``/``external_ids`` may be passed to
    skip re-reading them (same-process loops over many shards).
    """
    if manifest is None:
        manifest = peek_manifest(manifest_path)
    if external_ids is None:
        external_ids = read_manifest_codec(manifest)
    if isinstance(shard, tuple):
        lo, hi = shard
        for candidate in manifest.shards:
            if candidate.lo == lo and candidate.hi == hi:
                info = candidate
                break
        else:
            raise SnapshotFormatError(
                f"{manifest.path}: no shard with bounds ({lo}, {hi}); "
                f"manifest ranges are {manifest.ranges()}"
            )
    else:
        if not 0 <= shard < manifest.num_shards:
            raise SnapshotFormatError(
                f"{manifest.path}: shard index {shard} out of range "
                f"(manifest has {manifest.num_shards})"
            )
        info = manifest.shards[shard]

    offsets_view, targets_view, mapping = _read_shard_payload(
        manifest, info, mmap=mmap, verify=verify
    )

    # pad the rebased local offsets back to full length: zeros before lo,
    # the shard's edge count after hi — global row indexing works unchanged,
    # and out-of-range rows read as empty
    offsets = array("q", bytes(_ITEM * info.lo))
    offsets.frombytes(bytes(offsets_view))
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        swapped = array("q", offsets_view.tobytes() if hasattr(offsets_view, "tobytes") else bytes(offsets_view))
        swapped.byteswap()
        offsets = array("q", [0] * info.lo)
        offsets.extend(swapped)
    offsets.extend([info.edges] * (manifest.n - info.hi))

    if mapping is not None:
        targets = memoryview(mapping)[
            SHARD_HEADER_SIZE + (info.rows + 1) * _ITEM : info.file_size
        ].cast("q")
    else:
        targets = array("q")
        targets.frombytes(bytes(targets_view))
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
            targets.byteswap()

    view = ShardView(offsets, targets, external_ids)
    view._buffer_owner = mapping
    view.shard_index = info.index
    view.shard_lo = info.lo
    view.shard_hi = info.hi
    view.shard_count = manifest.num_shards
    view.shard_file_bytes = info.file_size
    return view


def load_sharded_snapshot(
    manifest_path: str | os.PathLike, *, verify: bool = True
) -> "CSRGraph":
    """Reassemble the full monolithic snapshot from a sharded one.

    The trusting whole-graph load (equivalence tests, non-out-of-core
    consumers of a sharded store).  Always returns private heap arrays —
    one contiguous array cannot be zero-copy over many mappings.  With
    ``verify=True`` the **global** content hash is recomputed over the
    assembled arrays + codec and compared against the manifest's, exactly
    like the monolithic loader's corruption check.
    """
    manifest = peek_manifest(manifest_path)
    external_ids = read_manifest_codec(manifest)
    offsets = array("q", [0])
    targets = array("q")
    edge_base = 0
    for shard in manifest.shards:
        offsets_view, targets_view, mapping = _read_shard_payload(
            manifest, shard, mmap=False, verify=False
        )
        local_offsets = array("q")
        local_offsets.frombytes(bytes(offsets_view))
        local_targets = array("q")
        local_targets.frombytes(bytes(targets_view))
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
            local_offsets.byteswap()
            local_targets.byteswap()
        offsets.extend(value + edge_base for value in local_offsets[1:])
        targets.extend(local_targets)
        edge_base += shard.edges
    if verify:
        from repro.graph.snapshot_store import compute_content_hash

        digest = compute_content_hash(offsets, targets, encode_codec(external_ids))
        if digest != manifest.content_hash:
            raise SnapshotFormatError(
                f"{manifest_path}: content hash mismatch — the sharded snapshot is corrupt"
            )
    snap = CSRGraph(offsets, targets, external_ids)
    snap._content_hash = manifest.content_hash
    return snap


def ensure_saved_sharded(
    csr: "CSRGraph",
    manifest_path: str | os.PathLike,
    *,
    ranges: Sequence[tuple[int, int]] | None = None,
    shards: int | None = None,
    max_bytes: int | None = None,
) -> Path:
    """Make sure ``manifest_path`` holds exactly ``csr`` sharded along the
    requested geometry (content-hash + per-shard checked).

    A readable manifest whose global hash matches, whose ranges equal the
    requested ones, and whose segment files all pass the cheap size/header
    check is left untouched; anything else is atomically rewritten.
    """
    manifest_path = Path(manifest_path)
    if ranges is None:
        ranges = plan_shard_ranges(csr, shards=shards, max_bytes=max_bytes)
    ranges = [(int(lo), int(hi)) for lo, hi in ranges]
    if manifest_path.exists():
        try:
            manifest = peek_manifest(manifest_path)
            if (
                manifest.content_hash == csr.content_hash
                and manifest.ranges() == ranges
                and verify_shard_files(manifest)
            ):
                return manifest_path
        except SnapshotFormatError:
            pass
    return save_sharded_snapshot(csr, manifest_path, ranges=ranges)
