"""The GraphGen Graph API.

Section 3.4 of the paper defines a seven-operation Java API that every
in-memory representation implements; all graph algorithms are written against
it so they run unchanged on EXP, C-DUP, DEDUP-1, DEDUP-2 and BITMAP:

* ``getVertices()``          → :meth:`Graph.get_vertices`
* ``getNeighbors(v)``        → :meth:`Graph.get_neighbors`
* ``existsEdge(v, u)``       → :meth:`Graph.exists_edge`
* ``addEdge / deleteEdge``   → :meth:`Graph.add_edge` / :meth:`Graph.delete_edge`
* ``addVertex / deleteVertex`` → :meth:`Graph.add_vertex` / :meth:`Graph.delete_vertex`

plus vertex properties (``get_property`` / ``set_property``).  Vertex
identifiers at this level are the *external* node IDs that came out of the
database (e.g. author IDs), never internal indexes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Iterator

from repro.exceptions import RepresentationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.kernel import CSRGraph

VertexId = Hashable


class Graph(ABC):
    """Abstract base class for every in-memory graph representation."""

    #: short name used in benchmark output ("EXP", "C-DUP", ...)
    representation_name: str = "abstract"

    # ------------------------------------------------------------------ #
    # the seven core operations
    # ------------------------------------------------------------------ #
    @abstractmethod
    def get_vertices(self) -> Iterator[VertexId]:
        """Iterate over all (real) vertex IDs."""

    @abstractmethod
    def get_neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        """Iterate over the out-neighbors of ``vertex`` with duplicates
        removed (each logical neighbor exactly once)."""

    @abstractmethod
    def exists_edge(self, source: VertexId, target: VertexId) -> bool:
        """True if the logical (expanded) graph contains ``source -> target``."""

    @abstractmethod
    def add_vertex(self, vertex: VertexId, **properties: Any) -> None:
        """Add an isolated vertex (no-op properties allowed)."""

    @abstractmethod
    def delete_vertex(self, vertex: VertexId) -> None:
        """Remove a vertex and all its incident (logical) edges."""

    @abstractmethod
    def add_edge(self, source: VertexId, target: VertexId) -> None:
        """Add the logical edge ``source -> target``."""

    @abstractmethod
    def delete_edge(self, source: VertexId, target: VertexId) -> None:
        """Remove the logical edge ``source -> target``."""

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @abstractmethod
    def get_property(self, vertex: VertexId, key: str, default: Any = None) -> Any:
        """Value of property ``key`` on ``vertex`` (or ``default``)."""

    @abstractmethod
    def set_property(self, vertex: VertexId, key: str, value: Any) -> None:
        """Set property ``key`` on ``vertex``."""

    # ------------------------------------------------------------------ #
    # edge properties (optional; representations that carry them override)
    # ------------------------------------------------------------------ #
    def get_edge_property(
        self, source: VertexId, target: VertexId, key: str, default: Any = None
    ) -> Any:
        """Value of property ``key`` on the logical edge ``source -> target``.

        Edge properties are produced by aggregate extraction queries (e.g. a
        ``count(PubID)`` weight on co-author edges).  Representations that do
        not store edge properties return ``default``.
        """
        return default

    # ------------------------------------------------------------------ #
    # bulk snapshot hook (the seam between the logical API and the CSR
    # execution kernel; see repro.graph.kernel)
    # ------------------------------------------------------------------ #
    #: per-instance structural version; mutators call _bump_version() so the
    #: cached CSR snapshot can be invalidated (class attribute as default)
    _graph_version: int = 0
    #: (token, CSRGraph) of the last snapshot, or None
    _csr_cache: tuple[Any, "CSRGraph"] | None = None

    def snapshot_edges(self) -> Iterator[tuple[VertexId, list[VertexId]]]:
        """Bulk iteration: yield ``(vertex, out-neighbor list)`` per vertex.

        The default implementation walks ``get_vertices`` / ``get_neighbors``;
        representations override it with flat scans over their physical
        storage.  Order is the representation's canonical vertex order and
        per-vertex neighbor order — :class:`~repro.graph.kernel.CSRGraph`
        preserves both.
        """
        for vertex in self.get_vertices():
            yield vertex, list(self.get_neighbors(vertex))

    def snapshot(self) -> "CSRGraph":
        """The CSR snapshot of this graph's logical edge set (cached).

        The snapshot is rebuilt lazily after any structural mutation
        (tracked through the representation's version counters); repeated
        algorithm calls on an unmodified graph share one set of arrays.
        """
        from repro.graph.kernel import CSRGraph

        token = self._snapshot_token()
        cached = self._csr_cache
        if cached is not None and cached[0] == token:
            return cached[1]
        snap = CSRGraph.from_graph(self)
        self._csr_cache = (token, snap)
        return snap

    def adopt_snapshot(self, csr: "CSRGraph") -> "CSRGraph":
        """Install an externally built or loaded snapshot as the cache entry.

        Used by :class:`repro.graph.snapshot_store.SnapshotStore` so that a
        snapshot loaded (mmap-backed) from disk serves subsequent
        ``snapshot()`` calls instead of being rebuilt.  The caller asserts
        that ``csr`` matches the graph's *current* logical structure; the
        entry is invalidated by the next structural mutation as usual.
        """
        self._csr_cache = (self._snapshot_token(), csr)
        return csr

    def cached_snapshot(self) -> "CSRGraph | None":
        """The current CSR snapshot if one is cached and still valid, else
        ``None`` — without triggering a (possibly expensive) build."""
        cached = self._csr_cache
        if cached is not None and cached[0] == self._snapshot_token():
            return cached[1]
        return None

    def _snapshot_token(self) -> Any:
        """Value that changes whenever the logical structure may have changed."""
        return self._graph_version

    def _bump_version(self) -> None:
        """Record a structural mutation (invalidates the snapshot cache)."""
        self._graph_version += 1

    # ------------------------------------------------------------------ #
    # derived conveniences (concrete)
    # ------------------------------------------------------------------ #
    def has_vertex(self, vertex: VertexId) -> bool:
        """True if ``vertex`` is present (default: linear scan; overridden)."""
        return any(v == vertex for v in self.get_vertices())

    def neighbors_list(self, vertex: VertexId) -> list[VertexId]:
        """``getNeighbors(v).toList`` from the paper."""
        return list(self.get_neighbors(vertex))

    def degree(self, vertex: VertexId) -> int:
        """Out-degree of ``vertex`` in the logical graph (duplicates removed)."""
        return sum(1 for _ in self.get_neighbors(vertex))

    def num_vertices(self) -> int:
        return sum(1 for _ in self.get_vertices())

    def num_edges(self) -> int:
        """Number of logical (expanded) directed edges.

        The default implementation iterates every vertex's neighbor list;
        representations override it when they can answer faster.
        """
        return sum(self.degree(v) for v in self.get_vertices())

    def vertices_list(self) -> list[VertexId]:
        return list(self.get_vertices())

    def edges(self) -> Iterator[tuple[VertexId, VertexId]]:
        """Iterate over all logical directed edges."""
        for vertex in self.get_vertices():
            for neighbor in self.get_neighbors(vertex):
                yield vertex, neighbor

    # ------------------------------------------------------------------ #
    def _missing_vertex(self, vertex: VertexId) -> RepresentationError:
        return RepresentationError(
            f"vertex {vertex!r} is not in this {self.representation_name} graph"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.representation_name} |V|={self.num_vertices()}>"


class PropertyStore:
    """Shared helper holding vertex property dictionaries.

    Kept separate from the adjacency structures so that every representation
    can reuse it without multiple inheritance gymnastics.
    """

    def __init__(self) -> None:
        self._properties: dict[VertexId, dict[str, Any]] = {}

    def get(self, vertex: VertexId, key: str, default: Any = None) -> Any:
        return self._properties.get(vertex, {}).get(key, default)

    def set(self, vertex: VertexId, key: str, value: Any) -> None:
        self._properties.setdefault(vertex, {})[key] = value

    def set_many(self, vertex: VertexId, properties: dict[str, Any]) -> None:
        if properties:
            self._properties.setdefault(vertex, {}).update(properties)

    def drop_vertex(self, vertex: VertexId) -> None:
        self._properties.pop(vertex, None)

    def all_for(self, vertex: VertexId) -> dict[str, Any]:
        return dict(self._properties.get(vertex, {}))


def check_same_vertex_set(a: Graph, b: Graph) -> bool:
    """True if two representations expose exactly the same vertex IDs."""
    return set(a.get_vertices()) == set(b.get_vertices())


def logical_edge_set(graph: Graph, vertices: Iterable[VertexId] | None = None) -> set[tuple[VertexId, VertexId]]:
    """The set of logical directed edges (optionally restricted to sources in
    ``vertices``).  Used by tests to compare representations for equivalence."""
    sources = graph.get_vertices() if vertices is None else vertices
    return {(u, v) for u in sources for v in graph.get_neighbors(u)}
