"""Shared behaviour of the representations backed by a condensed graph.

C-DUP, DEDUP-1 and BITMAP all wrap a :class:`~repro.graph.condensed.
CondensedGraph`; they differ only in how :meth:`get_neighbors` traverses the
virtual nodes.  Everything else — vertex management, properties, logical edge
addition/deletion — is identical and lives here.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.exceptions import RepresentationError
from repro.graph.api import Graph, VertexId
from repro.graph.condensed import CondensedGraph


class CondensedBackedGraph(Graph):
    """Base class for representations that keep the condensed structure."""

    def __init__(self, condensed: CondensedGraph) -> None:
        self._cg = condensed

    # ------------------------------------------------------------------ #
    @property
    def condensed(self) -> CondensedGraph:
        """The underlying condensed structure (shared, not copied)."""
        return self._cg

    # ------------------------------------------------------------------ #
    # vertex iteration / management
    # ------------------------------------------------------------------ #
    def get_vertices(self) -> Iterator[VertexId]:
        for node in self._cg.real_nodes():
            yield self._cg.external(node)

    def has_vertex(self, vertex: VertexId) -> bool:
        return self._cg.has_external(vertex)

    def num_vertices(self) -> int:
        return self._cg.num_real_nodes

    def add_vertex(self, vertex: VertexId, **properties: Any) -> None:
        self._cg.add_real_node(vertex, **properties)

    def delete_vertex(self, vertex: VertexId) -> None:
        if not self._cg.has_external(vertex):
            raise self._missing_vertex(vertex)
        self._cg.remove_real_node(self._cg.internal(vertex))

    # ------------------------------------------------------------------ #
    # neighbor iteration: subclasses implement the internal traversal
    # ------------------------------------------------------------------ #
    def _internal_neighbors(self, node: int) -> Iterator[int]:
        """Yield internal IDs of logical out-neighbors of internal node
        ``node`` with duplicates removed.  Subclasses override."""
        raise NotImplementedError

    def _internal_neighbors_list(self, node: int) -> list[int]:
        """Logical out-neighbors of ``node`` as a list of internal IDs.

        Semantically ``list(self._internal_neighbors(node))``; subclasses
        override it with non-generator traversals for the CSR snapshot fast
        path (one call per vertex, no per-edge generator resumption).
        """
        return list(self._internal_neighbors(node))

    # ------------------------------------------------------------------ #
    # bulk snapshot fast path: expand the virtual layer in internal space
    # ------------------------------------------------------------------ #
    def snapshot_edges(self) -> Iterator[tuple[VertexId, list[VertexId]]]:
        external = self._cg.external
        for node in self._cg.real_nodes():
            yield external(node), [
                external(t) for t in self._internal_neighbors_list(node)
            ]

    def _snapshot_token(self):
        # the wrapper's own version covers bitmap/auxiliary mutations; the
        # condensed version covers direct mutation of the shared structure
        return (self._graph_version, self._cg.version)

    def get_neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        if not self._cg.has_external(vertex):
            raise self._missing_vertex(vertex)
        node = self._cg.internal(vertex)
        for neighbor in self._internal_neighbors(node):
            yield self._cg.external(neighbor)

    def exists_edge(self, source: VertexId, target: VertexId) -> bool:
        if not self._cg.has_external(source) or not self._cg.has_external(target):
            return False
        src = self._cg.internal(source)
        dst = self._cg.internal(target)
        return any(neighbor == dst for neighbor in self._internal_neighbors(src))

    # ------------------------------------------------------------------ #
    # logical edge mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, source: VertexId, target: VertexId) -> None:
        """Add a logical edge as a direct real→real condensed edge.

        The edge is skipped when it already exists logically (adding it again
        would introduce duplication).
        """
        self.add_vertex(source)
        self.add_vertex(target)
        if self.exists_edge(source, target):
            return
        self._cg.add_edge(self._cg.internal(source), self._cg.internal(target))
        self._invalidate_cache()

    def delete_edge(self, source: VertexId, target: VertexId) -> None:
        """Remove a logical edge.

        If a direct real→real edge exists it is removed; otherwise every
        virtual path carrying the edge is *materialised*: the source's edge
        into the virtual node is dropped and direct edges to the remaining
        reachable targets are added.  This mirrors the paper's observation
        that ``deleteEdge`` on condensed representations is an involved
        operation.
        """
        if not self._cg.has_external(source) or not self._cg.has_external(target):
            raise RepresentationError(f"edge {source!r}->{target!r} does not exist")
        src = self._cg.internal(source)
        dst = self._cg.internal(target)
        if not self.exists_edge(source, target):
            raise RepresentationError(f"edge {source!r}->{target!r} does not exist")

        changed = False
        if self._cg.has_edge(src, dst):
            self._cg.remove_edge(src, dst)
            changed = True

        # remove the edge through every virtual node that still carries it
        for virtual in list(self._cg.out(src)):
            if not self._cg.is_virtual(virtual):
                continue
            reachable = self._virtual_reachable_real(virtual)
            if dst not in reachable:
                continue
            self._cg.remove_edge(src, virtual)
            existing = self._cg.neighbor_set(src)
            for other in reachable:
                if other != dst and other not in existing:
                    self._cg.add_edge(src, other)
                    existing.add(other)
            changed = True
        if changed:
            self._invalidate_cache()

    def _virtual_reachable_real(self, virtual: int) -> set[int]:
        """All real targets reachable from a virtual node (any depth)."""
        result: set[int] = set()
        stack = [virtual]
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for nxt in self._cg.out(current):
                if self._cg.is_real(nxt):
                    result.add(nxt)
                else:
                    stack.append(nxt)
        return result

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    def get_edge_property(
        self, source: VertexId, target: VertexId, key: str, default: Any = None
    ) -> Any:
        """Edge properties of direct real→real condensed edges (aggregate
        weights); edges carried by virtual nodes have no properties."""
        if not self._cg.has_external(source) or not self._cg.has_external(target):
            return default
        annotation = self._cg.edge_annotations.get(
            (self._cg.internal(source), self._cg.internal(target))
        )
        if annotation is None:
            return default
        return annotation.get(key, default)

    def get_property(self, vertex: VertexId, key: str, default: Any = None) -> Any:
        if not self._cg.has_external(vertex):
            raise self._missing_vertex(vertex)
        node = self._cg.internal(vertex)
        return self._cg.node_properties.get(node, {}).get(key, default)

    def set_property(self, vertex: VertexId, key: str, value: Any) -> None:
        if not self._cg.has_external(vertex):
            raise self._missing_vertex(vertex)
        node = self._cg.internal(vertex)
        self._cg.node_properties.setdefault(node, {})[key] = value

    # ------------------------------------------------------------------ #
    # bookkeeping hooks
    # ------------------------------------------------------------------ #
    def _invalidate_cache(self) -> None:
        """Called after structural mutation; subclasses with caches override."""

    # ------------------------------------------------------------------ #
    # statistics shared by all condensed-backed representations
    # ------------------------------------------------------------------ #
    def condensed_edge_count(self) -> int:
        return self._cg.num_condensed_edges

    def virtual_node_count(self) -> int:
        return self._cg.num_virtual_nodes

    def total_node_count(self) -> int:
        """Real plus virtual nodes (what Figure 10 plots as 'nodes')."""
        return self._cg.num_nodes
