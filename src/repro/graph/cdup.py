"""C-DUP — the condensed, duplicated representation.

This is exactly the structure that comes out of the extraction pipeline.  It
may contain multiple paths between the same pair of real nodes, so
:meth:`get_neighbors` performs *on-the-fly deduplication*: a depth-first
traversal through the virtual nodes that keeps a hash set of real targets
already produced and skips repeats (Section 4.3, "C-DUP").

It is the cheapest representation to build (no preprocessing) and usually the
smallest, but neighbor iteration pays a per-call hashing cost, and algorithms
touching the whole graph pay it for every vertex.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.condensed import CondensedGraph
from repro.graph.condensed_base import CondensedBackedGraph


class CDupGraph(CondensedBackedGraph):
    """Graph API over a (possibly duplicated) condensed graph."""

    representation_name = "C-DUP"

    def __init__(self, condensed: CondensedGraph) -> None:
        super().__init__(condensed)

    def _internal_neighbors(self, node: int) -> Iterator[int]:
        seen: set[int] = set()
        stack = list(self._cg.out(node))
        while stack:
            current = stack.pop()
            if CondensedGraph.is_real(current):
                if current not in seen:
                    seen.add(current)
                    yield current
            else:
                stack.extend(self._cg.out(current))

    def _internal_neighbors_list(self, node: int) -> list[int]:
        # snapshot fast path: same on-the-fly deduplicating walk, but as a
        # tight loop over the raw adjacency dict instead of a generator
        succ = self._cg.succ
        seen: set[int] = set()
        add = seen.add
        result: list[int] = []
        push = result.append
        stack = list(succ[node])
        extend = stack.extend
        while stack:
            current = stack.pop()
            if current >= 0:
                if current not in seen:
                    add(current)
                    push(current)
            else:
                extend(succ[current])
        return result

    # ------------------------------------------------------------------ #
    def duplication_ratio(self) -> float:
        """Average number of redundant paths per logical edge (0.0 = clean).

        Used by the benchmarks to characterise datasets.
        """
        logical = 0
        redundant = 0
        for node in self._cg.real_nodes():
            seen: set[int] = set()
            for target in self._cg.reachable_real_targets(node):
                if target in seen:
                    redundant += 1
                else:
                    seen.add(target)
            logical += len(seen)
        if logical == 0:
            return 0.0
        return redundant / logical

    def num_edges(self) -> int:
        return self._cg.expanded_edge_count()
