"""The condensed (C-DUP) graph data structure.

This is the physical structure Section 4.1 of the paper defines.  For an
output graph ``G(V, E)``, the condensed graph ``GC(V', E')`` contains

* one node per *real* node ``u`` (conceptually split into a source copy
  ``u_s`` and a target copy ``u_t``; physically stored once),
* any number of *virtual* nodes (one per distinct value of each large-output
  join attribute),
* directed edges real→virtual, virtual→virtual, virtual→real and (after
  deduplication or preprocessing) direct real→real edges,

such that ``u → v`` is an edge of the expanded graph iff there is a directed
path from ``u_s`` to ``v_t`` in ``GC``.  ``GC`` is always a DAG because the
extraction queries are acyclic.

Internal encoding
-----------------
Real nodes are mapped to dense non-negative integers (``0, 1, 2, ...``);
virtual nodes get negative integers (``-1, -2, ...``).  ``succ[n]`` holds the
out-adjacency of ``n``'s source side, ``pred[n]`` the in-adjacency of its
target side.  External (database) node IDs are preserved and exposed through
:meth:`external` / :meth:`internal`.
"""

from __future__ import annotations

from collections import deque
from itertools import groupby
from operator import itemgetter
from typing import Any, Hashable, Iterable, Iterator, Sequence

from repro.exceptions import RepresentationError


class CondensedGraph:
    """Condensed representation of an extracted graph (possibly duplicated)."""

    def __init__(self) -> None:
        #: structural version; bumped by every mutation so Graph wrappers can
        #: invalidate their cached CSR snapshots (repro.graph.kernel)
        self.version = 0
        # external id <-> internal non-negative index for real nodes
        self._internal_of: dict[Hashable, int] = {}
        self._external_of: dict[int, Hashable] = {}
        self._next_real = 0
        self._next_virtual = -1

        #: virtual node id -> optional (attribute, value) label
        self.virtual_labels: dict[int, tuple[str, Any] | None] = {}
        #: real node internal id -> property dict
        self.node_properties: dict[int, dict[str, Any]] = {}
        #: (source, target) internal real-node pair -> edge property dict
        #: (used by aggregate extraction queries, e.g. co-authorship counts)
        self.edge_annotations: dict[tuple[int, int], dict[str, Any]] = {}

        #: adjacency: out-edges of each node's source side
        self.succ: dict[int, list[int]] = {}
        #: adjacency: in-edges of each node's target side
        self.pred: dict[int, list[int]] = {}

    # ------------------------------------------------------------------ #
    # node management
    # ------------------------------------------------------------------ #
    def add_real_node(self, external_id: Hashable, **properties: Any) -> int:
        """Add (or fetch) the real node with the given external ID."""
        if external_id in self._internal_of:
            node = self._internal_of[external_id]
            if properties:
                self.node_properties.setdefault(node, {}).update(properties)
            return node
        node = self._next_real
        self._next_real += 1
        self.version += 1
        self._internal_of[external_id] = node
        self._external_of[node] = external_id
        self.succ[node] = []
        self.pred[node] = []
        if properties:
            self.node_properties[node] = dict(properties)
        return node

    def add_virtual_node(self, label: tuple[str, Any] | None = None) -> int:
        """Add a fresh virtual node; returns its (negative) internal ID."""
        node = self._next_virtual
        self._next_virtual -= 1
        self.version += 1
        self.virtual_labels[node] = label
        self.succ[node] = []
        self.pred[node] = []
        return node

    def bulk_add_real_nodes(self, external_ids: Iterable[Hashable]) -> int:
        """Add many real nodes at once (add-or-fetch); returns the number of
        nodes actually created."""
        created = 0
        for external_id in external_ids:
            if external_id in self._internal_of:
                continue
            node = self._next_real
            self._next_real += 1
            self._internal_of[external_id] = node
            self._external_of[node] = external_id
            self.succ[node] = []
            self.pred[node] = []
            created += 1
        if created:
            self.version += 1
        return created

    def bulk_add_virtual_nodes(self, labels: Sequence[tuple[str, Any] | None]) -> int:
        """Allocate one virtual node per label, in order.

        Returns the internal ID of the first allocated node; the node for
        ``labels[r]`` is ``first - r`` (virtual IDs decrease), which lets a
        bulk edge loader compute virtual endpoints with integer arithmetic.
        """
        first = self._next_virtual
        virtual_labels = self.virtual_labels
        succ, pred = self.succ, self.pred
        for label in labels:
            node = self._next_virtual
            self._next_virtual -= 1
            virtual_labels[node] = label
            succ[node] = []
            pred[node] = []
        if labels:
            self.version += 1
        return first

    def bulk_add_edges(
        self,
        edges_by_source: Sequence[tuple[int, int]],
        edges_by_target: Sequence[tuple[int, int]] | None = None,
        allow_duplicate: bool = True,
    ) -> int:
        """Bulk-load condensed edges from pre-sorted arrays.

        ``edges_by_source`` holds ``(source, target)`` internal-ID pairs
        grouped by source (e.g. the result of an ``ORDER BY source, target``
        SQL query); ``edges_by_target`` is the same edge multiset grouped by
        target (derived by sorting when omitted).  Each adjacency list is then
        built with one ``extend`` per node instead of per-edge dict lookups —
        the arrays arrive exactly in the layout ``snapshot_edges()``'s CSR
        construction wants.

        ``allow_duplicate=False`` falls back to the per-edge checked path
        (needed only for direct real→real edges that may repeat across
        rules).  Returns the number of edges added.
        """
        if not allow_duplicate:
            added = 0
            for source, target in edges_by_source:
                if self.add_edge(source, target, allow_duplicate=False):
                    added += 1
            return added

        succ, pred = self.succ, self.pred
        count = 0
        for source, group in groupby(edges_by_source, key=itemgetter(0)):
            if source not in succ:
                raise RepresentationError(f"cannot add edges from unknown node {source}")
            targets = [t for _, t in group]
            succ[source].extend(targets)
            count += len(targets)
        if edges_by_target is None:
            edges_by_target = sorted(edges_by_source, key=itemgetter(1, 0))
        target_count = 0
        for target, group in groupby(edges_by_target, key=itemgetter(1)):
            if target not in pred:
                raise RepresentationError(f"cannot add edges into unknown node {target}")
            sources = [s for s, _ in group]
            pred[target].extend(sources)
            target_count += len(sources)
        if target_count != count:  # pragma: no cover - defensive
            raise RepresentationError(
                f"bulk edge arrays disagree: {count} by source, {target_count} by target"
            )
        if count:
            self.version += 1
        return count

    @classmethod
    def from_arrays(
        cls,
        real_ids: Sequence[Hashable],
        virtual_labels: Sequence[tuple[str, Any] | None] = (),
        edges_by_source: Sequence[tuple[int, int]] = (),
        edges_by_target: Sequence[tuple[int, int]] | None = None,
    ) -> "CondensedGraph":
        """Build a condensed graph directly from arrays.

        ``real_ids[i]`` becomes internal node ``i``; ``virtual_labels[r]``
        becomes internal node ``-(r + 1)``; edges are internal-ID pairs sorted
        by source (and, optionally, the same pairs sorted by target).  This is
        the bulk-construction entry point the SQL pushdown engine uses.
        """
        graph = cls()
        graph.bulk_add_real_nodes(real_ids)
        graph.bulk_add_virtual_nodes(virtual_labels)
        graph.bulk_add_edges(edges_by_source, edges_by_target)
        return graph

    def remove_virtual_node(self, virtual: int) -> None:
        """Remove a virtual node and all its incident edges."""
        if not self.is_virtual(virtual):
            raise RepresentationError(f"{virtual} is not a virtual node")
        self.version += 1
        for target in list(self.succ.get(virtual, [])):
            self.pred[target].remove(virtual)
        for source in list(self.pred.get(virtual, [])):
            self.succ[source].remove(virtual)
        self.succ.pop(virtual, None)
        self.pred.pop(virtual, None)
        self.virtual_labels.pop(virtual, None)

    def remove_real_node(self, node: int) -> None:
        """Remove a real node and all edges incident to either of its copies."""
        if self.is_virtual(node) or node not in self._external_of:
            raise RepresentationError(f"{node} is not a real node of this graph")
        self.version += 1
        for target in list(self.succ.get(node, [])):
            self.pred[target].remove(node)
        for source in list(self.pred.get(node, [])):
            self.succ[source].remove(node)
        external = self._external_of.pop(node)
        self._internal_of.pop(external, None)
        self.succ.pop(node, None)
        self.pred.pop(node, None)
        self.node_properties.pop(node, None)

    # ------------------------------------------------------------------ #
    # identity helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def is_virtual(node: int) -> bool:
        return node < 0

    @staticmethod
    def is_real(node: int) -> bool:
        return node >= 0

    def has_external(self, external_id: Hashable) -> bool:
        return external_id in self._internal_of

    def internal(self, external_id: Hashable) -> int:
        try:
            return self._internal_of[external_id]
        except KeyError:
            raise RepresentationError(f"unknown real node {external_id!r}") from None

    def external(self, node: int) -> Hashable:
        try:
            return self._external_of[node]
        except KeyError:
            raise RepresentationError(f"unknown internal real node {node}") from None

    # ------------------------------------------------------------------ #
    # edge management
    # ------------------------------------------------------------------ #
    def add_edge(self, source: int, target: int, allow_duplicate: bool = True) -> bool:
        """Add a condensed edge ``source -> target``.

        Returns False (and does nothing) when ``allow_duplicate`` is False and
        the edge is already present.
        """
        if source not in self.succ or target not in self.pred:
            raise RepresentationError(f"cannot add edge {source}->{target}: unknown endpoint")
        if not allow_duplicate and target in self.succ[source]:
            return False
        self.succ[source].append(target)
        self.pred[target].append(source)
        self.version += 1
        return True

    def remove_edge(self, source: int, target: int) -> None:
        try:
            self.succ[source].remove(target)
            self.pred[target].remove(source)
            self.version += 1
        except (KeyError, ValueError):
            raise RepresentationError(
                f"edge {source}->{target} is not in the condensed graph"
            ) from None

    def has_edge(self, source: int, target: int) -> bool:
        return target in self.succ.get(source, ())

    # ------------------------------------------------------------------ #
    # edge annotations (properties of direct real->real edges)
    # ------------------------------------------------------------------ #
    def annotate_edge(self, source: int, target: int, **properties: Any) -> None:
        """Attach properties to the direct edge ``source -> target``.

        Only direct real→real edges can carry annotations (they are produced
        by Case-2 / aggregate extraction, which never goes through virtual
        nodes).
        """
        if not (self.is_real(source) and self.is_real(target)):
            raise RepresentationError("only direct real->real edges can be annotated")
        if not self.has_edge(source, target):
            raise RepresentationError(
                f"cannot annotate missing edge {source}->{target}"
            )
        if properties:
            self.edge_annotations.setdefault((source, target), {}).update(properties)

    def edge_annotation(self, source: int, target: int) -> dict[str, Any]:
        """Properties attached to the direct edge ``source -> target`` (may be empty)."""
        return dict(self.edge_annotations.get((source, target), {}))

    def out(self, node: int) -> list[int]:
        """Out-adjacency of ``node`` (source side for real nodes)."""
        return self.succ.get(node, [])

    def inn(self, node: int) -> list[int]:
        """In-adjacency of ``node`` (target side for real nodes)."""
        return self.pred.get(node, [])

    # ------------------------------------------------------------------ #
    # iteration / counts
    # ------------------------------------------------------------------ #
    def real_nodes(self) -> Iterator[int]:
        return iter(self._external_of)

    def virtual_nodes(self) -> Iterator[int]:
        return iter(self.virtual_labels)

    def external_ids(self) -> Iterator[Hashable]:
        return iter(self._internal_of)

    @property
    def num_real_nodes(self) -> int:
        return len(self._external_of)

    @property
    def num_virtual_nodes(self) -> int:
        return len(self.virtual_labels)

    @property
    def num_nodes(self) -> int:
        return self.num_real_nodes + self.num_virtual_nodes

    @property
    def num_condensed_edges(self) -> int:
        """Number of physical edges stored in the condensed structure."""
        return sum(len(targets) for targets in self.succ.values())

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #
    def is_single_layer(self) -> bool:
        """True if no virtual node points to another virtual node."""
        for virtual in self.virtual_nodes():
            if any(self.is_virtual(t) for t in self.succ[virtual]):
                return False
        return True

    def num_layers(self) -> int:
        """Number of virtual-node layers (longest virtual chain on any path).

        0 for a graph with no virtual nodes, 1 for single-layer graphs, etc.
        """
        memo: dict[int, int] = {}

        def depth(virtual: int) -> int:
            if virtual in memo:
                return memo[virtual]
            best = 1
            for target in self.succ[virtual]:
                if self.is_virtual(target):
                    best = max(best, 1 + depth(target))
            memo[virtual] = best
            return best

        layers = 0
        for virtual in self.virtual_nodes():
            layers = max(layers, depth(virtual))
        return layers

    def is_acyclic(self) -> bool:
        """The condensed graph must always be a DAG; verify it (for tests)."""
        state: dict[int, int] = {}  # 0 = visiting, 1 = done

        def visit(node: int) -> bool:
            state[node] = 0
            for target in self.succ.get(node, ()):  # real targets never expand further
                if self.is_real(target):
                    continue
                mark = state.get(target)
                if mark == 0:
                    return False
                if mark is None and not visit(target):
                    return False
            state[node] = 1
            return True

        for virtual in self.virtual_nodes():
            if virtual not in state and not visit(virtual):
                return False
        return True

    def virtual_in_real(self, virtual: int) -> list[int]:
        """I(V): real nodes with an edge into ``virtual``."""
        return [n for n in self.pred[virtual] if self.is_real(n)]

    def virtual_out_real(self, virtual: int) -> list[int]:
        """O(V): real nodes ``virtual`` points to."""
        return [n for n in self.succ[virtual] if self.is_real(n)]

    # ------------------------------------------------------------------ #
    # traversal (the heart of every condensed representation)
    # ------------------------------------------------------------------ #
    def reachable_real_targets(self, node: int) -> Iterator[int]:
        """All real targets reachable from real node ``node``'s source copy,
        *with duplicates* (one occurrence per distinct path).

        Direct real→real edges contribute one occurrence each.
        """
        stack = list(self.succ.get(node, ()))
        while stack:
            current = stack.pop()
            if self.is_real(current):
                yield current
            else:
                stack.extend(self.succ[current])

    def neighbor_set(self, node: int) -> set[int]:
        """De-duplicated logical out-neighbors of real node ``node``."""
        return set(self.reachable_real_targets(node))

    def duplication_count(self, node: int) -> int:
        """Number of redundant paths out of ``node`` (0 means no duplication)."""
        total = 0
        seen: set[int] = set()
        for target in self.reachable_real_targets(node):
            if target in seen:
                total += 1
            else:
                seen.add(target)
        return total

    def has_duplication(self) -> bool:
        """True if any real node can reach some target by more than one path."""
        return any(self.duplication_count(n) > 0 for n in self.real_nodes())

    def is_symmetric(self) -> bool:
        """True if the *expanded* graph is symmetric (u→v iff v→u)."""
        edges: set[tuple[int, int]] = set()
        for node in self.real_nodes():
            for target in self.neighbor_set(node):
                edges.add((node, target))
        return all((v, u) in edges for (u, v) in edges)

    def expanded_edge_count(self) -> int:
        """Number of edges of the expanded graph (computed by deduplicated
        traversal — the "free side effect" the paper mentions)."""
        return sum(len(self.neighbor_set(n)) for n in self.real_nodes())

    def expanded_edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Iterate over the expanded graph's edges as external-ID pairs."""
        for node in self.real_nodes():
            source = self.external(node)
            for target in self.neighbor_set(node):
                yield source, self.external(target)

    # ------------------------------------------------------------------ #
    # copying
    # ------------------------------------------------------------------ #
    def copy(self) -> "CondensedGraph":
        clone = CondensedGraph()
        clone._internal_of = dict(self._internal_of)
        clone._external_of = dict(self._external_of)
        clone._next_real = self._next_real
        clone._next_virtual = self._next_virtual
        clone.virtual_labels = dict(self.virtual_labels)
        clone.node_properties = {n: dict(p) for n, p in self.node_properties.items()}
        clone.edge_annotations = {e: dict(p) for e, p in self.edge_annotations.items()}
        clone.succ = {n: list(t) for n, t in self.succ.items()}
        clone.pred = {n: list(t) for n, t in self.pred.items()}
        return clone

    # ------------------------------------------------------------------ #
    # breadth-first helper used by multi-layer algorithms
    # ------------------------------------------------------------------ #
    def virtual_nodes_reachable(self, node: int) -> Iterator[int]:
        """All virtual nodes reachable from ``node``'s source copy (BFS)."""
        seen: set[int] = set()
        queue: deque[int] = deque(v for v in self.succ.get(node, ()) if self.is_virtual(v))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            yield current
            for target in self.succ[current]:
                if self.is_virtual(target) and target not in seen:
                    queue.append(target)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CondensedGraph(real={self.num_real_nodes}, virtual={self.num_virtual_nodes}, "
            f"edges={self.num_condensed_edges})"
        )


def condensed_from_edges(
    real_ids: Iterable[Hashable],
    virtual_memberships: Iterable[tuple[Any, Iterable[Hashable], Iterable[Hashable]]],
    direct_edges: Iterable[tuple[Hashable, Hashable]] = (),
) -> CondensedGraph:
    """Build a condensed graph from a compact description.

    Parameters
    ----------
    real_ids:
        The external IDs of all real nodes.
    virtual_memberships:
        Triples ``(label, in_ids, out_ids)``; a virtual node is created per
        triple with edges ``u -> V`` for every ``u`` in ``in_ids`` and
        ``V -> w`` for every ``w`` in ``out_ids``.
    direct_edges:
        Direct real→real edges.

    Primarily a convenience for tests and the synthetic generators.
    """
    graph = CondensedGraph()
    for rid in real_ids:
        graph.add_real_node(rid)
    for label, in_ids, out_ids in virtual_memberships:
        virtual = graph.add_virtual_node(("synthetic", label))
        for u in in_ids:
            graph.add_edge(graph.internal(u), virtual)
        for w in out_ids:
            graph.add_edge(virtual, graph.internal(w))
    for u, w in direct_edges:
        graph.add_edge(graph.internal(u), graph.internal(w))
    return graph
