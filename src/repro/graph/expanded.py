"""EXP — the fully expanded in-memory representation.

All direct real→real edges are materialised in adjacency lists (the paper's
CSR-variant with Java ``ArrayList``s).  This is the fastest representation to
iterate but by far the largest; it is the baseline every other representation
is compared against.

Vertex deletion uses the paper's *lazy deletion* scheme: a deleted vertex is
first removed only from the vertex index (logically deleted); the physical
adjacency lists are compacted in batch once enough deletions have accumulated,
so the vertex index is rebuilt only once per batch.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.exceptions import RepresentationError
from repro.graph.api import Graph, PropertyStore, VertexId


class ExpandedGraph(Graph):
    """Adjacency-list directed graph with lazy vertex deletion."""

    representation_name = "EXP"

    def __init__(self, lazy_deletion_batch: int = 1024) -> None:
        self._out: dict[VertexId, list[VertexId]] = {}
        self._in: dict[VertexId, list[VertexId]] = {}
        self._deleted: set[VertexId] = set()
        self._properties = PropertyStore()
        self._edge_properties: dict[tuple[VertexId, VertexId], dict[str, Any]] = {}
        self._lazy_deletion_batch = max(1, lazy_deletion_batch)
        self._edge_count = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[VertexId, VertexId]],
        vertices: Iterable[VertexId] = (),
        deduplicate: bool = True,
    ) -> "ExpandedGraph":
        """Build a graph from an edge iterable (and optional isolated vertices)."""
        graph = cls()
        for vertex in vertices:
            graph.add_vertex(vertex)
        if deduplicate:
            seen: set[tuple[VertexId, VertexId]] = set()
            for u, v in edges:
                if (u, v) not in seen:
                    seen.add((u, v))
                    graph.add_edge(u, v)
        else:
            for u, v in edges:
                graph.add_vertex(u)
                graph.add_vertex(v)
                graph._append_edge(u, v)
        return graph

    # ------------------------------------------------------------------ #
    # bulk snapshot fast path: flatten the adjacency dict directly
    # ------------------------------------------------------------------ #
    def snapshot_edges(self) -> Iterator[tuple[VertexId, list[VertexId]]]:
        deleted = self._deleted
        if not deleted:
            for vertex, neighbors in self._out.items():
                yield vertex, list(neighbors)
            return
        for vertex, neighbors in self._out.items():
            if vertex not in deleted:
                yield vertex, [n for n in neighbors if n not in deleted]

    # ------------------------------------------------------------------ #
    # Graph API
    # ------------------------------------------------------------------ #
    def get_vertices(self) -> Iterator[VertexId]:
        for vertex in self._out:
            if vertex not in self._deleted:
                yield vertex

    def get_neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        self._check_vertex(vertex)
        for neighbor in self._out[vertex]:
            if neighbor not in self._deleted:
                yield neighbor

    def get_in_neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        self._check_vertex(vertex)
        for neighbor in self._in[vertex]:
            if neighbor not in self._deleted:
                yield neighbor

    def exists_edge(self, source: VertexId, target: VertexId) -> bool:
        if source in self._deleted or target in self._deleted:
            return False
        return source in self._out and target in self._out[source]

    def add_vertex(self, vertex: VertexId, **properties: Any) -> None:
        if vertex in self._deleted:
            # re-adding a lazily deleted vertex resurrects it empty
            self._purge_vertex(vertex)
        if vertex not in self._out:
            self._out[vertex] = []
            self._in[vertex] = []
            self._bump_version()
        self._properties.set_many(vertex, properties)

    def delete_vertex(self, vertex: VertexId) -> None:
        self._check_vertex(vertex)
        self._deleted.add(vertex)
        self._properties.drop_vertex(vertex)
        self._bump_version()
        if len(self._deleted) >= self._lazy_deletion_batch:
            self.compact()

    def add_edge(self, source: VertexId, target: VertexId) -> None:
        self.add_vertex(source)
        self.add_vertex(target)
        if target in self._out[source]:
            # duplicate logical edge: a no-op, and crucially *not* a version
            # bump — re-adding an existing edge must not stale the snapshot
            return
        self._append_edge(source, target)

    def _append_edge(self, source: VertexId, target: VertexId) -> None:
        """Raw adjacency append (no duplicate check) — the multigraph path
        used by ``from_edges(deduplicate=False)`` and the dedup expander."""
        self._out[source].append(target)
        self._in[target].append(source)
        self._edge_count += 1
        self._bump_version()

    def delete_edge(self, source: VertexId, target: VertexId) -> None:
        self._check_vertex(source)
        self._check_vertex(target)
        try:
            self._out[source].remove(target)
            self._in[target].remove(source)
        except ValueError:
            raise RepresentationError(f"edge {source!r}->{target!r} does not exist") from None
        self._edge_properties.pop((source, target), None)
        self._edge_count -= 1
        self._bump_version()

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    def get_property(self, vertex: VertexId, key: str, default: Any = None) -> Any:
        self._check_vertex(vertex)
        return self._properties.get(vertex, key, default)

    def set_property(self, vertex: VertexId, key: str, value: Any) -> None:
        self._check_vertex(vertex)
        self._properties.set(vertex, key, value)

    def set_edge_property(self, source: VertexId, target: VertexId, key: str, value: Any) -> None:
        """Attach a property to an existing edge (e.g. an aggregate weight)."""
        if not self.exists_edge(source, target):
            raise RepresentationError(f"edge {source!r}->{target!r} does not exist")
        self._edge_properties.setdefault((source, target), {})[key] = value

    def get_edge_property(
        self, source: VertexId, target: VertexId, key: str, default: Any = None
    ) -> Any:
        return self._edge_properties.get((source, target), {}).get(key, default)

    def edge_properties(self, source: VertexId, target: VertexId) -> dict[str, Any]:
        """All properties of the edge ``source -> target`` (may be empty)."""
        return dict(self._edge_properties.get((source, target), {}))

    # ------------------------------------------------------------------ #
    # performance overrides
    # ------------------------------------------------------------------ #
    def has_vertex(self, vertex: VertexId) -> bool:
        return vertex in self._out and vertex not in self._deleted

    def num_vertices(self) -> int:
        return len(self._out) - len(self._deleted)

    def num_edges(self) -> int:
        if not self._deleted:
            return self._edge_count
        return sum(self.degree(v) for v in self.get_vertices())

    def degree(self, vertex: VertexId) -> int:
        self._check_vertex(vertex)
        if not self._deleted:
            return len(self._out[vertex])
        return sum(1 for _ in self.get_neighbors(vertex))

    def in_degree(self, vertex: VertexId) -> int:
        self._check_vertex(vertex)
        if not self._deleted:
            return len(self._in[vertex])
        return sum(1 for _ in self.get_in_neighbors(vertex))

    # ------------------------------------------------------------------ #
    # lazy deletion machinery
    # ------------------------------------------------------------------ #
    @property
    def pending_deletions(self) -> int:
        """Number of logically deleted vertices awaiting physical removal."""
        return len(self._deleted)

    def compact(self) -> None:
        """Physically remove all lazily deleted vertices (batch rebuild)."""
        if not self._deleted:
            return
        for vertex in list(self._deleted):
            self._purge_vertex(vertex)
        self._deleted.clear()

    def _purge_vertex(self, vertex: VertexId) -> None:
        for neighbor in self._out.pop(vertex, ()):  # forward edges
            if neighbor in self._in and vertex in self._in[neighbor]:
                self._in[neighbor] = [n for n in self._in[neighbor] if n != vertex]
        for neighbor in self._in.pop(vertex, ()):  # backward edges
            if neighbor in self._out and vertex in self._out[neighbor]:
                self._out[neighbor] = [n for n in self._out[neighbor] if n != vertex]
        self._deleted.discard(vertex)
        self._edge_properties = {
            edge: props
            for edge, props in self._edge_properties.items()
            if vertex not in edge
        }
        self._edge_count = sum(len(v) for v in self._out.values())

    # ------------------------------------------------------------------ #
    def _check_vertex(self, vertex: VertexId) -> None:
        if vertex not in self._out or vertex in self._deleted:
            raise self._missing_vertex(vertex)
