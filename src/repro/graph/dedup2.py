"""DEDUP-2 — optimisation for single-layer *symmetric* condensed graphs.

For symmetric graphs (``u → v`` iff ``v → u``) where every virtual node ``V``
satisfies ``I(V) = O(V)``, the source/target distinction is redundant: DEDUP-2
stores undirected *membership* edges between real nodes and virtual nodes and
undirected edges *between virtual nodes*.  A real node ``u`` is considered
connected to

* every member of each virtual node ``V`` it belongs to, and
* every member of each virtual node ``W`` directly adjacent to such a ``V``
  (one hop only),

and the representation is required to be duplicate-free: at most one such
path may exist between any pair of *distinct* real nodes (Section 4.3,
"DEDUP-2" and Appendix B).

Self-loops are not representable: a vertex is never reported as its own
neighbor, matching the paper's treatment of DEDUP-2 (two virtual nodes are
allowed to share one member, which would otherwise always duplicate the
member's self-edge).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.exceptions import RepresentationError
from repro.graph.api import Graph, PropertyStore, VertexId


class Dedup2Graph(Graph):
    """Membership + virtual-adjacency representation for symmetric graphs."""

    representation_name = "DEDUP-2"

    def __init__(self) -> None:
        #: virtual node id -> ordered list of member real vertices
        self._members: dict[int, list[VertexId]] = {}
        #: real vertex -> list of virtual node ids it belongs to
        self._vertex_virtuals: dict[VertexId, list[int]] = {}
        #: undirected adjacency between virtual nodes
        self._virtual_adj: dict[int, set[int]] = {}
        self._properties = PropertyStore()
        self._next_virtual = 0

    # ------------------------------------------------------------------ #
    # construction (used by the DEDUP-2 greedy algorithm and tests)
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: VertexId, **properties: Any) -> None:
        if vertex not in self._vertex_virtuals:
            self._vertex_virtuals[vertex] = []
            self._bump_version()
        self._properties.set_many(vertex, properties)

    def new_virtual_node(self, members: list[VertexId] | None = None) -> int:
        """Create a virtual node (optionally with initial members); return its id."""
        virtual = self._next_virtual
        self._next_virtual += 1
        self._bump_version()
        self._members[virtual] = []
        self._virtual_adj[virtual] = set()
        for member in members or []:
            self.add_member(virtual, member)
        return virtual

    def add_member(self, virtual: int, vertex: VertexId) -> None:
        self._check_virtual(virtual)
        self.add_vertex(vertex)
        if vertex not in self._members[virtual]:
            self._members[virtual].append(vertex)
            self._vertex_virtuals[vertex].append(virtual)
            self._bump_version()

    def remove_member(self, virtual: int, vertex: VertexId) -> None:
        self._check_virtual(virtual)
        if vertex in self._members[virtual]:
            self._members[virtual].remove(vertex)
            self._vertex_virtuals[vertex].remove(virtual)
            self._bump_version()

    def connect_virtual(self, first: int, second: int) -> None:
        """Add an undirected edge between two virtual nodes."""
        self._check_virtual(first)
        self._check_virtual(second)
        if first == second:
            raise RepresentationError("cannot connect a virtual node to itself")
        self._virtual_adj[first].add(second)
        self._virtual_adj[second].add(first)
        self._bump_version()

    def disconnect_virtual(self, first: int, second: int) -> None:
        self._virtual_adj.get(first, set()).discard(second)
        self._virtual_adj.get(second, set()).discard(first)
        self._bump_version()

    def remove_virtual_node(self, virtual: int) -> None:
        self._check_virtual(virtual)
        for member in list(self._members[virtual]):
            self.remove_member(virtual, member)
        for other in list(self._virtual_adj[virtual]):
            self.disconnect_virtual(virtual, other)
        del self._members[virtual]
        del self._virtual_adj[virtual]
        self._bump_version()

    # ------------------------------------------------------------------ #
    # inspection helpers
    # ------------------------------------------------------------------ #
    def members(self, virtual: int) -> list[VertexId]:
        self._check_virtual(virtual)
        return list(self._members[virtual])

    def virtuals_of(self, vertex: VertexId) -> list[int]:
        return list(self._vertex_virtuals.get(vertex, []))

    def virtual_neighbors(self, virtual: int) -> set[int]:
        self._check_virtual(virtual)
        return set(self._virtual_adj[virtual])

    def virtual_nodes(self) -> Iterator[int]:
        return iter(self._members)

    @property
    def num_virtual_nodes(self) -> int:
        return len(self._members)

    def num_structure_edges(self) -> int:
        """Physical edge count: membership edges plus virtual-virtual edges
        (what Figure 10 reports for DEDUP-2)."""
        membership = sum(len(m) for m in self._members.values())
        virtual_virtual = sum(len(adj) for adj in self._virtual_adj.values()) // 2
        return membership + virtual_virtual

    # ------------------------------------------------------------------ #
    # Graph API
    # ------------------------------------------------------------------ #
    def get_vertices(self) -> Iterator[VertexId]:
        return iter(self._vertex_virtuals)

    def has_vertex(self, vertex: VertexId) -> bool:
        return vertex in self._vertex_virtuals

    def num_vertices(self) -> int:
        return len(self._vertex_virtuals)

    def get_neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        if vertex not in self._vertex_virtuals:
            raise self._missing_vertex(vertex)
        seen: set[VertexId] = set()
        for virtual in self._vertex_virtuals[vertex]:
            for member in self._members[virtual]:
                if member != vertex and member not in seen:
                    seen.add(member)
                    yield member
            for adjacent in self._virtual_adj[virtual]:
                for member in self._members[adjacent]:
                    if member != vertex and member not in seen:
                        seen.add(member)
                        yield member

    def exists_edge(self, source: VertexId, target: VertexId) -> bool:
        if source not in self._vertex_virtuals or target not in self._vertex_virtuals:
            return False
        if source == target:
            return False
        for virtual in self._vertex_virtuals[source]:
            if target in self._members[virtual]:
                return True
            for adjacent in self._virtual_adj[virtual]:
                if target in self._members[adjacent]:
                    return True
        return False

    def add_edge(self, source: VertexId, target: VertexId) -> None:
        """Add a (symmetric) logical edge by creating a two-member virtual node.

        DEDUP-2 only represents symmetric graphs, so adding ``u -> v`` also
        adds ``v -> u``.
        """
        self.add_vertex(source)
        self.add_vertex(target)
        if source == target:
            # DEDUP-2 cannot represent self-loops (exists_edge(u, u) is
            # always False); adding one is a no-op rather than leaving a
            # junk single-member virtual node behind
            return
        if self.exists_edge(source, target):
            return
        self.new_virtual_node([source, target])

    def delete_edge(self, source: VertexId, target: VertexId) -> None:
        raise RepresentationError(
            "deleteEdge is not supported on the DEDUP-2 representation; "
            "use DEDUP-1, BITMAP or EXP for edge-mutation workloads"
        )

    def delete_vertex(self, vertex: VertexId) -> None:
        if vertex not in self._vertex_virtuals:
            raise self._missing_vertex(vertex)
        for virtual in list(self._vertex_virtuals[vertex]):
            self.remove_member(virtual, vertex)
        del self._vertex_virtuals[vertex]
        self._properties.drop_vertex(vertex)
        self._bump_version()

    # ------------------------------------------------------------------ #
    def get_property(self, vertex: VertexId, key: str, default: Any = None) -> Any:
        if vertex not in self._vertex_virtuals:
            raise self._missing_vertex(vertex)
        return self._properties.get(vertex, key, default)

    def set_property(self, vertex: VertexId, key: str, value: Any) -> None:
        if vertex not in self._vertex_virtuals:
            raise self._missing_vertex(vertex)
        self._properties.set(vertex, key, value)

    # ------------------------------------------------------------------ #
    # invariant checking
    # ------------------------------------------------------------------ #
    def duplicate_paths(self, vertex: VertexId) -> int:
        """Number of redundant paths from ``vertex`` to its neighbors
        (0 means the DEDUP-2 invariants hold for this vertex)."""
        occurrences: dict[VertexId, int] = {}
        for virtual in self._vertex_virtuals[vertex]:
            for member in self._members[virtual]:
                if member != vertex:
                    occurrences[member] = occurrences.get(member, 0) + 1
            for adjacent in self._virtual_adj[virtual]:
                for member in self._members[adjacent]:
                    if member != vertex:
                        occurrences[member] = occurrences.get(member, 0) + 1
        return sum(count - 1 for count in occurrences.values() if count > 1)

    def is_duplicate_free(self) -> bool:
        return all(self.duplicate_paths(v) == 0 for v in self.get_vertices())

    def _check_virtual(self, virtual: int) -> None:
        if virtual not in self._members:
            raise RepresentationError(f"unknown DEDUP-2 virtual node {virtual}")
