"""In-memory graph representations.

* :class:`CondensedGraph` — the raw condensed structure (real + virtual nodes).
* :class:`ExpandedGraph` (EXP) — fully materialised adjacency lists.
* :class:`CDupGraph` (C-DUP) — condensed with on-the-fly deduplication.
* :class:`Dedup1Graph` (DEDUP-1) — condensed, duplication removed structurally.
* :class:`Dedup2Graph` (DEDUP-2) — membership representation for symmetric
  single-layer graphs.
* :class:`BitmapGraph` (BITMAP) — condensed plus traversal bitmaps.
"""

from repro.graph.api import Graph, PropertyStore, VertexId, logical_edge_set, check_same_vertex_set
from repro.graph.backend import get_backend, set_default_backend
from repro.graph.kernel import CSRGraph
from repro.graph.snapshot_store import SnapshotHeader, SnapshotStore, load_snapshot, save_snapshot
from repro.graph.condensed import CondensedGraph, condensed_from_edges
from repro.graph.condensed_base import CondensedBackedGraph
from repro.graph.expanded import ExpandedGraph
from repro.graph.cdup import CDupGraph
from repro.graph.dedup1 import Dedup1Graph
from repro.graph.dedup2 import Dedup2Graph
from repro.graph.bitmap import BitmapGraph
from repro.graph.analysis import (
    RepresentationStats,
    condensed_from_expanded,
    degree_histogram,
    duplication_profile,
    expanded_from_condensed,
    logically_equivalent,
    representation_stats,
)

__all__ = [
    "Graph",
    "PropertyStore",
    "VertexId",
    "logical_edge_set",
    "check_same_vertex_set",
    "CSRGraph",
    "get_backend",
    "set_default_backend",
    "SnapshotHeader",
    "SnapshotStore",
    "load_snapshot",
    "save_snapshot",
    "CondensedGraph",
    "condensed_from_edges",
    "CondensedBackedGraph",
    "ExpandedGraph",
    "CDupGraph",
    "Dedup1Graph",
    "Dedup2Graph",
    "BitmapGraph",
    "RepresentationStats",
    "condensed_from_expanded",
    "degree_histogram",
    "duplication_profile",
    "expanded_from_condensed",
    "logically_equivalent",
    "representation_stats",
]
