"""Pluggable kernel backends for the CSR execution layer.

The paper's thesis is that analytics speed is decided by the in-memory
representation the extracted graph runs on.  PR 1 froze that representation
into flat ``array('q')`` CSR snapshots and PR 2 made them mmap-able files;
this package makes the *execution strategy over those arrays* pluggable:

* :class:`PythonBackend` (``"python"``) — the reference backend.  Pure-Python
  loop kernels, unchanged from the pre-backend algorithm modules, and
  therefore bit-for-bit identical to them.  It is the determinism anchor:
  every other backend is validated against it.
* ``NumpyBackend`` (``"numpy"``) — vectorised kernels over zero-copy
  ``np.int64`` views of the snapshot arrays (``np.frombuffer`` over the
  ``array('q')`` buffers, or over the ``"q"``-cast memoryviews of an
  mmap-loaded snapshot file — no copies either way).  Available only when
  NumPy is importable; see :mod:`repro.graph.backend.numpy_backend`.

Tolerance contract
------------------
Integer-valued kernels (degrees, BFS, components, k-core, triangles, label
propagation, discrete similarity scores) must return results **exactly
equal** to the reference backend.  Float-valued kernels (PageRank,
closeness, betweenness, Adamic–Adar, clustering) may differ from the
reference by at most ``1e-9`` L-infinity: vectorised reductions re-associate
floating-point sums, which perturbs low-order bits only.

Selection
---------
:func:`get_backend` resolves, in order:

1. an explicit ``name`` argument,
2. the process-wide override installed by :func:`set_default_backend`
   (used by the CLI's ``analyze --backend``),
3. the ``REPRO_KERNEL_BACKEND`` environment variable,
4. ``"auto"`` — the NumPy backend when importable, else the reference.

``"numpy"`` requested explicitly without NumPy installed is a
:class:`~repro.exceptions.UsageError`; ``"auto"`` silently falls back.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.exceptions import UsageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend

#: environment variable consulted by :func:`get_backend`
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

BACKEND_NAMES = ("python", "numpy", "auto")

#: process-wide override (None = defer to the environment / auto)
_default_spec: str | None = None

_instances: dict[str, "KernelBackend"] = {}


def numpy_available() -> bool:
    """True if the NumPy backend can be constructed in this interpreter."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - exercised via monkeypatched spec
        return False
    return True


def _instance(name: str) -> "KernelBackend":
    backend = _instances.get(name)
    if backend is None:
        if name == "python":
            from repro.graph.backend.python_backend import PythonBackend

            backend = PythonBackend()
        else:
            from repro.graph.backend.numpy_backend import NumpyBackend

            backend = NumpyBackend()
        _instances[name] = backend
    return backend


def get_backend(name: str | None = None) -> "KernelBackend":
    """Resolve a kernel backend by name (see module docstring for the order).

    Raises :class:`~repro.exceptions.UsageError` for unknown names and for an
    explicit ``"numpy"`` request when NumPy is not importable.
    """
    spec = name if name is not None else _default_spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "auto"
    spec = spec.strip().lower()
    if spec == "auto":
        return _instance("numpy" if numpy_available() else "python")
    if spec == "python":
        return _instance("python")
    if spec == "numpy":
        if not numpy_available():
            raise UsageError(
                "kernel backend 'numpy' was requested but numpy is not "
                "importable; install numpy or select 'python' / 'auto'"
            )
        return _instance("numpy")
    raise UsageError(
        f"unknown kernel backend {spec!r}: expected one of {', '.join(BACKEND_NAMES)}"
    )


def set_default_backend(name: str | None) -> str | None:
    """Install a process-wide backend override; returns the previous one.

    ``None`` clears the override (environment / auto resolution resumes).
    The name is validated eagerly so misconfiguration fails at selection
    time, not at the first algorithm call.
    """
    global _default_spec
    if name is not None:
        get_backend(name)  # validate
    previous = _default_spec
    _default_spec = name
    return previous
