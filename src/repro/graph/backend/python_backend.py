"""The reference kernel backend: pure-Python loops over dense snapshot arrays.

These are the PR 1 algorithm kernels, moved behind the
:class:`KernelBackend` protocol without any semantic change — same iteration
order, same floating-point summation order, same tie-breaks.  The suite run
with ``REPRO_KERNEL_BACKEND=python`` is therefore bit-identical to the
pre-backend tree, which is what makes this backend the determinism reference
every other backend is validated against (``tests/test_backend_parity.py``).

All kernels take a :class:`~repro.graph.kernel.CSRGraph` plus dense integer
indexes and return flat per-index lists (or scalars); external-ID encoding
and decoding stays in the :mod:`repro.algorithms` modules.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import TYPE_CHECKING, Sequence

from repro.graph.kernel import (
    bfs_distances_kernel,
    bfs_order_kernel,
    bfs_parents_kernel,
)
from repro.utils.rand import SeededRandom

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.kernel import CSRGraph


class KernelBackend:
    """Protocol of the algorithm kernels an execution backend provides.

    The base class *is* the reference implementation's skeleton: subclasses
    override whichever kernels they can execute faster and inherit the rest,
    so a backend is never incomplete.  Integer-valued kernels must match the
    reference exactly; float-valued kernels within 1e-9 L-infinity (see
    :mod:`repro.graph.backend`).
    """

    #: resolved name, stable across processes (workers re-resolve by it)
    name = "python"

    # ------------------------------------------------------------------ #
    # whole-graph scans
    # ------------------------------------------------------------------ #
    def degrees(self, csr: "CSRGraph") -> list[int]:
        """Out-degree per dense index."""
        return csr.degrees()

    def segment_sums(
        self, csr: "CSRGraph", values: Sequence[float], lo: int = 0, hi: int | None = None
    ) -> list[float]:
        """Per-vertex sum of ``values`` over each out-neighborhood.

        This is the gather phase of the vertex-centric engines: entry ``i``
        is ``sum(values[t] for t in neighbors(lo + i))`` summed in snapshot
        target order (the serial engines' iteration order, so results are
        deterministic for any partitioning of ``[lo, hi)``).
        """
        if hi is None:
            hi = csr.n
        offsets = csr.offsets_list
        targets = csr.targets_list
        sums: list[float] = []
        append = sums.append
        for vertex in range(lo, hi):
            total = 0.0
            for e in range(offsets[vertex], offsets[vertex + 1]):
                total += values[targets[e]]
            append(total)
        return sums

    # ------------------------------------------------------------------ #
    # traversals
    # ------------------------------------------------------------------ #
    def bfs_distances(
        self, csr: "CSRGraph", source: int, max_depth: int | None = None
    ) -> list[int]:
        """Hop distances from ``source``; ``-1`` marks unreachable."""
        return bfs_distances_kernel(csr, source, max_depth=max_depth)

    def bfs_order(self, csr: "CSRGraph", source: int) -> list[int]:
        """Dense indexes in BFS visit order from ``source``."""
        return bfs_order_kernel(csr, source)

    def bfs_parents(self, csr: "CSRGraph", source: int) -> list[int]:
        """BFS-tree parent per dense index (``-1`` root, ``-2`` unreached)."""
        return bfs_parents_kernel(csr, source)

    # ------------------------------------------------------------------ #
    # shared traversal intermediates (plan-compiler sweep protocol)
    #
    # One traversal per source feeds closeness, diameter, bfs *and*
    # betweenness finalisers: hop distances are uniquely determined
    # integers, so any backend's tree yields the same stats, and a Brandes
    # traversal's internal distance array doubles as the BFS tree.  Trees
    # and deltas stay in the backend's native form until a ``tree_*``
    # accessor converts them, so a vectorised backend never round-trips
    # through Python lists just to compute (reachable, total, ecc).
    # ------------------------------------------------------------------ #
    def bfs_tree(self, csr: "CSRGraph", source: int):
        """Full-depth hop-distance array from ``source`` in this backend's
        native form (``-1`` marks unreachable); feed to ``tree_*``."""
        return bfs_distances_kernel(csr, source)

    def brandes_tree(self, csr: "CSRGraph", source: int):
        """``(tree, delta)``: the Brandes traversal's native distance array
        plus the source's dependency vector (source entry zeroed).

        The tree equals :meth:`bfs_tree` element-for-element, which is what
        lets one Brandes traversal serve closeness/diameter/bfs demands of
        the same source; the delta is what :meth:`betweenness_contribution`
        returns.
        """
        n = csr.n
        offsets = csr.offsets_list
        targets = csr.targets_list
        # single-source shortest paths (unweighted -> BFS)
        predecessors: list[list[int]] = [[] for _ in range(n)]
        sigma = [0.0] * n
        distance = [-1] * n
        sigma[source] = 1.0
        distance[source] = 0
        stack: list[int] = [source]
        head = 0
        while head < len(stack):
            current = stack[head]
            head += 1
            next_distance = distance[current] + 1
            for e in range(offsets[current], offsets[current + 1]):
                neighbor = targets[e]
                if distance[neighbor] < 0:
                    distance[neighbor] = next_distance
                    stack.append(neighbor)
                if distance[neighbor] == next_distance:
                    sigma[neighbor] += sigma[current]
                    predecessors[neighbor].append(current)
        # accumulation in reverse visit order
        delta = [0.0] * n
        for w in reversed(stack):
            for v in predecessors[w]:
                if sigma[w] > 0:
                    delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
        delta[source] = 0.0
        return distance, delta

    def tree_stats(self, tree) -> tuple[int, int, int]:
        """``(reachable, distance_total, eccentricity)`` of a native tree —
        integer-exact on every backend, hence shareable across them."""
        reachable = 0
        total = 0
        ecc = 0
        for distance in tree:
            if distance > 0:
                reachable += 1
                total += distance
                if distance > ecc:
                    ecc = distance
        return reachable, total, ecc

    def tree_distances(self, tree) -> list[int]:
        """A native tree as a plain hop-distance list."""
        return tree

    def tree_delta(self, delta) -> list[float]:
        """A native Brandes dependency vector as a plain float list."""
        return delta

    # ------------------------------------------------------------------ #
    # derived-view warmers (plan-compiler derive nodes)
    # ------------------------------------------------------------------ #
    def warm_undirected(self, csr: "CSRGraph") -> None:
        """Materialise this backend's symmetrised adjacency view so the
        derivation cost is attributable to one plan node instead of hiding
        inside the first consuming kernel."""
        csr.undirected_sets()

    # ------------------------------------------------------------------ #
    # snapshot maintenance
    # ------------------------------------------------------------------ #
    def apply_overlay(self, csr: "CSRGraph", overlay, *, source=None) -> "CSRGraph":
        """Merge a :class:`~repro.graph.delta.DeltaOverlay` over ``csr``.

        Pure array copying — no graph traversal; every backend's merge must
        be element-wise identical to the reference
        (:func:`repro.graph.delta.merge_overlay`).
        """
        from repro.graph.delta import merge_overlay

        return merge_overlay(csr, overlay, source=source)

    # ------------------------------------------------------------------ #
    # PageRank
    # ------------------------------------------------------------------ #
    def pagerank(
        self,
        csr: "CSRGraph",
        damping: float,
        max_iterations: int,
        tolerance: float,
        initial: Sequence[float] | None = None,
    ) -> list[float]:
        """Dense power iteration; returns the per-index rank list.

        ``initial`` seeds the iteration (incremental warm starts) instead of
        the uniform vector; the termination contract — per-iteration L1
        change below ``tolerance``, capped at ``max_iterations`` — is
        unchanged, so a converged warm run lands on the same fixed point as
        the cold run.
        """
        n = csr.n
        offsets = csr.offsets_list
        targets = csr.targets_list
        ranks = [1.0 / n] * n if initial is None else list(initial)
        for _ in range(max_iterations):
            dangling_mass = sum(
                ranks[v] for v in range(n) if offsets[v + 1] == offsets[v]
            )
            base = (1.0 - damping) / n + damping * dangling_mass / n
            next_ranks = [base] * n
            for vertex in range(n):
                start = offsets[vertex]
                end = offsets[vertex + 1]
                if start == end:
                    continue
                share = damping * ranks[vertex] / (end - start)
                for e in range(start, end):
                    next_ranks[targets[e]] += share
            change = sum(abs(next_ranks[v] - ranks[v]) for v in range(n))
            ranks = next_ranks
            if change < tolerance:
                break
        return ranks

    # ------------------------------------------------------------------ #
    # connected components
    # ------------------------------------------------------------------ #
    def connected_components(self, csr: "CSRGraph") -> list[int]:
        """Component index (0-based, ordered by first vertex) per dense index.

        Integer union-find (path halving + union by size); edges are treated
        as undirected.
        """
        n = csr.n
        parent = list(range(n))
        size = [1] * n
        offsets = csr.offsets_list
        targets = csr.targets_list

        def find(item: int) -> int:
            while parent[item] != item:
                parent[item] = parent[parent[item]]  # path halving
                item = parent[item]
            return item

        for u in range(n):
            for e in range(offsets[u], offsets[u + 1]):
                ra = find(u)
                rb = find(targets[e])
                if ra == rb:
                    continue
                if size[ra] < size[rb]:
                    ra, rb = rb, ra
                parent[rb] = ra
                size[ra] += size[rb]

        labels = [0] * n
        component_of_root: dict[int, int] = {}
        for v in range(n):
            root = find(v)
            label = component_of_root.get(root)
            if label is None:
                label = component_of_root[root] = len(component_of_root)
            labels[v] = label
        return labels

    # ------------------------------------------------------------------ #
    # label propagation
    # ------------------------------------------------------------------ #
    def label_propagation(
        self, csr: "CSRGraph", max_iterations: int, seed: int
    ) -> list[int]:
        """Community label (a dense vertex index) per dense index.

        Semi-synchronous: vertices update sequentially within a shuffled
        round and read labels already updated earlier in the same round —
        an inherently order-dependent recurrence, which is why no backend
        overrides this kernel (there is no profitable vectorisation that
        preserves the reference semantics).  Ties break on the most frequent
        label, then the smallest external-ID ``repr``.
        """
        rng = SeededRandom(seed)
        n = csr.n
        offsets = csr.offsets_list
        targets = csr.targets_list
        reprs = [repr(external) for external in csr.external_ids]
        labels = list(range(n))

        for _ in range(max_iterations):
            changed = 0
            for vertex in rng.shuffle(list(range(n))):
                start = offsets[vertex]
                end = offsets[vertex + 1]
                if start == end:
                    continue
                counts: dict[int, int] = {}
                for e in range(start, end):
                    label = labels[targets[e]]
                    counts[label] = counts.get(label, 0) + 1
                best = sorted(
                    counts.items(), key=lambda item: (-item[1], reprs[item[0]])
                )[0][0]
                if best != labels[vertex]:
                    labels[vertex] = best
                    changed += 1
            if changed == 0:
                break
        return labels

    # ------------------------------------------------------------------ #
    # k-core
    # ------------------------------------------------------------------ #
    def core_numbers(self, csr: "CSRGraph") -> list[int]:
        """Core number per dense index (Batagelj–Zaveršnik peeling)."""
        adjacency = csr.undirected_sets()
        n = csr.n
        if n == 0:
            return []
        degrees = [len(neighbors) for neighbors in adjacency]
        max_degree = max(degrees, default=0)
        buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
        for vertex, degree in enumerate(degrees):
            buckets[degree].append(vertex)

        cores = [0] * n
        removed = bytearray(n)
        current = 0
        for degree in range(max_degree + 1):
            bucket = buckets[degree]
            while bucket:
                vertex = bucket.pop()
                if removed[vertex] or degrees[vertex] != degree:
                    continue
                current = max(current, degree)
                cores[vertex] = current
                removed[vertex] = 1
                for neighbor in adjacency[vertex]:
                    if removed[neighbor]:
                        continue
                    if degrees[neighbor] > degree:
                        degrees[neighbor] -= 1
                        buckets[degrees[neighbor]].append(neighbor)
        # vertices skipped because their recorded degree was stale get
        # re-processed through the bucket they were re-appended to; isolated
        # vertices stay 0
        return cores

    # ------------------------------------------------------------------ #
    # triangles / clustering
    # ------------------------------------------------------------------ #
    def count_triangles(self, csr: "CSRGraph", lo: int = 0, hi: int | None = None) -> int:
        """Number of distinct triangles (each counted once, ``u < v < w``).

        With a ``[lo, hi)`` range, only triangles whose *smallest* dense
        index falls in the range are counted — every triangle is attributed
        to exactly one vertex, so partition totals sum to the whole-graph
        count exactly (the chunk-parallel contract).
        """
        adjacency = csr.undirected_sets()
        if hi is None:
            hi = csr.n
        total = 0
        for u in range(lo, hi):
            neighbors = adjacency[u]
            higher_u = {v for v in neighbors if v > u}
            for v in higher_u:
                total += sum(1 for w in adjacency[v] if w > v and w in higher_u)
        return total

    def triangles_per_vertex(self, csr: "CSRGraph") -> list[int]:
        """Number of triangles each dense index participates in."""
        adjacency = csr.undirected_sets()
        counts = [0] * csr.n
        for u, neighbors in enumerate(adjacency):
            higher_u = {v for v in neighbors if v > u}
            for v in higher_u:
                for w in adjacency[v]:
                    if w > v and w in higher_u:
                        counts[u] += 1
                        counts[v] += 1
                        counts[w] += 1
        return counts

    def clustering_coefficient(self, csr: "CSRGraph", index: int) -> float:
        """Local clustering coefficient of one dense index."""
        adjacency = csr.undirected_sets()
        neighbors = adjacency[index]
        degree = len(neighbors)
        if degree < 2:
            return 0.0
        links = sum(1 for a, b in combinations(neighbors, 2) if b in adjacency[a])
        return 2.0 * links / (degree * (degree - 1))

    def average_clustering(self, csr: "CSRGraph") -> float:
        """Mean local clustering coefficient over all vertices."""
        adjacency = csr.undirected_sets()
        if not adjacency:
            return 0.0
        total = 0.0
        for neighbors in adjacency:
            degree = len(neighbors)
            if degree < 2:
                continue
            links = sum(1 for a, b in combinations(neighbors, 2) if b in adjacency[a])
            total += 2.0 * links / (degree * (degree - 1))
        return total / len(adjacency)

    # ------------------------------------------------------------------ #
    # centrality
    # ------------------------------------------------------------------ #
    def closeness_centrality(
        self, csr: "CSRGraph", lo: int = 0, hi: int | None = None
    ) -> list[float]:
        """Wasserman–Faust closeness for dense indexes ``[lo, hi)`` (one BFS
        per vertex; the default range covers the whole graph).

        Per-vertex values are independent, so concatenating partition slices
        in partition order reproduces the whole-graph call bit-for-bit.
        """
        # local import: repro.algorithms.centrality imports the backend layer
        from repro.algorithms.centrality import closeness_value

        n = csr.n
        if hi is None:
            hi = n
        result = [0.0] * (hi - lo)
        for vertex in range(lo, hi):
            reachable, total, _ = self.tree_stats(self.bfs_tree(csr, vertex))
            result[vertex - lo] = closeness_value(n, reachable, total)
        return result

    def betweenness_contribution(self, csr: "CSRGraph", source: int) -> list[float]:
        """One source's Brandes dependency (delta) per dense index, with the
        source's own entry zeroed.

        :meth:`betweenness` is the flat left-to-right sum of these over the
        source list, so shipping per-source contributions and re-summing in
        global source order (the chunk-parallel merge) is bit-identical to
        the serial accumulation.
        """
        return self.tree_delta(self.brandes_tree(csr, source)[1])

    def betweenness(self, csr: "CSRGraph", sources: list[int]) -> list[float]:
        """Brandes accumulation from ``sources`` over dense indexes.

        Sums per-source contributions in source order; unreached vertices
        contribute an exact ``+ 0.0``, so this equals the historical
        accumulate-in-place loop bit-for-bit.
        """
        n = csr.n
        betweenness = [0.0] * n
        for source in sources:
            delta = self.betweenness_contribution(csr, source)
            for w in range(n):
                betweenness[w] += delta[w]
        return betweenness

    # ------------------------------------------------------------------ #
    # neighborhood similarity
    # ------------------------------------------------------------------ #
    def _neighborhood(self, csr: "CSRGraph", index: int) -> set[int]:
        """Out-neighborhood of a dense index, excluding the vertex itself."""
        neighborhood = csr.neighbor_set(index)
        neighborhood.discard(index)
        return neighborhood

    def common_neighbors(self, csr: "CSRGraph", iu: int, iv: int) -> set[int]:
        """Dense indexes adjacent to both, excluding the endpoints."""
        shared = self._neighborhood(csr, iu) & self._neighborhood(csr, iv)
        shared.discard(iu)
        shared.discard(iv)
        return shared

    def jaccard(self, csr: "CSRGraph", iu: int, iv: int) -> float:
        nu = self._neighborhood(csr, iu)
        nv = self._neighborhood(csr, iv)
        union = len(nu | nv)
        if not union:
            return 0.0
        return len(nu & nv) / union

    def adamic_adar(self, csr: "CSRGraph", iu: int, iv: int) -> float:
        score = 0.0
        for index in self.common_neighbors(csr, iu, iv):
            degree = len(self._neighborhood(csr, index))
            if degree > 1:
                score += 1.0 / math.log(degree)
        return score

    def preferential_attachment(self, csr: "CSRGraph", iu: int, iv: int) -> int:
        return len(self._neighborhood(csr, iu)) * len(self._neighborhood(csr, iv))


class PythonBackend(KernelBackend):
    """The reference backend (the :class:`KernelBackend` base implementation)."""

    name = "python"
