"""NumPy-vectorised kernel backend over zero-copy CSR snapshot views.

The snapshot's ``offsets``/``targets`` are contiguous 64-bit buffers —
``array('q')`` for in-memory builds, ``"q"``-cast memoryviews over a
read-only mmap for loaded snapshot files — and both expose the buffer
protocol, so ``np.frombuffer`` wraps them as ``np.int64`` views **without
copying**.  A parallel superstep worker that mmaps the run's snapshot file
therefore runs these kernels directly over the shared page-cache copy of the
arrays.

Kernel strategies (see ``tests/test_backend_parity.py`` for the contract):

* **PageRank / gather** — scatter-gather with ``np.bincount`` weights over
  the flat edge array (accumulation in global edge order, the same order the
  reference kernel adds shares in) and ``np.add.reduceat`` segment sums.
* **BFS / components / shortest paths** — frontier expansion with flat
  gathers; ``np.unique(..., return_index=True)`` keeps the *first-occurrence
  discovery order*, so visit orders and parent pointers equal the reference
  FIFO kernels exactly, not just up to relabeling.  Components are peeled
  with vectorised BFS sweeps from ascending start vertices, which reproduces
  the union-find labeling (0-based, ordered by first vertex).
* **Triangles / similarity / k-core** — a symmetrised, deduplicated,
  *sorted* adjacency CSR (built once per snapshot and cached on it) makes
  neighbor intersection a ``searchsorted`` probe and peeling a masked
  degree-decrement loop.

Integer kernels are exact; float kernels re-associate sums and may differ
from the reference in low-order bits (≤ 1e-9 L-infinity, documented in
:mod:`repro.graph.backend`).  Label propagation is inherited from the
reference backend: its sequential in-round updates are order-dependent by
definition and do not vectorise.
"""

from __future__ import annotations

import math
from array import array
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.graph.backend.python_backend import KernelBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.kernel import CSRGraph


def _views(csr: "CSRGraph") -> tuple[np.ndarray, np.ndarray]:
    """Zero-copy ``np.int64`` views of ``offsets``/``targets`` (cached)."""
    cache = csr._backend_cache
    views = cache.get("np_views")
    if views is None:
        offsets = np.frombuffer(csr.offsets, dtype=np.int64)
        targets = np.frombuffer(csr.targets, dtype=np.int64)
        views = cache["np_views"] = (offsets, targets)
    return views


def _out_degrees(csr: "CSRGraph") -> np.ndarray:
    cache = csr._backend_cache
    degrees = cache.get("np_degrees")
    if degrees is None:
        offsets, _ = _views(csr)
        degrees = cache["np_degrees"] = np.diff(offsets)
    return degrees


def _undirected_csr(csr: "CSRGraph") -> tuple[np.ndarray, np.ndarray]:
    """Symmetrised adjacency as a sorted, deduplicated CSR (cached).

    Same logical view as :meth:`CSRGraph.undirected_sets` — ``u ~ v`` iff
    ``u→v`` or ``v→u``, self-loops dropped — with each row's targets sorted
    ascending so membership tests are ``searchsorted`` probes.

    The arrays are shared with the other backends through the snapshot's
    backend-neutral ``"und_csr"`` cache entry: if any consumer (python
    kernels included) already derived the symmetrised form, it is wrapped
    zero-copy here instead of being rebuilt, and a fresh vectorised build is
    published back under the neutral key for them.
    """
    cache = csr._backend_cache
    und = cache.get("np_undirected")
    if und is None:
        n = csr.n
        if "und_csr" in cache or csr._undirected is not None:
            neutral_offsets, neutral_targets = csr.undirected_csr()
            und = cache["np_undirected"] = (
                np.frombuffer(neutral_offsets, dtype=np.int64),
                np.frombuffer(neutral_targets, dtype=np.int64),
            )
            return und
        offsets, targets = _views(csr)
        sources = np.repeat(np.arange(n, dtype=np.int64), _out_degrees(csr))
        keep = sources != targets
        u = np.concatenate([sources[keep], targets[keep]])
        v = np.concatenate([targets[keep], sources[keep]])
        if u.size:
            codes = np.unique(u * np.int64(n) + v)
            uu, vv = np.divmod(codes, np.int64(n))
        else:
            uu = vv = np.empty(0, dtype=np.int64)
        und_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(uu, minlength=n), out=und_offsets[1:])
        und = cache["np_undirected"] = (und_offsets, vv)
        # publish the backend-neutral form so python kernels (undirected_sets)
        # and future backends reuse this derivation instead of re-symmetrising
        neutral_offsets = array("q")
        neutral_offsets.frombytes(np.ascontiguousarray(und_offsets).tobytes())
        neutral_targets = array("q")
        neutral_targets.frombytes(np.ascontiguousarray(vv).tobytes())
        cache["und_csr"] = (neutral_offsets, neutral_targets)
    return und


def _gather_targets(
    offsets: np.ndarray, targets: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Flat targets of all out-edges of ``frontier``, concatenated in
    frontier order with per-vertex target order preserved."""
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    index = np.arange(total, dtype=np.int64) + np.repeat(starts - (ends - counts), counts)
    return targets[index]


def _gather(
    offsets: np.ndarray, targets: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Like :func:`_gather_targets`, also returning the per-edge sources."""
    counts = offsets[frontier + 1] - offsets[frontier]
    return (
        _gather_targets(offsets, targets, frontier),
        np.repeat(frontier, counts),
    )


def _sorted_row(offsets: np.ndarray, targets: np.ndarray, index: int) -> np.ndarray:
    return targets[offsets[index] : offsets[index + 1]]


class NumpyBackend(KernelBackend):
    """Vectorised kernels over (possibly mmap-backed) snapshot arrays."""

    name = "numpy"

    # ------------------------------------------------------------------ #
    # whole-graph scans
    # ------------------------------------------------------------------ #
    def degrees(self, csr: "CSRGraph") -> list[int]:
        if csr._degrees is None:
            csr._degrees = _out_degrees(csr).tolist()
        return csr._degrees

    def segment_sums(
        self, csr: "CSRGraph", values: Sequence[float], lo: int = 0, hi: int | None = None
    ) -> list[float]:
        if hi is None:
            hi = csr.n
        if hi <= lo:
            return []
        offsets, targets = _views(csr)
        bounds = offsets[lo : hi + 1]
        base = int(bounds[0])
        gathered = np.asarray(values, dtype=np.float64)[targets[base : int(bounds[-1])]]
        sums = np.zeros(hi - lo, dtype=np.float64)
        if gathered.size:
            # reduceat over the non-empty segment starts only: empty segments
            # hold no elements, so consecutive non-empty starts delimit
            # exactly one segment's elements each
            nonempty = bounds[:-1] < bounds[1:]
            sums[nonempty] = np.add.reduceat(gathered, (bounds[:-1] - base)[nonempty])
        return sums.tolist()

    # ------------------------------------------------------------------ #
    # traversals (first-occurrence frontier expansion == reference FIFO)
    # ------------------------------------------------------------------ #
    def _bfs_distances_array(
        self, csr: "CSRGraph", source: int, max_depth: int | None = None
    ) -> np.ndarray:
        offsets, targets = _views(csr)
        distances = np.full(csr.n, -1, dtype=np.int64)
        distances[source] = 0
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            if max_depth is not None and depth >= max_depth:
                break
            depth += 1
            candidates, _ = _gather(offsets, targets, frontier)
            frontier = np.unique(candidates[distances[candidates] < 0])
            distances[frontier] = depth
        return distances

    def bfs_distances(
        self, csr: "CSRGraph", source: int, max_depth: int | None = None
    ) -> list[int]:
        return self._bfs_distances_array(csr, source, max_depth=max_depth).tolist()

    def bfs_order(self, csr: "CSRGraph", source: int) -> list[int]:
        offsets, targets = _views(csr)
        seen = np.zeros(csr.n, dtype=bool)
        seen[source] = True
        order: list[int] = [source]
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            candidates, _ = _gather(offsets, targets, frontier)
            fresh = candidates[~seen[candidates]]
            _, first = np.unique(fresh, return_index=True)
            frontier = fresh[np.sort(first)]  # first-occurrence discovery order
            seen[frontier] = True
            order.extend(frontier.tolist())
        return order

    def bfs_parents(self, csr: "CSRGraph", source: int) -> list[int]:
        offsets, targets = _views(csr)
        parents = np.full(csr.n, -2, dtype=np.int64)  # -2 = undiscovered
        parents[source] = -1
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            candidates, sources = _gather(offsets, targets, frontier)
            mask = parents[candidates] == -2
            fresh, fresh_sources = candidates[mask], sources[mask]
            _, first = np.unique(fresh, return_index=True)
            first.sort()
            frontier = fresh[first]
            parents[frontier] = fresh_sources[first]  # first discovering edge
        return parents.tolist()

    # ------------------------------------------------------------------ #
    # snapshot maintenance
    # ------------------------------------------------------------------ #
    def apply_overlay(self, csr: "CSRGraph", overlay, *, source=None) -> "CSRGraph":
        """Vectorised delta-overlay merge, element-wise identical to the
        reference :func:`repro.graph.delta.merge_overlay`.

        Strips touched pairs with per-row masks over the flat target array
        (only rows the overlay touched are visited in Python), scatters the
        surviving targets to their shifted destinations in one gather, then
        drops each row's sorted net additions at its end — ``O(n + m)`` array
        work plus ``O(|delta|)`` loop iterations.
        """
        from repro.graph.kernel import CSRGraph

        new_vertices, strip, additions = overlay.plan(csr)
        offsets_v, targets_v = _views(csr)
        base_n = csr.n
        n = base_n + len(new_vertices)

        keep = np.ones(targets_v.size, dtype=bool)
        for row, dropped in strip.items():
            if row >= base_n:
                continue
            start, end = int(offsets_v[row]), int(offsets_v[row + 1])
            if start == end:
                continue
            keep[start:end] = ~np.isin(
                targets_v[start:end],
                np.fromiter(dropped, dtype=np.int64, count=len(dropped)),
            )

        keep_csum = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(keep, dtype=np.int64))
        )
        kept_per_row = np.zeros(n, dtype=np.int64)
        kept_per_row[:base_n] = keep_csum[offsets_v[1:]] - keep_csum[offsets_v[:-1]]
        add_per_row = np.zeros(n, dtype=np.int64)
        for row, extra in additions.items():
            add_per_row[row] = len(extra)

        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(kept_per_row + add_per_row, out=offsets[1:])
        merged = np.empty(int(offsets[-1]), dtype=np.int64)

        kept = targets_v[keep]
        if kept.size:
            # destination of each surviving element: its position within the
            # kept-per-row flat order plus the room additions open up in
            # earlier rows
            kept_offsets = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(kept_per_row[:base_n]))
            )
            shift = offsets[:base_n] - kept_offsets[:-1]
            merged[np.arange(kept.size, dtype=np.int64) + np.repeat(shift, kept_per_row[:base_n])] = kept
        for row, extra in additions.items():
            end = int(offsets[row + 1])
            merged[end - len(extra) : end] = extra

        out_offsets = array("q")
        out_offsets.frombytes(np.ascontiguousarray(offsets).tobytes())
        out_targets = array("q")
        out_targets.frombytes(np.ascontiguousarray(merged).tobytes())
        return CSRGraph(
            out_offsets, out_targets, list(csr.external_ids) + new_vertices, source=source
        )

    # ------------------------------------------------------------------ #
    # PageRank
    # ------------------------------------------------------------------ #
    def pagerank(
        self,
        csr: "CSRGraph",
        damping: float,
        max_iterations: int,
        tolerance: float,
        initial: Sequence[float] | None = None,
    ) -> list[float]:
        """Vectorised power iteration, **bit-identical** to the reference.

        The reference kernel seeds ``next_ranks[v] = base`` and then adds
        the damped shares in global edge order.  ``np.bincount`` accumulates
        its weights in one sequential pass over the index array, so scoring
        a static ``[0..n) ++ targets`` index array against
        ``[base]*n ++ shares-per-edge`` weights reproduces that exact
        addition sequence per vertex; the dangling mass and the convergence
        change are summed sequentially in index order like the reference.
        The stopping decision therefore flips at the same iteration, leaving
        no float divergence at all (the documented contract is still the
        conservative <= 1e-9).
        """
        n = csr.n
        _, targets = _views(csr)
        degrees = _out_degrees(csr)
        spreading = degrees > 0
        dangling = np.flatnonzero(~spreading)
        scatter_index = np.concatenate((np.arange(n, dtype=np.int64), targets))
        weights = np.empty(n + targets.size, dtype=np.float64)
        shares = np.zeros(n, dtype=np.float64)
        if initial is None:
            ranks = np.full(n, 1.0 / n, dtype=np.float64)
        else:
            ranks = np.array(initial, dtype=np.float64)
        for _ in range(max_iterations):
            # sequential left-to-right sums in index order, like the
            # reference (the dangling set is typically tiny)
            dangling_mass = sum(ranks[dangling].tolist())
            base = (1.0 - damping) / n + damping * dangling_mass / n
            np.divide(damping * ranks, degrees, out=shares, where=spreading)
            weights[:n] = base
            weights[n:] = np.repeat(shares, degrees)
            next_ranks = np.bincount(scatter_index, weights=weights, minlength=n)
            change = sum(np.abs(next_ranks - ranks).tolist())
            ranks = next_ranks
            if change < tolerance:
                break
        return ranks.tolist()

    # ------------------------------------------------------------------ #
    # connected components
    # ------------------------------------------------------------------ #
    def connected_components(self, csr: "CSRGraph") -> list[int]:
        n = csr.n
        if n == 0:
            return []
        offsets, targets = _undirected_csr(csr)
        # BFS sweeps label one non-singleton component each; every
        # undirected edge is gathered exactly once over the whole pass, and
        # frontier dedup goes through a flag array instead of a sort.
        # Isolated vertices (the bulk of the component *count* on extracted
        # graphs) are handled wholesale: a unique provisional label each.
        raw = np.full(n, -1, dtype=np.int64)
        isolated = np.diff(offsets) == 0
        raw[isolated] = n + np.flatnonzero(isolated)
        sweep = 0
        for start in np.flatnonzero(~isolated).tolist():
            if raw[start] >= 0:
                continue
            raw[start] = sweep
            frontier = np.array([start], dtype=np.int64)
            while frontier.size:
                candidates = _gather_targets(offsets, targets, frontier)
                fresh = candidates[raw[candidates] < 0]
                raw[fresh] = sweep
                # dedup proportional to the frontier, not to n: a
                # high-diameter component must not pay a full-array scan
                # per level
                frontier = np.unique(fresh)
            sweep += 1
        # canonical relabel: 0-based in order of each component's first
        # vertex — exactly the reference union-find labeling
        unique, first, inverse = np.unique(raw, return_index=True, return_inverse=True)
        rank = np.empty(unique.size, dtype=np.int64)
        rank[np.argsort(first, kind="stable")] = np.arange(unique.size, dtype=np.int64)
        return rank[inverse].tolist()

    # ------------------------------------------------------------------ #
    # k-core
    # ------------------------------------------------------------------ #
    def core_numbers(self, csr: "CSRGraph") -> list[int]:
        n = csr.n
        if n == 0:
            return []
        offsets, targets = _undirected_csr(csr)
        current = np.diff(offsets)
        removed = np.zeros(n, dtype=bool)
        cores = np.zeros(n, dtype=np.int64)
        remaining = n
        k = 0
        while remaining:
            peel = np.flatnonzero(~removed & (current <= k))
            if peel.size == 0:
                k += 1
                continue
            cores[peel] = k
            removed[peel] = True
            remaining -= peel.size
            neighbors, _ = _gather(offsets, targets, peel)
            alive = neighbors[~removed[neighbors]]
            if alive.size:
                current -= np.bincount(alive, minlength=n)
        return cores.tolist()

    # ------------------------------------------------------------------ #
    # triangles / clustering
    # ------------------------------------------------------------------ #
    def _triangle_counts(
        self, csr: "CSRGraph", lo: int = 0, hi: int | None = None
    ) -> tuple[int, np.ndarray]:
        """``(total, per-vertex counts)`` over the u < v < w orientation.

        With a ``[lo, hi)`` range only triangles whose smallest vertex lies
        in the range are counted (the per-vertex counts then cover only those
        triangles — whole-graph callers use the default full range).
        """
        n = csr.n
        if hi is None:
            hi = n
        offsets, targets = _undirected_csr(csr)
        counts = np.zeros(n, dtype=np.int64)
        hits: list[np.ndarray] = []
        total = 0
        for u in range(lo, hi):
            row = _sorted_row(offsets, targets, u)
            higher = row[np.searchsorted(row, u + 1) :]  # rows are sorted
            if higher.size < 2:
                continue
            candidates, sources = _gather(offsets, targets, higher)
            mask = candidates > sources
            candidates, sources = candidates[mask], sources[mask]
            position = np.searchsorted(higher, candidates)
            position[position == higher.size] = 0  # any in-range slot; masked below
            found = higher[position] == candidates
            wedges = int(np.count_nonzero(found))
            if wedges:
                total += wedges
                counts[u] += wedges
                hits.append(sources[found])
                hits.append(candidates[found])
        if hits:
            counts += np.bincount(np.concatenate(hits), minlength=n)
        return total, counts

    def count_triangles(self, csr: "CSRGraph", lo: int = 0, hi: int | None = None) -> int:
        return self._triangle_counts(csr, lo, hi)[0]

    def triangles_per_vertex(self, csr: "CSRGraph") -> list[int]:
        return self._triangle_counts(csr)[1].tolist()

    def _links_among_neighbors(self, csr: "CSRGraph", index: int) -> tuple[int, int]:
        """``(degree, edge count among the neighborhood)`` of one vertex."""
        offsets, targets = _undirected_csr(csr)
        row = _sorted_row(offsets, targets, index)
        if row.size < 2:
            return int(row.size), 0
        candidates, _ = _gather(offsets, targets, row)
        position = np.searchsorted(row, candidates)
        position[position == row.size] = 0
        # each neighborhood edge is seen from both endpoints
        links = int(np.count_nonzero(row[position] == candidates)) // 2
        return int(row.size), links

    def clustering_coefficient(self, csr: "CSRGraph", index: int) -> float:
        degree, links = self._links_among_neighbors(csr, index)
        if degree < 2:
            return 0.0
        return 2.0 * links / (degree * (degree - 1))

    def average_clustering(self, csr: "CSRGraph") -> float:
        n = csr.n
        if n == 0:
            return 0.0
        degrees = np.diff(_undirected_csr(csr)[0])
        triangles = self._triangle_counts(csr)[1]
        # identical per-vertex arithmetic to the reference; only the final
        # mean re-associates the sum
        total = 0.0
        for vertex in np.flatnonzero(degrees >= 2).tolist():
            degree = int(degrees[vertex])
            total += 2.0 * int(triangles[vertex]) / (degree * (degree - 1))
        return total / n

    # ------------------------------------------------------------------ #
    # centrality
    # ------------------------------------------------------------------ #
    def closeness_centrality(
        self, csr: "CSRGraph", lo: int = 0, hi: int | None = None
    ) -> list[float]:
        from repro.algorithms.centrality import closeness_value

        n = csr.n
        if hi is None:
            hi = n
        result = [0.0] * (hi - lo)
        if n <= 1:
            return result
        for vertex in range(lo, hi):
            reachable, total, _ = self.tree_stats(self._bfs_distances_array(csr, vertex))
            result[vertex - lo] = closeness_value(n, reachable, total)
        return result

    # ------------------------------------------------------------------ #
    # shared traversal intermediates (plan-compiler sweep protocol): native
    # form is the np.int64 / np.float64 array, converted only on demand
    # ------------------------------------------------------------------ #
    def bfs_tree(self, csr: "CSRGraph", source: int) -> np.ndarray:
        return self._bfs_distances_array(csr, source)

    def brandes_tree(
        self, csr: "CSRGraph", source: int
    ) -> tuple[np.ndarray, np.ndarray]:
        distance, delta = self._brandes_arrays(csr, source)
        return distance, delta

    def tree_stats(self, tree: np.ndarray) -> tuple[int, int, int]:
        positive = tree > 0
        reached = tree[positive]
        return (
            int(reached.size),
            int(reached.sum()),
            int(reached.max()) if reached.size else 0,
        )

    def tree_distances(self, tree: np.ndarray) -> list[int]:
        return tree.tolist()

    def tree_delta(self, delta: np.ndarray) -> list[float]:
        return delta.tolist()

    def warm_undirected(self, csr: "CSRGraph") -> None:
        _undirected_csr(csr)

    def _brandes_arrays(
        self, csr: "CSRGraph", source: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """One source's Brandes traversal: ``(distance, delta)`` arrays, the
        delta's source entry zeroed."""
        n = csr.n
        offsets, targets = _views(csr)
        distance = np.full(n, -1, dtype=np.int64)
        distance[source] = 0
        sigma = np.zeros(n, dtype=np.float64)  # exact: path counts < 2^53
        sigma[source] = 1.0
        levels: list[np.ndarray] = [np.array([source], dtype=np.int64)]
        depth = 0
        while True:
            candidates, srcs = _gather(offsets, targets, levels[-1])
            if candidates.size == 0:
                break
            frontier = np.unique(candidates[distance[candidates] < 0])
            distance[frontier] = depth + 1
            forward = distance[candidates] == depth + 1
            sigma += np.bincount(
                candidates[forward], weights=sigma[srcs[forward]], minlength=n
            )
            if frontier.size == 0:
                break
            levels.append(frontier)
            depth += 1
        delta = np.zeros(n, dtype=np.float64)
        for depth in range(len(levels) - 1, 0, -1):
            candidates, srcs = _gather(offsets, targets, levels[depth - 1])
            down = distance[candidates] == depth
            w, v = candidates[down], srcs[down]
            delta += np.bincount(
                v, weights=(sigma[v] / sigma[w]) * (1.0 + delta[w]), minlength=n
            )
        delta[source] = 0.0
        return distance, delta

    def _betweenness_delta(self, csr: "CSRGraph", source: int) -> np.ndarray:
        return self._brandes_arrays(csr, source)[1]

    def betweenness_contribution(self, csr: "CSRGraph", source: int) -> list[float]:
        return self._betweenness_delta(csr, source).tolist()

    def betweenness(self, csr: "CSRGraph", sources: list[int]) -> list[float]:
        # elementwise float64 addition per source, in source order — the
        # exact operation sequence the chunk-parallel merge replays, so
        # serial and scheduled results are bit-identical per backend
        betweenness = np.zeros(csr.n, dtype=np.float64)
        for source in sources:
            betweenness += self._betweenness_delta(csr, source)
        return betweenness.tolist()

    # ------------------------------------------------------------------ #
    # neighborhood similarity (sorted-array intersections)
    # ------------------------------------------------------------------ #
    def _neighborhood_array(self, csr: "CSRGraph", index: int) -> np.ndarray:
        """Sorted out-neighborhood of a dense index, excluding itself."""
        offsets, targets = _views(csr)
        row = np.unique(targets[offsets[index] : offsets[index + 1]])
        return row[row != index]

    def common_neighbors(self, csr: "CSRGraph", iu: int, iv: int) -> set[int]:
        shared = np.intersect1d(
            self._neighborhood_array(csr, iu),
            self._neighborhood_array(csr, iv),
            assume_unique=True,
        )
        return set(shared[(shared != iu) & (shared != iv)].tolist())

    def jaccard(self, csr: "CSRGraph", iu: int, iv: int) -> float:
        nu = self._neighborhood_array(csr, iu)
        nv = self._neighborhood_array(csr, iv)
        intersection = np.intersect1d(nu, nv, assume_unique=True).size
        union = nu.size + nv.size - intersection
        if not union:
            return 0.0
        return intersection / union

    def adamic_adar(self, csr: "CSRGraph", iu: int, iv: int) -> float:
        score = 0.0
        for index in sorted(self.common_neighbors(csr, iu, iv)):
            degree = self._neighborhood_array(csr, index).size
            if degree > 1:
                score += 1.0 / math.log(degree)
        return score

    def preferential_attachment(self, csr: "CSRGraph", iu: int, iv: int) -> int:
        return self._neighborhood_array(csr, iu).size * self._neighborhood_array(
            csr, iv
        ).size
