"""Persistent, mmap-able CSR snapshot files.

The ``offsets``/``targets`` arrays of a :class:`~repro.graph.kernel.CSRGraph`
are contiguous 64-bit buffers, which makes the snapshot trivially
serializable — and, more importantly, *memory-mappable*: a file written once
per dataset can be mapped read-only by any number of processes, so

* a process that trusts the file (:func:`load_snapshot` /
  :meth:`SnapshotStore.load`) skips extraction entirely — the cost of
  expanding the virtual layer into CSR form is paid once per dataset, not
  once per process (the parallel superstep workers are exactly this case:
  they map the coordinator's snapshot file instead of rebuilding or
  unpickling the graph), and
* every mapping process shares one physical copy of the arrays through the
  page cache.

A process that *holds the live graph* and wants correctness rather than
trust uses :meth:`SnapshotStore.load_or_build`, which hashes the graph's own
snapshot against the file header — that validates/refreshes the cache (and
is what keeps it fresh for the trusting readers above), but necessarily
builds the in-memory snapshot first.

File format (version 1)
-----------------------
All header integers are little-endian; the array sections are raw 64-bit
little-endian signed integers (the in-memory ``array('q')`` layout on every
mainstream platform).

======  ====  =====================================================
offset  size  field
======  ====  =====================================================
0       8     magic ``b"GGCSRSNP"``
8       2     format version (``u16``, currently 1)
10      2     flags (``u16``, reserved, must be 0)
12      4     reserved padding (``u32``, must be 0)
16      8     ``n`` — number of vertices (``u64``)
24      8     ``m`` — number of directed edges (``u64``)
32      8     codec section length in bytes (``u64``)
40      32    SHA-256 content hash (see below)
72      —     ``offsets`` section: ``(n + 1) * 8`` bytes
—       —     ``targets`` section: ``m * 8`` bytes
—       —     codec section: pickled ``external_ids`` list
======  ====  =====================================================

The header is 72 bytes, a multiple of 8, so both array sections are 8-byte
aligned in the file and an ``mmap`` of the whole file can be cast to ``"q"``
views with zero copying.

The **content hash** is ``sha256(n || m || offsets || targets || codec)``
(header integers in little-endian ``u64``).  It identifies the *logical
content* of the snapshot, so a file written for a graph that has since been
mutated no longer matches the graph's current hash —
:meth:`SnapshotStore.load_or_build` uses this to detect stale cache entries
and rebuild them.

Loading
-------
:func:`load_snapshot` (or :meth:`CSRGraph.load`) reads a file back either as

* ``mmap=True`` — zero-copy: ``offsets``/``targets`` become ``memoryview``
  slices cast to ``"q"`` over a read-only ``mmap`` of the file (the mapping
  is kept alive by the returned snapshot), or
* ``mmap=False`` — private ``array('q')`` copies.

Both paths validate magic/version/section sizes and, with ``verify=True``,
re-hash the payload to detect bit corruption.

Big-endian hosts are supported by byte-swapping on save/load; the zero-copy
mmap path silently degrades to a verified copy there (the file stays
little-endian so snapshots are portable).
"""

from __future__ import annotations

import hashlib
import mmap as _mmap
import os
import pickle
import re
import struct
import sys
import threading
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exceptions import SnapshotFormatError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.api import Graph
    from repro.graph.kernel import CSRGraph

MAGIC = b"GGCSRSNP"
FORMAT_VERSION = 1
_HEADER_STRUCT = struct.Struct("<8sHHIQQQ32s")
HEADER_SIZE = _HEADER_STRUCT.size  # 72 bytes, 8-aligned
_ITEM = 8  # bytes per offsets/targets element

_LITTLE_ENDIAN = sys.byteorder == "little"

#: cumulative :func:`save_snapshot` calls in this process (tempfile and store
#: writes alike) — single-threaded tests read deltas of this to assert "at
#: most one snapshot file written per plan"; incremented under a lock
SAVE_COUNT = 0

_COUNTER_LOCK = threading.Lock()
_THREAD_COUNTERS = threading.local()


def saves_in_thread() -> int:
    """Cumulative snapshot saves *made by the current thread*.

    The per-plan ``report.snapshot_writes`` counter is a delta of this value,
    so plans running concurrently in one process (the graph service) never
    see each other's writes, while hidden per-request writes anywhere in the
    calling thread's stack are still caught.
    """
    return getattr(_THREAD_COUNTERS, "saves", 0)


def _record_save() -> None:
    """Count one logical snapshot persist (monolithic file or sharded set)."""
    global SAVE_COUNT
    with _COUNTER_LOCK:
        SAVE_COUNT += 1
    _THREAD_COUNTERS.saves = getattr(_THREAD_COUNTERS, "saves", 0) + 1


@dataclass(frozen=True)
class SnapshotHeader:
    """Decoded header of a persisted snapshot file."""

    version: int
    n: int
    m: int
    codec_length: int
    content_hash: bytes

    @property
    def offsets_start(self) -> int:
        return HEADER_SIZE

    @property
    def targets_start(self) -> int:
        return HEADER_SIZE + (self.n + 1) * _ITEM

    @property
    def codec_start(self) -> int:
        return self.targets_start + self.m * _ITEM

    @property
    def file_size(self) -> int:
        return self.codec_start + self.codec_length


# --------------------------------------------------------------------------- #
# content hashing
# --------------------------------------------------------------------------- #
def _array_bytes_le(values: array) -> bytes:
    """The raw little-endian bytes of an ``array('q')`` (or compatible view)."""
    if isinstance(values, array):
        if _LITTLE_ENDIAN:
            return values.tobytes()
        swapped = array("q", values)
        swapped.byteswap()
        return swapped.tobytes()
    # memoryview over an mmap-backed snapshot: already little-endian on disk
    view = memoryview(values)
    return view.tobytes() if _LITTLE_ENDIAN else array("q", view.tolist()).tobytes()


def encode_codec(external_ids: list) -> bytes:
    """Serialize the dense-index -> external-ID table (the snapshot codec)."""
    return pickle.dumps(list(external_ids), protocol=4)


def decode_codec(payload: bytes) -> list:
    try:
        external_ids = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotFormatError(f"snapshot codec section is corrupt: {exc}") from None
    if not isinstance(external_ids, list):
        raise SnapshotFormatError(
            f"snapshot codec section decoded to {type(external_ids).__name__}, expected list"
        )
    return external_ids


def compute_content_hash(offsets, targets, codec_bytes: bytes) -> bytes:
    """``sha256(n || m || offsets || targets || codec)`` in file byte order."""
    n = len(offsets) - 1
    m = len(targets)
    digest = hashlib.sha256()
    digest.update(struct.pack("<QQ", n, m))
    digest.update(_array_bytes_le(offsets))
    digest.update(_array_bytes_le(targets))
    digest.update(codec_bytes)
    return digest.digest()


# --------------------------------------------------------------------------- #
# save / load
# --------------------------------------------------------------------------- #
def save_snapshot(csr: "CSRGraph", path: str | os.PathLike) -> Path:
    """Write ``csr`` to ``path`` atomically (write-to-temp + rename).

    Returns the final path.  The written file's content hash equals
    ``csr.content_hash``, so a later :meth:`SnapshotStore.load_or_build` can
    cheaply decide whether the file still matches the live graph.
    """
    _record_save()
    path = Path(path)
    codec_bytes = encode_codec(csr.external_ids)
    content_hash = csr.content_hash
    header = _HEADER_STRUCT.pack(
        MAGIC,
        FORMAT_VERSION,
        0,
        0,
        csr.n,
        csr.num_edges,
        len(codec_bytes),
        content_hash,
    )
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as handle:
            handle.write(header)
            handle.write(_array_bytes_le(csr.offsets))
            handle.write(_array_bytes_le(csr.targets))
            handle.write(codec_bytes)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def read_header(data: bytes | memoryview, *, source: str = "snapshot") -> SnapshotHeader:
    """Decode and validate the fixed-size header from ``data``."""
    if len(data) < HEADER_SIZE:
        raise SnapshotFormatError(
            f"{source}: file too small for a snapshot header "
            f"({len(data)} < {HEADER_SIZE} bytes)"
        )
    magic, version, flags, reserved, n, m, codec_length, content_hash = _HEADER_STRUCT.unpack(
        bytes(data[:HEADER_SIZE])
    )
    if magic != MAGIC:
        raise SnapshotFormatError(f"{source}: bad magic {magic!r}, expected {MAGIC!r}")
    if version != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{source}: unsupported snapshot format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if flags or reserved:
        raise SnapshotFormatError(f"{source}: reserved header fields are non-zero")
    return SnapshotHeader(version, n, m, codec_length, content_hash)


def peek_header(path: str | os.PathLike) -> SnapshotHeader:
    """Read just the header of a snapshot file (for staleness checks)."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            head = handle.read(HEADER_SIZE)
    except OSError as exc:
        raise SnapshotFormatError(f"cannot read snapshot {path}: {exc}") from None
    header = read_header(head, source=str(path))
    actual = path.stat().st_size
    if actual != header.file_size:
        raise SnapshotFormatError(
            f"{path}: truncated or oversized snapshot "
            f"(header implies {header.file_size} bytes, file has {actual})"
        )
    return header


def load_snapshot(
    path: str | os.PathLike,
    *,
    mmap: bool = True,
    verify: bool = True,
    source: "Graph | None" = None,
) -> "CSRGraph":
    """Load a snapshot file written by :func:`save_snapshot`.

    With ``mmap=True`` the returned snapshot's ``offsets``/``targets`` are
    zero-copy ``"q"``-cast memoryviews over a read-only mapping of the file;
    with ``mmap=False`` they are private ``array('q')`` copies.  ``verify``
    re-hashes the payload against the stored content hash.
    """
    from repro.graph.kernel import CSRGraph

    path = Path(path)
    use_mmap = mmap and _LITTLE_ENDIAN
    try:
        handle = path.open("rb")
    except OSError as exc:
        raise SnapshotFormatError(f"cannot read snapshot {path}: {exc}") from None

    with handle:
        if use_mmap:
            try:
                mapping = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
            except (ValueError, OSError) as exc:  # e.g. empty file
                raise SnapshotFormatError(f"cannot mmap snapshot {path}: {exc}") from None
            data: bytes | memoryview = memoryview(mapping)
        else:
            mapping = None
            data = handle.read()

    header = read_header(data, source=str(path))
    if len(data) != header.file_size:
        raise SnapshotFormatError(
            f"{path}: truncated or oversized snapshot "
            f"(header implies {header.file_size} bytes, file has {len(data)})"
        )

    offsets_view = data[header.offsets_start : header.targets_start]
    targets_view = data[header.targets_start : header.codec_start]
    codec_bytes = bytes(data[header.codec_start : header.file_size])

    if verify:
        digest = hashlib.sha256()
        digest.update(struct.pack("<QQ", header.n, header.m))
        digest.update(bytes(offsets_view))
        digest.update(bytes(targets_view))
        digest.update(codec_bytes)
        if digest.digest() != header.content_hash:
            raise SnapshotFormatError(
                f"{path}: content hash mismatch — the snapshot file is corrupt"
            )

    external_ids = decode_codec(codec_bytes)
    if len(external_ids) != header.n:
        raise SnapshotFormatError(
            f"{path}: codec lists {len(external_ids)} vertices, header says {header.n}"
        )

    if use_mmap:
        offsets = offsets_view.cast("q")
        targets = targets_view.cast("q")
        snap = CSRGraph(offsets, targets, external_ids, source=source)
        snap._buffer_owner = mapping  # keep the mapping alive with the arrays
    else:
        offsets = array("q")
        offsets.frombytes(bytes(offsets_view))
        targets = array("q")
        targets.frombytes(bytes(targets_view))
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
            offsets.byteswap()
            targets.byteswap()
        snap = CSRGraph(offsets, targets, external_ids, source=source)
    snap._content_hash = header.content_hash
    return snap


def ensure_saved(csr: "CSRGraph", path: str | os.PathLike) -> Path:
    """Make sure ``path`` holds exactly ``csr`` (content-hash checked).

    A readable file whose stored hash matches is left untouched; anything
    else (missing, unreadable, stale) is atomically rewritten.
    """
    path = Path(path)
    if path.exists():
        try:
            if peek_header(path).content_hash == csr.content_hash:
                return path
        except SnapshotFormatError:
            pass
    return save_snapshot(csr, path)


# --------------------------------------------------------------------------- #
# the keyed on-disk store
# --------------------------------------------------------------------------- #
_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(key: str) -> str:
    """Filesystem-safe cache file stem for an arbitrary key string."""
    cleaned = _SLUG_RE.sub("_", key).strip("_") or "snapshot"
    if len(cleaned) > 80:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
        cleaned = f"{cleaned[:60]}_{digest}"
    return cleaned


class SnapshotStore:
    """A directory of persisted CSR snapshots, keyed by dataset identity.

    ``load_or_build(graph, key)`` is the cache entry point: it takes the
    graph's (in-process cached) snapshot, compares its content hash with the
    stored file's header, and

    * on a match, returns the **mmap-backed** load of the file — all callers
      in all processes share one physical copy through the page cache;
    * on a miss or a stale hash (the graph was mutated since the file was
      written), rewrites the file and returns the fresh snapshot.

    ``load(key)`` trusts the file without consulting a live graph — that is
    the pay-once-per-dataset path used by worker processes and warm starts.

    Sharding policy
    ---------------
    A store can persist **sharded** snapshots (one ``.csrm`` manifest plus
    per-vertex-range segment files, :mod:`repro.graph.shard_store`) instead
    of monolithic ``.csr`` files:

    * ``shards=N`` shards every snapshot into exactly ``N`` range segments
      (the superstep executor's ``partition_range`` geometry), while
    * ``shard_threshold_bytes=B`` shards only snapshots whose array payload
      exceeds ``B``, splitting greedily so each segment file stays ≤ ``B`` —
      the ``--memory-budget`` contract: no worker ever maps more than ``B``
      bytes of snapshot.

    :meth:`shard_plan` exposes the decision (``None`` means monolithic);
    :meth:`fetch` transparently maintains whichever format the policy picks,
    with the same hit/stale/miss accounting either way.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        shards: int | None = None,
        shard_threshold_bytes: int | None = None,
        compact_fraction: float = 0.25,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be at least 1 (got {shards})")
        if shard_threshold_bytes is not None and shard_threshold_bytes < 1:
            raise ValueError(
                f"shard_threshold_bytes must be positive (got {shard_threshold_bytes})"
            )
        if not 0.0 < compact_fraction:
            raise ValueError(
                f"compact_fraction must be positive (got {compact_fraction})"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shards = shards
        self.shard_threshold_bytes = shard_threshold_bytes
        #: journal compaction threshold: a journaled graph's pending delta
        #: records are folded into a fresh base snapshot once they exceed
        #: this fraction of the base edge count
        self.compact_fraction = compact_fraction
        #: outcome of the most recent :meth:`fetch` in *any* thread — ``"hit"``
        #: (file matched; the mmap load was returned), ``"stale"`` (file
        #: existed but was unreadable or its hash no longer matched;
        #: rewritten) or ``"miss"`` (no file; written).  ``None`` before the
        #: first call.  Kept for observability; concurrent callers must use
        #: the outcome :meth:`fetch` *returns* instead of reading this back
        #: (a second thread's fetch may land in between)
        self.last_outcome: str | None = None
        #: cumulative :meth:`fetch` outcome counts — the provenance
        #: instrumentation the session layer and its tests read; mutated under
        #: a lock, so totals stay exact under concurrent plans
        self.counters: dict[str, int] = {
            "hit": 0,
            "stale": 0,
            "miss": 0,
            "base+delta": 0,
            "compact": 0,
        }
        self._lock = threading.Lock()

    def path_for(self, key: str) -> Path:
        return self.directory / f"{_slug(key)}.csr"

    def delta_path_for(self, key: str) -> Path:
        """Where a journaled graph's delta sidecar for ``key`` lives."""
        return self.directory / f"{_slug(key)}.csrd"

    def manifest_path_for(self, key: str) -> Path:
        """Where a *sharded* snapshot's manifest for ``key`` lives."""
        from repro.graph.shard_store import MANIFEST_SUFFIX

        return self.directory / f"{_slug(key)}{MANIFEST_SUFFIX}"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists() or self.manifest_path_for(key).exists()

    @property
    def sharded(self) -> bool:
        """Whether this store's policy can ever produce sharded snapshots."""
        return self.shards is not None or self.shard_threshold_bytes is not None

    def shard_plan(self, csr: "CSRGraph") -> "list[tuple[int, int]] | None":
        """The shard ranges this store's policy assigns ``csr``.

        ``None`` means "persist monolithically": no policy configured, an
        empty graph, or a payload under the size threshold.  Non-``None`` is
        the exact, deterministic shard geometry — callers reuse it as the
        worker partition bounds so shard files and executor partitions align.
        """
        from repro.graph import shard_store

        if csr.n == 0:
            return None
        if self.shards is not None:
            return shard_store.plan_shard_ranges(csr, shards=self.shards)
        if self.shard_threshold_bytes is not None:
            if shard_store.snapshot_payload_bytes(csr) > self.shard_threshold_bytes:
                return shard_store.plan_shard_ranges(
                    csr, max_bytes=self.shard_threshold_bytes
                )
        return None

    def save(self, csr: "CSRGraph", key: str) -> Path:
        return save_snapshot(csr, self.path_for(key))

    def load(self, key: str, *, mmap: bool = True, verify: bool = True) -> "CSRGraph":
        return load_snapshot(self.path_for(key), mmap=mmap, verify=verify)

    def load_or_build(self, graph: "Graph", key: str, *, mmap: bool = True) -> "CSRGraph":
        """The current snapshot of ``graph``, backed by the store (see
        :meth:`fetch`, which additionally returns the per-call outcome)."""
        return self.fetch(graph, key, mmap=mmap)[0]

    def fetch(
        self, graph: "Graph", key: str, *, mmap: bool = True
    ) -> "tuple[CSRGraph, str]":
        """The current snapshot of ``graph``, backed by the store, plus this
        call's outcome: ``(snapshot, "hit" | "stale" | "miss")`` — or, for a
        :class:`~repro.graph.delta.JournaledGraph` with pending deltas,
        ``"base+delta"`` / ``"compact"`` (see :meth:`_fetch_journaled`).

        Correctness-first caching: this *builds* (or reuses the in-process
        cache of) the graph's snapshot to compare content hashes, so it never
        avoids the build itself — use :meth:`load` when the file can be
        trusted without a live graph.  A stale or corrupt file is rewritten;
        on a hash match the mmap-backed load is adopted as the graph's cached
        snapshot (shared physical memory, and the heap copy can be freed).
        The returned snapshot keeps ``graph`` as its property source.

        The outcome is *returned* rather than left in shared store state:
        with concurrent plans in one process (the graph service), a
        read-back of :attr:`last_outcome` could observe another thread's
        fetch instead of this one's.
        """
        snap = graph.snapshot()
        ranges = self.shard_plan(snap)
        if ranges is not None:
            return self._fetch_sharded(graph, snap, key, ranges)
        from repro.graph.delta import JournaledGraph

        if isinstance(graph, JournaledGraph) and graph.journal.records:
            return self._fetch_journaled(graph, snap, key, mmap=mmap)
        path = self.path_for(key)
        if isinstance(graph, JournaledGraph):
            # no pending deltas: the merged snapshot *is* the base, so the
            # monolithic logic below applies and any delta sidecar is spent
            self.delta_path_for(key).unlink(missing_ok=True)
        existed = path.exists()
        if existed:
            try:
                header = peek_header(path)
                if header.content_hash == snap.content_hash:
                    loaded = load_snapshot(path, mmap=mmap, verify=False, source=graph)
                    self._record("hit")
                    return graph.adopt_snapshot(loaded), "hit"
            except SnapshotFormatError:
                pass  # unreadable/stale file: fall through and rewrite it
        save_snapshot(snap, path)
        outcome = "stale" if existed else "miss"
        self._record(outcome)
        return snap, outcome

    def _fetch_journaled(
        self, graph, snap: "CSRGraph", key: str, *, mmap: bool = True
    ) -> "tuple[CSRGraph, str]":
        """:meth:`fetch` for a :class:`~repro.graph.delta.JournaledGraph`
        with pending delta records.

        Instead of declaring the persisted base stale and rewriting the whole
        snapshot, the base file stays put and the pending records are synced
        to the ``.csrd`` sidecar with ``O(new records)`` I/O — outcome
        ``"base+delta"`` (the served snapshot is the overlay merge ``graph``
        already holds; on a valid on-disk base its heap arrays are swapped
        for the mmap load).  Once the journal outgrows
        ``compact_fraction × base edges``, the merged snapshot is persisted
        as a fresh base and the journal rebased onto it — outcome
        ``"compact"``.  A corrupt sidecar falls back to a full rebuild
        (outcome ``"stale"``) and leaves a provenance note on the graph.
        """
        path = self.path_for(key)
        delta_path = self.delta_path_for(key)
        journal = graph.journal
        base = graph.base_snapshot

        threshold = max(1, int(self.compact_fraction * base.num_edges))
        if len(journal.records) > threshold:
            save_snapshot(snap, path)
            delta_path.unlink(missing_ok=True)
            graph.rebase_onto(snap)
            self._record("compact")
            return snap, "compact"

        base_on_disk = False
        if path.exists():
            try:
                base_on_disk = peek_header(path).content_hash == base.content_hash
            except SnapshotFormatError:
                pass  # unreadable base: rewrite it below
        if not base_on_disk:
            save_snapshot(base, path)
        try:
            journal.sync(delta_path)
        except SnapshotFormatError:
            # corrupt sidecar: fall back to a clean full rebuild — persist
            # the merged snapshot as the new base and rebase onto it
            delta_path.unlink(missing_ok=True)
            save_snapshot(snap, path)
            graph.rebase_onto(snap, compacted=False)
            graph.add_note(
                "note: delta journal file was corrupt; rebuilt the base snapshot"
            )
            self._record("stale")
            return snap, "stale"
        if base_on_disk and mmap and base._buffer_owner is None:
            loaded = load_snapshot(path, mmap=True, verify=False, source=graph)
            graph.adopt_snapshot(loaded)
        self._record("base+delta")
        return snap, "base+delta"

    def _fetch_sharded(
        self, graph: "Graph", snap: "CSRGraph", key: str, ranges: list
    ) -> "tuple[CSRGraph, str]":
        """:meth:`fetch` for a policy that sharded this snapshot.

        Hit/stale/miss semantics mirror the monolithic branch, with two
        differences: staleness additionally covers a *geometry* change (same
        content, different shard ranges — e.g. a new memory budget), and a
        hit returns the graph's own heap snapshot rather than an mmap load.
        The coordinator process keeps the heap arrays it already built; the
        whole point of the format is that only *workers* map snapshot bytes,
        each its own segment file.
        """
        from repro.graph import shard_store

        path = self.manifest_path_for(key)
        existed = path.exists()
        if existed:
            try:
                manifest = shard_store.peek_manifest(path)
                if (
                    manifest.content_hash == snap.content_hash
                    and manifest.ranges() == ranges
                    and shard_store.verify_shard_files(manifest)
                ):
                    self._record("hit")
                    return snap, "hit"
            except SnapshotFormatError:
                pass  # unreadable/stale manifest: fall through and rewrite
        shard_store.save_sharded_snapshot(snap, path, ranges=ranges)
        outcome = "stale" if existed else "miss"
        self._record(outcome)
        return snap, outcome

    def _record(self, outcome: str) -> None:
        with self._lock:
            self.last_outcome = outcome
            self.counters[outcome] += 1
