"""Analysis helpers over graphs and representations.

These functions power the compression-comparison experiments (Figure 10,
Table 5): per-representation node/edge counts, logical-equivalence checks
between representations, and memory estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.graph.api import Graph, logical_edge_set
from repro.graph.bitmap import BitmapGraph
from repro.graph.condensed import CondensedGraph
from repro.graph.condensed_base import CondensedBackedGraph
from repro.graph.dedup2 import Dedup2Graph
from repro.graph.expanded import ExpandedGraph
from repro.utils.memory import estimate_adjacency_bytes, estimate_bitmap_bytes


@dataclass(frozen=True)
class RepresentationStats:
    """Size statistics of one in-memory representation (Figure 10 columns)."""

    representation: str
    real_nodes: int
    virtual_nodes: int
    total_nodes: int
    edges: int
    bitmaps: int
    estimated_bytes: int

    def as_row(self) -> dict[str, int | str]:
        return {
            "representation": self.representation,
            "real_nodes": self.real_nodes,
            "virtual_nodes": self.virtual_nodes,
            "total_nodes": self.total_nodes,
            "edges": self.edges,
            "bitmaps": self.bitmaps,
            "estimated_bytes": self.estimated_bytes,
        }


def representation_stats(graph: Graph) -> RepresentationStats:
    """Node/edge/bitmap counts plus an analytic memory estimate for ``graph``.

    "edges" means *physical* edges stored by the representation: adjacency
    entries for EXP, condensed edges for C-DUP/DEDUP-1/BITMAP, membership +
    virtual-virtual edges for DEDUP-2.  That is what Figure 10 plots.
    """
    if isinstance(graph, ExpandedGraph):
        real = graph.num_vertices()
        edges = graph.num_edges()
        return RepresentationStats(
            representation=graph.representation_name,
            real_nodes=real,
            virtual_nodes=0,
            total_nodes=real,
            edges=edges,
            bitmaps=0,
            estimated_bytes=estimate_adjacency_bytes(real, edges),
        )
    if isinstance(graph, Dedup2Graph):
        real = graph.num_vertices()
        virtual = graph.num_virtual_nodes
        edges = graph.num_structure_edges()
        return RepresentationStats(
            representation=graph.representation_name,
            real_nodes=real,
            virtual_nodes=virtual,
            total_nodes=real + virtual,
            edges=edges,
            bitmaps=0,
            estimated_bytes=estimate_adjacency_bytes(real + virtual, edges),
        )
    if isinstance(graph, CondensedBackedGraph):
        condensed = graph.condensed
        real = condensed.num_real_nodes
        virtual = condensed.num_virtual_nodes
        edges = condensed.num_condensed_edges
        bitmaps = 0
        extra_bytes = 0
        if isinstance(graph, BitmapGraph):
            bitmaps = graph.bitmap_count()
            extra_bytes = estimate_bitmap_bytes(graph.bitmap_sizes())
        return RepresentationStats(
            representation=graph.representation_name,
            real_nodes=real,
            virtual_nodes=virtual,
            total_nodes=real + virtual,
            edges=edges,
            bitmaps=bitmaps,
            estimated_bytes=estimate_adjacency_bytes(real + virtual, edges) + extra_bytes,
        )
    # generic fallback
    real = graph.num_vertices()
    edges = graph.num_edges()
    return RepresentationStats(
        representation=graph.representation_name,
        real_nodes=real,
        virtual_nodes=0,
        total_nodes=real,
        edges=edges,
        bitmaps=0,
        estimated_bytes=estimate_adjacency_bytes(real, edges),
    )


def logically_equivalent(
    first: Graph, second: Graph, ignore_self_loops: bool = False
) -> bool:
    """True if the two representations expose exactly the same logical graph
    (same vertex set, same de-duplicated edge set).

    ``ignore_self_loops`` compares the edge sets modulo ``v -> v`` edges; use
    it when one side is a DEDUP-2 representation, which by design cannot
    represent self-loops (see :mod:`repro.graph.dedup2`).
    """
    if set(first.get_vertices()) != set(second.get_vertices()):
        return False
    first_edges = logical_edge_set(first)
    second_edges = logical_edge_set(second)
    if ignore_self_loops:
        first_edges = {(u, v) for (u, v) in first_edges if u != v}
        second_edges = {(u, v) for (u, v) in second_edges if u != v}
    return first_edges == second_edges


def expanded_from_condensed(condensed: CondensedGraph) -> ExpandedGraph:
    """Materialise the expanded graph described by a condensed graph."""
    graph = ExpandedGraph()
    for node in condensed.real_nodes():
        external = condensed.external(node)
        graph.add_vertex(external, **condensed.node_properties.get(node, {}))
    for source, target in condensed.expanded_edges():
        graph.add_edge(source, target)
    return graph


def condensed_from_expanded(graph: ExpandedGraph) -> CondensedGraph:
    """Trivial condensed graph with no virtual nodes (all direct edges).

    Useful for feeding expanded graphs into APIs that expect a condensed
    structure (e.g. the VMiner comparison).
    """
    condensed = CondensedGraph()
    for vertex in graph.get_vertices():
        condensed.add_real_node(vertex)
    for source in graph.get_vertices():
        for target in graph.get_neighbors(source):
            condensed.add_edge(condensed.internal(source), condensed.internal(target))
    return condensed


def duplication_profile(condensed: CondensedGraph) -> dict[str, float]:
    """Summary statistics of the duplication present in a condensed graph."""
    duplicates = 0
    logical = 0
    worst = 0
    for node in condensed.real_nodes():
        count = condensed.duplication_count(node)
        duplicates += count
        worst = max(worst, count)
        logical += len(condensed.neighbor_set(node))
    return {
        "duplicate_paths": float(duplicates),
        "logical_edges": float(logical),
        "duplication_ratio": duplicates / logical if logical else 0.0,
        "worst_vertex_duplicates": float(worst),
    }


def degree_histogram(graph: Graph, bins: int = 10) -> dict[str, list[float]]:
    """Simple degree histogram used by the examples for exploratory output."""
    degrees = sorted(graph.degree(v) for v in graph.get_vertices())
    if not degrees:
        return {"bin_edges": [], "counts": []}
    low, high = degrees[0], degrees[-1]
    width = max(1.0, (high - low) / bins)
    edges = [low + i * width for i in range(bins + 1)]
    counts = [0.0] * bins
    for degree in degrees:
        index = min(bins - 1, int((degree - low) / width))
        counts[index] += 1
    return {"bin_edges": edges, "counts": counts}


def connected_real_pairs(condensed: CondensedGraph) -> set[tuple[Hashable, Hashable]]:
    """The logical edge set of a condensed graph, as external-ID pairs."""
    return set(condensed.expanded_edges())
