"""BITMAP — deduplication via per-virtual-node bitmaps.

The condensed structure is kept exactly as extracted (same edges as C-DUP),
but virtual nodes carry *bitmaps indexed by source real node*: when a
traversal that started at ``u_s`` reaches virtual node ``V`` and ``V`` has a
bitmap for ``u``, only the out-edges whose bit is set are followed.  The
bitmaps are initialised by the preprocessing algorithms BITMAP-1 and BITMAP-2
(:mod:`repro.dedup.bitmap1`, :mod:`repro.dedup.bitmap2`) so that every real
neighbor of ``u`` is produced exactly once — removing the need for the
per-call hash set C-DUP pays (Section 4.3, "BITMAP").
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.condensed import CondensedGraph
from repro.graph.condensed_base import CondensedBackedGraph

#: shared empty per-source bitmap dict (avoids an allocation per virtual node
#: in the snapshot fast path)
_EMPTY: dict[int, int] = {}


class BitmapGraph(CondensedBackedGraph):
    """Graph API over a condensed graph augmented with traversal bitmaps."""

    representation_name = "BITMAP"

    def __init__(self, condensed: CondensedGraph) -> None:
        super().__init__(condensed)
        #: virtual node -> {source real node -> bitmask over positions of
        #: ``condensed.out(virtual)`` (bit i set = follow the i-th out-edge)}
        self._bitmaps: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------ #
    # bitmap management (used by the preprocessing algorithms)
    # ------------------------------------------------------------------ #
    def set_bitmap(self, virtual: int, source: int, bitmask: int) -> None:
        """Attach/overwrite the bitmap of ``virtual`` for ``source``."""
        self._bitmaps.setdefault(virtual, {})[source] = bitmask
        self._bump_version()  # bitmaps steer traversal, so snapshots depend on them

    def get_bitmap(self, virtual: int, source: int) -> int | None:
        return self._bitmaps.get(virtual, {}).get(source)

    def has_bitmap(self, virtual: int, source: int) -> bool:
        return source in self._bitmaps.get(virtual, {})

    def remove_bitmap(self, virtual: int, source: int) -> None:
        self._bitmaps.get(virtual, {}).pop(source, None)
        self._bump_version()

    def iter_bitmaps(self):
        """Yield ``(virtual, source, bitmask)`` for every stored bitmap."""
        for virtual, per_source in self._bitmaps.items():
            for source, bitmask in per_source.items():
                yield virtual, source, bitmask

    def bitmap_count(self) -> int:
        """Total number of bitmaps stored (Figure 10 / memory accounting)."""
        return sum(len(per_source) for per_source in self._bitmaps.values())

    def bitmap_bit_count(self) -> int:
        """Total number of bits stored across all bitmaps."""
        total = 0
        for virtual, per_source in self._bitmaps.items():
            bits = len(self._cg.out(virtual))
            total += bits * len(per_source)
        return total

    def bitmap_sizes(self) -> list[tuple[int, int]]:
        """``(num_bitmaps, bits_per_bitmap)`` per virtual node, for memory estimates."""
        return [
            (len(per_source), len(self._cg.out(virtual)))
            for virtual, per_source in self._bitmaps.items()
            if per_source
        ]

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def _internal_neighbors(self, node: int) -> Iterator[int]:
        visited_virtual: set[int] = set()
        stack = list(self._cg.out(node))
        while stack:
            current = stack.pop()
            if CondensedGraph.is_real(current):
                yield current
                continue
            if current in visited_virtual:
                continue
            visited_virtual.add(current)
            targets = self._cg.out(current)
            bitmap = self.get_bitmap(current, node)
            if bitmap is None:
                stack.extend(targets)
            else:
                for position, target in enumerate(targets):
                    if bitmap & (1 << position):
                        stack.append(target)

    def _internal_neighbors_list(self, node: int) -> list[int]:
        # snapshot fast path: bitmap-guided walk without generator overhead
        succ = self._cg.succ
        bitmaps = self._bitmaps
        visited_virtual: set[int] = set()
        result: list[int] = []
        push = result.append
        stack = list(succ[node])
        while stack:
            current = stack.pop()
            if current >= 0:
                push(current)
                continue
            if current in visited_virtual:
                continue
            visited_virtual.add(current)
            targets = succ[current]
            bitmap = bitmaps.get(current, _EMPTY).get(node)
            if bitmap is None:
                stack.extend(targets)
            else:
                for position, target in enumerate(targets):
                    if bitmap >> position & 1:
                        stack.append(target)
        return result

    def num_edges(self) -> int:
        return sum(self.degree(v) for v in self.get_vertices())
