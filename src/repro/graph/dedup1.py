"""DEDUP-1 — the condensed, deduplicated representation.

Structurally identical to C-DUP (real nodes, virtual nodes, direct edges) but
guaranteed to contain **at most one path between any pair of real nodes**, so
neighbor iteration needs no hash set: a plain depth-first walk through the
virtual nodes yields each neighbor exactly once (Section 4.3, "DEDUP-1").

Instances are normally produced by one of the deduplication algorithms in
:mod:`repro.dedup`; constructing one directly from a duplicated condensed
graph raises unless ``trusted=True`` (used by the algorithms themselves, which
guarantee the invariant).
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import RepresentationError
from repro.graph.condensed import CondensedGraph
from repro.graph.condensed_base import CondensedBackedGraph


class Dedup1Graph(CondensedBackedGraph):
    """Graph API over a duplication-free condensed graph."""

    representation_name = "DEDUP-1"

    def __init__(self, condensed: CondensedGraph, trusted: bool = False) -> None:
        super().__init__(condensed)
        if not trusted and condensed.has_duplication():
            raise RepresentationError(
                "condensed graph has duplicate paths; pass it through a "
                "deduplication algorithm (repro.dedup) before wrapping it in Dedup1Graph"
            )

    def _internal_neighbors(self, node: int) -> Iterator[int]:
        # no hash set required: the deduplication invariant guarantees each
        # real target is reached by exactly one path
        stack = list(self._cg.out(node))
        while stack:
            current = stack.pop()
            if CondensedGraph.is_real(current):
                yield current
            else:
                stack.extend(self._cg.out(current))

    def _internal_neighbors_list(self, node: int) -> list[int]:
        # snapshot fast path: the invariant makes this a plain DFS flatten
        succ = self._cg.succ
        result: list[int] = []
        push = result.append
        stack = list(succ[node])
        extend = stack.extend
        while stack:
            current = stack.pop()
            if current >= 0:
                push(current)
            else:
                extend(succ[current])
        return result

    def num_edges(self) -> int:
        return sum(self.degree(v) for v in self.get_vertices())
