"""The relational substrate GraphGen extracts graphs from.

This package is a small, self-contained in-memory relational engine: schemas,
row-store tables, a statistics catalog, physical operators, a conjunctive-
query executor, SQL generation, and an optional ``sqlite3`` execution backend.
"""

from repro.relational.schema import Column, ForeignKey, TableSchema, make_schema
from repro.relational.table import Table, table_from_dicts
from repro.relational.catalog import Catalog, ColumnStats
from repro.relational.database import Database
from repro.relational.query import (
    Comparison,
    ConjunctiveQuery,
    Const,
    QueryAtom,
    evaluate,
    evaluate_bruteforce,
)
from repro.relational.sql import render_value, to_sql, create_table_sql
from repro.relational.sqlite_backend import SQLiteBackend
from repro.relational.pushdown import (
    CompiledEdgeRule,
    PushdownExecutor,
    PushdownProgram,
    PushdownUnsupported,
    compile_plan,
)
from repro.relational.aggregates import (
    AGGREGATE_FUNCTIONS,
    AggregateQuery,
    AggregateSpec,
    HavingClause,
    aggregate_to_sql,
    evaluate_aggregate,
    group_by,
)
from repro.relational.csv_io import (
    read_database,
    read_table_csv,
    write_database,
    write_table_csv,
)

__all__ = [
    "Column",
    "ForeignKey",
    "TableSchema",
    "make_schema",
    "Table",
    "table_from_dicts",
    "Catalog",
    "ColumnStats",
    "Database",
    "Comparison",
    "ConjunctiveQuery",
    "Const",
    "QueryAtom",
    "evaluate",
    "evaluate_bruteforce",
    "render_value",
    "to_sql",
    "create_table_sql",
    "SQLiteBackend",
    "CompiledEdgeRule",
    "PushdownExecutor",
    "PushdownProgram",
    "PushdownUnsupported",
    "compile_plan",
    "AGGREGATE_FUNCTIONS",
    "AggregateQuery",
    "AggregateSpec",
    "HavingClause",
    "aggregate_to_sql",
    "evaluate_aggregate",
    "group_by",
    "read_database",
    "read_table_csv",
    "write_database",
    "write_table_csv",
]
