"""In-memory table storage.

Rows are stored as tuples in a list (row store).  Tables support bulk insert,
iteration, per-column value access, and on-demand hash indexes that the join
operators use.  Indexes are invalidated automatically on mutation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import SchemaError
from repro.relational.schema import TableSchema


class Table:
    """A single relational table: a schema plus a list of row tuples."""

    def __init__(self, schema: TableSchema, rows: Iterable[Sequence[Any]] | None = None):
        self.schema = schema
        self._rows: list[tuple[Any, ...]] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}
        #: bumped on every mutation so callers (e.g. the Database's cached
        #: SQLite mirror) can detect staleness without hashing rows
        self._version = 0
        if rows is not None:
            self.insert_many(rows)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def rows(self) -> list[tuple[Any, ...]]:
        """The underlying row list (do not mutate)."""
        return self._rows

    def row(self, index: int) -> tuple[Any, ...]:
        return self._rows[index]

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, row: Sequence[Any]) -> None:
        """Insert a single row after validating it against the schema."""
        self._rows.append(self.schema.validate_row(row))
        self._indexes.clear()
        self._version += 1

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        validated = [self.schema.validate_row(r) for r in rows]
        self._rows.extend(validated)
        self._indexes.clear()
        self._version += 1
        return len(validated)

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.clear()
        self._version += 1

    @property
    def data_version(self) -> int:
        """Monotonic counter incremented by every mutation of this table."""
        return self._version

    # ------------------------------------------------------------------ #
    # column access & statistics support
    # ------------------------------------------------------------------ #
    def column_values(self, column: str) -> list[Any]:
        """All values (with repetition) of ``column``."""
        idx = self.schema.column_index(column)
        return [row[idx] for row in self._rows]

    def distinct_values(self, column: str) -> set[Any]:
        idx = self.schema.column_index(column)
        return {row[idx] for row in self._rows}

    def distinct_count(self, column: str) -> int:
        """Number of distinct values in ``column`` (the planner's ``d``)."""
        return len(self.distinct_values(column))

    def project(self, columns: Sequence[str], distinct: bool = False) -> list[tuple[Any, ...]]:
        """Project onto ``columns`` preserving row order; optionally dedupe."""
        idxs = [self.schema.column_index(c) for c in columns]
        projected = [tuple(row[i] for i in idxs) for row in self._rows]
        if not distinct:
            return projected
        seen: set[tuple[Any, ...]] = set()
        out: list[tuple[Any, ...]] = []
        for item in projected:
            if item not in seen:
                seen.add(item)
                out.append(item)
        return out

    # ------------------------------------------------------------------ #
    # indexes
    # ------------------------------------------------------------------ #
    def index_on(self, column: str) -> dict[Any, list[int]]:
        """Hash index ``value -> [row positions]``, built lazily and cached."""
        if column not in self._indexes:
            idx = self.schema.column_index(column)
            index: dict[Any, list[int]] = {}
            for pos, row in enumerate(self._rows):
                index.setdefault(row[idx], []).append(pos)
            self._indexes[column] = index
        return self._indexes[column]

    def lookup(self, column: str, value: Any) -> list[tuple[Any, ...]]:
        """All rows whose ``column`` equals ``value`` (uses the hash index)."""
        positions = self.index_on(column).get(value, [])
        return [self._rows[p] for p in positions]

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def copy(self, name: str | None = None) -> "Table":
        """Shallow copy (rows are immutable tuples, so this is safe)."""
        schema = self.schema
        if name is not None:
            schema = TableSchema(
                name=name,
                columns=schema.columns,
                primary_key=schema.primary_key,
                foreign_keys=schema.foreign_keys,
            )
        clone = Table(schema)
        clone._rows = list(self._rows)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Table({self.name!r}, rows={self.num_rows})"


def table_from_dicts(schema: TableSchema, records: Iterable[dict[str, Any]]) -> Table:
    """Build a table from dict records keyed by column name.

    Missing keys raise :class:`SchemaError` unless the column is nullable, in
    which case ``None`` is stored.
    """
    table = Table(schema)
    names = schema.column_names
    rows = []
    for record in records:
        row = []
        for name in names:
            if name in record:
                row.append(record[name])
            elif schema.column(name).nullable:
                row.append(None)
            else:
                raise SchemaError(
                    f"record {record!r} is missing required column {name!r} "
                    f"of table {schema.name!r}"
                )
        rows.append(row)
    table.insert_many(rows)
    return table
