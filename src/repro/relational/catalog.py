"""System catalog: table and column statistics.

GraphGen's planner decides whether a join is "large-output" using the number
of distinct values of the join attribute (PostgreSQL's ``pg_stats.n_distinct``
in the paper).  This catalog computes the statistics exactly from the stored
tables and caches them; ``refresh()`` recomputes after data changes (the
equivalent of ``ANALYZE``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.database import Database


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column of one table."""

    table: str
    column: str
    row_count: int
    n_distinct: int

    @property
    def selectivity(self) -> float:
        """``n_distinct / row_count`` — the paper's Table 6 definition."""
        if self.row_count == 0:
            return 0.0
        return self.n_distinct / self.row_count

    @property
    def avg_rows_per_value(self) -> float:
        """Average fan-out of a value of this column."""
        if self.n_distinct == 0:
            return 0.0
        return self.row_count / self.n_distinct


class Catalog:
    """Caching statistics provider over a :class:`~repro.relational.database.Database`."""

    def __init__(self, database: "Database") -> None:
        self._db = database
        self._column_stats: dict[tuple[str, str], ColumnStats] = {}
        self._row_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Drop all cached statistics (recomputed lazily on next access)."""
        self._column_stats.clear()
        self._row_counts.clear()

    def row_count(self, table: str) -> int:
        if table not in self._row_counts:
            self._row_counts[table] = self._db.table(table).num_rows
        return self._row_counts[table]

    def column_stats(self, table: str, column: str) -> ColumnStats:
        key = (table, column)
        if key not in self._column_stats:
            tab = self._db.table(table)
            if not tab.schema.has_column(column):
                raise SchemaError(f"no column {column!r} in table {table!r}")
            self._column_stats[key] = ColumnStats(
                table=table,
                column=column,
                row_count=tab.num_rows,
                n_distinct=tab.distinct_count(column),
            )
        return self._column_stats[key]

    def n_distinct(self, table: str, column: str) -> int:
        return self.column_stats(table, column).n_distinct

    def selectivity(self, table: str, column: str) -> float:
        return self.column_stats(table, column).selectivity

    # ------------------------------------------------------------------ #
    def estimated_join_output(
        self, left_table: str, left_column: str, right_table: str, right_column: str
    ) -> float:
        """Estimated output cardinality of an equi-join, assuming the join
        attribute is uniformly distributed (the paper's assumption).

        ``|R| * |S| / max(d_R, d_S)`` — the textbook System-R estimate.
        """
        left = self.column_stats(left_table, left_column)
        right = self.column_stats(right_table, right_column)
        d = max(left.n_distinct, right.n_distinct)
        if d == 0:
            return 0.0
        return left.row_count * right.row_count / d

    def is_large_output_join(
        self,
        left_table: str,
        left_column: str,
        right_table: str,
        right_column: str,
        threshold_factor: float = 2.0,
    ) -> bool:
        """The paper's large-output-join test (Section 4.2, Step 2).

        A join is large-output when ``|Ri| * |Ri+1| / d > factor * (|Ri| +
        |Ri+1|)``, with ``d`` the distinct count of the join attribute and
        ``factor`` defaulting to the paper's constant 2.
        """
        left_rows = self.row_count(left_table)
        right_rows = self.row_count(right_table)
        estimate = self.estimated_join_output(left_table, left_column, right_table, right_column)
        return estimate > threshold_factor * (left_rows + right_rows)

    def summary(self) -> dict[str, dict[str, int]]:
        """Row counts and per-column distinct counts for every table."""
        result: dict[str, dict[str, int]] = {}
        for name in self._db.table_names():
            table = self._db.table(name)
            result[name] = {"__rows__": table.num_rows}
            for column in table.schema.column_names:
                result[name][column] = self.n_distinct(name, column)
        return result
