"""Conjunctive-query representation and evaluation.

GraphGen's extraction queries decompose into *conjunctive queries* (select–
project–join) over the base tables.  This module defines a small logical
representation — :class:`QueryAtom`, :class:`Comparison`,
:class:`ConjunctiveQuery` — and an executor that evaluates them with hash
joins over the in-memory tables.

Argument convention inside :class:`QueryAtom`:

* a ``str`` is a **variable** name,
* a :class:`Const` wraps a **constant** that must match exactly,
* ``None`` is an **anonymous** ("don't care") position.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.operators import distinct as distinct_op

Row = tuple[Any, ...]

COMPARISON_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Const:
    """A constant argument inside a query atom."""

    value: Any


@dataclass(frozen=True)
class Comparison:
    """A selection predicate ``variable <op> value``."""

    variable: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, bound_value: Any) -> bool:
        try:
            return COMPARISON_OPS[self.op](bound_value, self.value)
        except TypeError:
            return False


@dataclass(frozen=True)
class QueryAtom:
    """One occurrence of a table in a conjunctive query body."""

    table: str
    arguments: tuple[Any, ...]

    def variables(self) -> list[str]:
        """Variable names appearing in this atom, in positional order."""
        return [a for a in self.arguments if isinstance(a, str)]

    def variable_positions(self) -> dict[str, list[int]]:
        positions: dict[str, list[int]] = {}
        for i, arg in enumerate(self.arguments):
            if isinstance(arg, str):
                positions.setdefault(arg, []).append(i)
        return positions


@dataclass
class ConjunctiveQuery:
    """``head(head_vars) :- atoms, comparisons`` with set (DISTINCT) semantics."""

    head_vars: Sequence[str]
    atoms: Sequence[QueryAtom]
    comparisons: Sequence[Comparison] = field(default_factory=tuple)
    name: str = "q"

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QueryError(f"query {self.name!r} has no body atoms")
        body_vars = self.all_variables()
        for var in self.head_vars:
            if var not in body_vars:
                raise QueryError(
                    f"head variable {var!r} of query {self.name!r} does not "
                    f"appear in the body (unsafe rule)"
                )
        for comparison in self.comparisons:
            if comparison.variable not in body_vars:
                raise QueryError(
                    f"comparison on unbound variable {comparison.variable!r} "
                    f"in query {self.name!r}"
                )

    def all_variables(self) -> set[str]:
        result: set[str] = set()
        for atom in self.atoms:
            result.update(atom.variables())
        return result

    def tables(self) -> list[str]:
        return [atom.table for atom in self.atoms]


# --------------------------------------------------------------------------- #
# evaluation
# --------------------------------------------------------------------------- #
def _atom_rows(db: Database, atom: QueryAtom, comparisons: Sequence[Comparison]) -> tuple[list[str], list[Row]]:
    """Evaluate a single atom: returns (variable order, rows of bound values).

    Constants and repeated variables inside the atom act as selections;
    comparisons whose variable is bound by this atom are applied immediately.
    """
    table = db.table(atom.table)
    if len(atom.arguments) != table.schema.arity:
        raise QueryError(
            f"atom {atom.table}({', '.join(map(repr, atom.arguments))}) has arity "
            f"{len(atom.arguments)} but table {atom.table!r} has arity {table.schema.arity}"
        )
    var_positions = atom.variable_positions()
    var_order = list(var_positions)
    local_comparisons = [c for c in comparisons if c.variable in var_positions]

    rows: list[Row] = []
    for row in table:
        ok = True
        for i, arg in enumerate(atom.arguments):
            if isinstance(arg, Const) and row[i] != arg.value:
                ok = False
                break
        if not ok:
            continue
        # repeated variable inside the atom => positions must agree
        for positions in var_positions.values():
            if len(positions) > 1:
                first = row[positions[0]]
                if any(row[p] != first for p in positions[1:]):
                    ok = False
                    break
        if not ok:
            continue
        bound = tuple(row[var_positions[v][0]] for v in var_order)
        if all(c.evaluate(bound[var_order.index(c.variable)]) for c in local_comparisons):
            rows.append(bound)
    return var_order, rows


def _join(
    left_vars: list[str],
    left_rows: list[Row],
    right_vars: list[str],
    right_rows: list[Row],
) -> tuple[list[str], list[Row]]:
    """Natural hash join of two bound-variable relations."""
    shared = [v for v in left_vars if v in right_vars]
    right_only = [v for v in right_vars if v not in left_vars]
    out_vars = left_vars + right_only

    left_key_idx = [left_vars.index(v) for v in shared]
    right_key_idx = [right_vars.index(v) for v in shared]
    right_keep_idx = [right_vars.index(v) for v in right_only]

    build: dict[Row, list[Row]] = {}
    for row in right_rows:
        key = tuple(row[i] for i in right_key_idx)
        build.setdefault(key, []).append(tuple(row[i] for i in right_keep_idx))

    out_rows: list[Row] = []
    if not shared:
        # cartesian product
        for lrow in left_rows:
            for extra_rows in build.values():
                for extra in extra_rows:
                    out_rows.append(lrow + extra)
        return out_vars, out_rows

    for lrow in left_rows:
        key = tuple(lrow[i] for i in left_key_idx)
        for extra in build.get(key, ()):
            out_rows.append(lrow + extra)
    return out_vars, out_rows


def _greedy_join_order(query: ConjunctiveQuery) -> list[QueryAtom]:
    """Order atoms so that each one (when possible) shares a variable with the
    atoms already joined — avoids accidental cartesian products for connected
    queries while still handling disconnected ones."""
    remaining = list(query.atoms)
    ordered: list[QueryAtom] = [remaining.pop(0)]
    bound: set[str] = set(ordered[0].variables())
    while remaining:
        pick = None
        for atom in remaining:
            if bound.intersection(atom.variables()):
                pick = atom
                break
        if pick is None:
            pick = remaining[0]
        remaining.remove(pick)
        ordered.append(pick)
        bound.update(pick.variables())
    return ordered


def evaluate(db: Database, query: ConjunctiveQuery, use_distinct: bool = True) -> list[Row]:
    """Evaluate ``query`` against ``db`` and return the projected rows.

    Set semantics (``DISTINCT``) by default, matching the SQL GraphGen
    generates.  Comparisons whose variable is only bound after a join are
    applied as soon as the variable becomes available.
    """
    ordered = _greedy_join_order(query)

    current_vars: list[str] = []
    current_rows: list[Row] = []
    pending = list(query.comparisons)

    for atom in ordered:
        atom_vars, atom_rows = _atom_rows(db, atom, query.comparisons)
        if not current_vars:
            current_vars, current_rows = atom_vars, atom_rows
        else:
            current_vars, current_rows = _join(current_vars, current_rows, atom_vars, atom_rows)
        # apply any comparison that has just become evaluable and was not
        # already applied inside _atom_rows
        still_pending = []
        for comparison in pending:
            if comparison.variable in current_vars:
                idx = current_vars.index(comparison.variable)
                current_rows = [r for r in current_rows if comparison.evaluate(r[idx])]
            else:
                still_pending.append(comparison)
        pending = still_pending

    head_idx = [current_vars.index(v) for v in query.head_vars]
    projected = (tuple(row[i] for i in head_idx) for row in current_rows)
    if use_distinct:
        return list(distinct_op(projected))
    return list(projected)


def evaluate_bruteforce(db: Database, query: ConjunctiveQuery) -> set[Row]:
    """Reference evaluator: full cartesian product then filter.

    Exponential — used only in tests as an oracle on tiny databases.
    """
    tables = [db.table(atom.table) for atom in query.atoms]
    results: set[Row] = set()

    def recurse(atom_index: int, binding: dict[str, Any]) -> None:
        if atom_index == len(query.atoms):
            if all(c.evaluate(binding[c.variable]) for c in query.comparisons):
                results.add(tuple(binding[v] for v in query.head_vars))
            return
        atom = query.atoms[atom_index]
        for row in tables[atom_index]:
            local = dict(binding)
            ok = True
            for value, arg in zip(row, atom.arguments):
                if isinstance(arg, Const):
                    if value != arg.value:
                        ok = False
                        break
                elif isinstance(arg, str):
                    if arg in local and local[arg] != value:
                        ok = False
                        break
                    local[arg] = value
            if ok:
                recurse(atom_index + 1, local)

    recurse(0, {})
    return results
