"""Set-based SQL pushdown: compile an extraction plan into SQL programs.

The row-at-a-time engines in :mod:`repro.core.extractor` pull every segment
row out of the database and build the condensed graph one ``add_edge`` at a
time in Python.  This module lowers an
:class:`~repro.core.planner.ExtractionPlan` into **one SQL program per Edges
rule** and runs it on the database's cached SQLite mirror, so the engine does
the set-based work:

* every segment / full / aggregate query is materialised once into a TEMP
  table (projection, selection and joins happen inside SQLite; aggregate
  rules use the generated ``GROUP BY``/``HAVING`` SQL),
* each chain boundary's distinct join values are numbered with a
  ``DENSE_RANK() OVER (ORDER BY value) - 1`` window function — rank ``r`` at
  boundary ``b`` *is* the virtual node ``first_b - r`` once a block of
  virtual IDs has been reserved for the boundary,
* condensed edges are emitted by joining each segment table against the
  real-node ID map (``ext -> nid``) and the boundary rank tables, with
  ``ORDER BY source, target`` so the result arrives as sorted integer edge
  arrays that :meth:`~repro.graph.condensed.CondensedGraph.bulk_add_edges`
  loads with one ``extend`` per node (the layout ``snapshot_edges()``'s CSR
  construction wants),
* skipped-edge-tuple counts and ``skip_unknown_endpoints=False`` endpoint
  materialisation are pushed down as ``COUNT``/anti-join queries that
  replicate the reference engine's left-endpoint-first semantics.

Joins against the real/boundary tables use ``IS`` (NULL-safe equality) so a
``NULL`` join value maps to one virtual node exactly like the reference
engine's ``(boundary, None)`` key.

Anything that cannot be compiled or executed this way raises
:class:`PushdownUnsupported`; the caller falls back to a row-at-a-time
engine and records a note, never a wrong graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.exceptions import QueryError
from repro.relational.aggregates import aggregate_to_sql
from repro.relational.database import Database
from repro.relational.sql import to_sql

if TYPE_CHECKING:  # pragma: no cover - core imports us; type-only back-ref
    from repro.core.planner import EdgePlan, ExtractionPlan
    from repro.graph.condensed import CondensedGraph

#: distinguishes the temp tables of concurrent pushdown runs sharing one mirror
_RUN_IDS = itertools.count()


class PushdownUnsupported(Exception):
    """The plan (or the data) cannot be executed by the pushdown engine."""


@dataclass
class Statement:
    """One SQL statement of a compiled program, with its bound parameters."""

    sql: str
    params: tuple[Any, ...] = ()


@dataclass
class CompiledEdgeRule:
    """The static part of one Edges rule's SQL program."""

    kind: str  #: "condensed" | "full" | "aggregate"
    label: str
    rule_index: int
    #: one CREATE TEMP TABLE ... AS SELECT per segment (full/aggregate: one)
    segment_statements: list[Statement]
    segment_tables: list[str]
    #: per segment: (starts_at_source, ends_at_target)
    segment_flags: list[tuple[bool, bool]]
    #: per boundary: the join-attribute name (virtual-node label attribute)
    boundary_attributes: list[str] = field(default_factory=list)
    #: aggregate rules: (source column, target column) of the grouped result
    group_columns: tuple[str, str] | None = None
    #: aggregate rules: edge-property column names, in select order
    property_names: list[str] = field(default_factory=list)


@dataclass
class PushdownProgram:
    """A fully compiled plan: node queries plus one program per Edges rule."""

    prefix: str
    node_statements: list[Statement]
    rules: list[CompiledEdgeRule]
    #: human-readable SQL program (inline literals) for ``GraphGen.explain``
    display: list[str]

    @property
    def real_table(self) -> str:
        return f"{self.prefix}_real"


# --------------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------------- #
def _materialize(table: str, select_sql: str, columns: Sequence[str] = ()) -> str:
    select = select_sql.rstrip().rstrip(";")
    if columns:
        # CREATE TABLE AS would give each column its source column's type
        # affinity, but the ID-map and boundary tables have no-affinity
        # columns — and SQLite cannot seek an index across an affinity
        # mismatch, degrading every probe to a full index scan.  Unary +
        # strips affinity without changing any value, keeping the joins
        # indexed SEARCHes.
        projection = ", ".join(f"+v.{column} AS {column}" for column in columns)
        select = f"SELECT {projection} FROM ({select}) v"
    return f"CREATE TEMP TABLE {table} AS {select}"


def _boundary_sql(
    v_table: str, real_table: str, left_seg: str, right_seg: str, filter_left: bool
) -> str:
    """Rank the distinct join values of one chain boundary.

    The boundary's value set is the out-values of the segment feeding it
    (restricted to rows whose real left endpoint is known, when the segment
    starts at the source and unknown endpoints are skipped) unioned with the
    in-values of the segment it feeds — exactly the values for which the
    reference engine lazily creates a virtual node.
    """
    survival = (
        f" WHERE EXISTS (SELECT 1 FROM {real_table} r WHERE r.ext IS s.c0)"
        if filter_left
        else ""
    )
    return (
        f"CREATE TEMP TABLE {v_table} AS "
        f"SELECT value, DENSE_RANK() OVER (ORDER BY value) - 1 AS rnk FROM ("
        f"SELECT s.c1 AS value FROM {left_seg} s{survival} "
        f"UNION SELECT s.c0 AS value FROM {right_seg} s) vals"
    )


def _edge_sql(
    prefix: str,
    rule_index: int,
    seg_table: str,
    seg_index: int,
    starts: bool,
    ends: bool,
    source_column: str = "c0",
    target_column: str = "c1",
) -> str:
    """The per-segment edge emission query.

    Real endpoints resolve through the ``ext -> nid`` map; virtual endpoints
    compute their internal ID as ``? - rnk`` where the bound parameter is the
    first ID of the boundary's reserved block.  ``ORDER BY src, dst`` makes
    the result a source-grouped edge array ready for bulk loading.
    """
    real = f"{prefix}_real"
    joins: list[str] = []
    if starts:
        joins.append(f"JOIN {real} rl ON rl.ext IS s.{source_column}")
        src = "rl.nid"
    else:
        joins.append(f"JOIN {prefix}_r{rule_index}_v{seg_index - 1} vl ON vl.value IS s.{source_column}")
        src = "? - vl.rnk"
    if ends:
        joins.append(f"JOIN {real} rr ON rr.ext IS s.{target_column}")
        dst = "rr.nid"
    else:
        joins.append(f"JOIN {prefix}_r{rule_index}_v{seg_index} vr ON vr.value IS s.{target_column}")
        dst = "? - vr.rnk"
    return (
        f"SELECT {src} AS src, {dst} AS dst FROM {seg_table} s "
        f"{' '.join(joins)} ORDER BY src, dst"
    )


def _unknown_count_sql(real: str, seg: str, left_ok: str | None, column: str) -> str:
    """COUNT of rows whose ``column`` endpoint is not a known real node."""
    condition = f"NOT EXISTS (SELECT 1 FROM {real} r WHERE r.ext IS s.{column})"
    if left_ok:
        condition = f"{left_ok} AND {condition}"
    return f"SELECT COUNT(*) FROM {seg} s WHERE {condition}"


def _compile_edge_rule(
    db: Database,
    prefix: str,
    rule_index: int,
    edge_plan: "EdgePlan",
    display: list[str],
    skip_unknown_endpoints: bool = True,
) -> CompiledEdgeRule:
    label = str(edge_plan.rule.head) if edge_plan.rule is not None else f"rule {rule_index}"
    try:
        if edge_plan.condensed:
            if not edge_plan.segments:
                raise PushdownUnsupported(
                    f"malformed plan: condensed rule {label} has no segments"
                )
            statements: list[Statement] = []
            tables: list[str] = []
            flags: list[tuple[bool, bool]] = []
            for seg_index, segment in enumerate(edge_plan.segments):
                table = f"{prefix}_r{rule_index}_s{seg_index}"
                params: list[Any] = []
                select = to_sql(
                    db, segment.query, parameters=params, column_aliases=("c0", "c1")
                )
                statements.append(
                    Statement(_materialize(table, select, ("c0", "c1")), tuple(params))
                )
                display.append(
                    _materialize(
                        table,
                        to_sql(db, segment.query, column_aliases=("c0", "c1")),
                        ("c0", "c1"),
                    )
                )
                tables.append(table)
                flags.append((segment.starts_at_source, segment.ends_at_target))
            boundary_attributes = [
                segment.out_variable for segment in edge_plan.segments[:-1]
            ]
            for boundary in range(len(tables) - 1):
                display.append(
                    _boundary_sql(
                        f"{prefix}_r{rule_index}_v{boundary}",
                        f"{prefix}_real",
                        tables[boundary],
                        tables[boundary + 1],
                        flags[boundary][0] and skip_unknown_endpoints,
                    )
                )
            for seg_index, (table, (starts, ends)) in enumerate(zip(tables, flags)):
                display.append(
                    _edge_sql(prefix, rule_index, table, seg_index, starts, ends)
                )
            return CompiledEdgeRule(
                kind="condensed",
                label=label,
                rule_index=rule_index,
                segment_statements=statements,
                segment_tables=tables,
                segment_flags=flags,
                boundary_attributes=boundary_attributes,
            )

        if edge_plan.aggregate_query is not None:
            aggregate_query = edge_plan.aggregate_query
            table = f"{prefix}_r{rule_index}_agg"
            params = []
            select = aggregate_to_sql(db, aggregate_query, parameters=params)
            group_columns = (str(aggregate_query.group_by[0]), str(aggregate_query.group_by[1]))
            property_names = [spec.output_name for spec in aggregate_query.aggregates]
            agg_columns = tuple(group_columns) + tuple(property_names)
            display.append(
                _materialize(table, aggregate_to_sql(db, aggregate_query), agg_columns)
            )
            display.append(
                _edge_sql(prefix, rule_index, table, 0, True, True, *group_columns)
            )
            return CompiledEdgeRule(
                kind="aggregate",
                label=label,
                rule_index=rule_index,
                segment_statements=[
                    Statement(_materialize(table, select, agg_columns), tuple(params))
                ],
                segment_tables=[table],
                segment_flags=[(True, True)],
                group_columns=group_columns,
                property_names=property_names,
            )

        if edge_plan.full_query is None:
            raise PushdownUnsupported(f"malformed plan: rule {label} has no query")
        table = f"{prefix}_r{rule_index}_full"
        params = []
        select = to_sql(db, edge_plan.full_query, parameters=params, column_aliases=("c0", "c1"))
        display.append(
            _materialize(
                table,
                to_sql(db, edge_plan.full_query, column_aliases=("c0", "c1")),
                ("c0", "c1"),
            )
        )
        display.append(_edge_sql(prefix, rule_index, table, 0, True, True))
        return CompiledEdgeRule(
            kind="full",
            label=label,
            rule_index=rule_index,
            segment_statements=[Statement(_materialize(table, select, ("c0", "c1")), tuple(params))],
            segment_tables=[table],
            segment_flags=[(True, True)],
        )
    except QueryError as exc:
        raise PushdownUnsupported(f"cannot lower rule {label} to SQL: {exc}") from exc


def compile_plan(db: Database, plan: "ExtractionPlan", prefix: str = "gg_pd") -> PushdownProgram:
    """Lower an extraction plan into per-rule SQL programs.

    Raises :class:`PushdownUnsupported` when any rule cannot be expressed
    (malformed plans, non-scalar constants, arity mismatches ...).
    """
    display: list[str] = []
    node_statements: list[Statement] = []
    for node_plan in plan.node_plans:
        try:
            params: list[Any] = []
            sql = to_sql(db, node_plan.query, parameters=params)
            display.append(sql.rstrip(";"))
            node_statements.append(Statement(sql, tuple(params)))
        except QueryError as exc:
            raise PushdownUnsupported(f"cannot lower Nodes rule to SQL: {exc}") from exc
    display.append(f"CREATE TEMP TABLE {prefix}_real (ext, nid INTEGER)")
    skip = getattr(plan.options, "skip_unknown_endpoints", True)
    rules = [
        _compile_edge_rule(db, prefix, index, edge_plan, display, skip)
        for index, edge_plan in enumerate(plan.edge_plans)
    ]
    return PushdownProgram(
        prefix=prefix, node_statements=node_statements, rules=rules, display=display
    )


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
class PushdownExecutor:
    """Runs a compiled pushdown program against the cached SQLite mirror.

    The executor populates ``graph`` (a fresh
    :class:`~repro.graph.condensed.CondensedGraph`) and the per-rule counters
    of ``report`` (``skipped_edge_tuples``, ``per_rule_edges``,
    ``queries_executed`` — the latter counts SQL statements issued, which by
    design differs from the per-segment counts of the row engines).
    """

    def __init__(self, db: Database, skip_unknown_endpoints: bool = True) -> None:
        self._db = db
        self._skip = skip_unknown_endpoints
        try:
            self._backend = db.sqlite_backend()
        except Exception as exc:
            raise PushdownUnsupported(f"sqlite mirror unavailable: {exc}") from exc
        self._temp_tables: list[str] = []
        self._graph: "CondensedGraph | None" = None
        self._report: Any = None

    # ------------------------------------------------------------------ #
    def run(self, plan: "ExtractionPlan", graph: "CondensedGraph", report: Any) -> None:
        prefix = f"gg_pd{next(_RUN_IDS)}"
        program = compile_plan(self._db, plan, prefix=prefix)
        self._graph = graph
        self._report = report
        try:
            self._load_nodes(plan, program)
            self._create_real_table(program)
            for compiled in program.rules:
                before = graph.num_condensed_edges
                if compiled.kind == "condensed":
                    self._run_condensed_rule(program, compiled)
                elif compiled.kind == "aggregate":
                    self._run_aggregate_rule(program, compiled)
                else:
                    self._run_full_rule(program, compiled)
                report.per_rule_edges.append(graph.num_condensed_edges - before)
        except QueryError as exc:
            raise PushdownUnsupported(f"pushdown SQL failed: {exc}") from exc
        finally:
            self._cleanup()

    # ------------------------------------------------------------------ #
    def _run(self, sql: str, params: tuple[Any, ...] = (), count: bool = True) -> list[tuple]:
        rows = self._backend.execute_sql(sql, params)
        if count:
            self._report.queries_executed += 1
        return rows

    def _create(self, statement: Statement, table: str) -> None:
        self._run(f"DROP TABLE IF EXISTS {table}", count=False)
        self._temp_tables.append(table)
        self._run(statement.sql, statement.params)

    def _cleanup(self) -> None:
        for table in self._temp_tables:
            try:
                self._run(f"DROP TABLE IF EXISTS {table}", count=False)
            except QueryError:  # pragma: no cover - defensive
                pass
        self._temp_tables.clear()

    # ------------------------------------------------------------------ #
    def _load_nodes(self, plan: "ExtractionPlan", program: PushdownProgram) -> None:
        graph = self._graph
        for node_plan, statement in zip(plan.node_plans, program.node_statements):
            rows = self._run(statement.sql, statement.params)
            properties = node_plan.property_variables
            if properties:
                for row in rows:
                    graph.add_real_node(row[0], **dict(zip(properties, row[1:])))
            else:
                graph.bulk_add_real_nodes(row[0] for row in rows)

    def _create_real_table(self, program: PushdownProgram) -> None:
        real = program.real_table
        self._run(f"DROP TABLE IF EXISTS {real}", count=False)
        self._temp_tables.append(real)
        self._run(f"CREATE TEMP TABLE {real} (ext, nid INTEGER)", count=False)
        graph = self._graph
        try:
            self._backend.executemany(
                f"INSERT INTO {real} VALUES (?, ?)",
                [(ext, graph.internal(ext)) for ext in graph.external_ids()],
            )
        except QueryError as exc:
            raise PushdownUnsupported(f"node IDs are not SQL-bindable: {exc}") from exc
        self._run(f"CREATE INDEX {real}_ix ON {real} (ext)", count=False)

    def _add_unknown_endpoints(self, program: PushdownProgram, seg: str, columns: list[str]) -> None:
        """``skip_unknown_endpoints=False``: materialise unknown endpoint
        values as fresh real nodes (and extend the ID map)."""
        real = program.real_table
        graph = self._graph
        new_rows: list[tuple[Any, int]] = []
        for column in columns:
            values = self._run(
                f"SELECT DISTINCT s.{column} FROM {seg} s "
                f"WHERE NOT EXISTS (SELECT 1 FROM {real} r WHERE r.ext IS s.{column}) "
                f"ORDER BY 1"
            )
            for (value,) in values:
                if not graph.has_external(value):
                    new_rows.append((value, graph.add_real_node(value)))
        if new_rows:
            self._backend.executemany(f"INSERT INTO {real} VALUES (?, ?)", new_rows)

    # ------------------------------------------------------------------ #
    def _run_condensed_rule(self, program: PushdownProgram, compiled: CompiledEdgeRule) -> None:
        graph, report = self._graph, self._report
        real = program.real_table
        prefix = program.prefix
        rule_index = compiled.rule_index

        for statement, table in zip(compiled.segment_statements, compiled.segment_tables):
            self._create(statement, table)

        tables = compiled.segment_tables
        flags = compiled.segment_flags
        last = len(tables) - 1

        # skipped edge tuples (left endpoint resolved first, like the
        # reference engine)
        if self._skip:
            if flags[0][0]:
                report.skipped_edge_tuples += self._run(
                    _unknown_count_sql(real, tables[0], None, "c0")
                )[0][0]
            if flags[last][1]:
                left_ok = (
                    f"EXISTS (SELECT 1 FROM {real} r WHERE r.ext IS s.c0)"
                    if last == 0
                    else None
                )
                report.skipped_edge_tuples += self._run(
                    _unknown_count_sql(real, tables[last], left_ok, "c1")
                )[0][0]
        else:
            if flags[0][0]:
                self._add_unknown_endpoints(program, tables[0], ["c0"])
            if flags[last][1]:
                self._add_unknown_endpoints(program, tables[last], ["c1"])

        # boundary rank tables + reserved virtual-ID blocks
        first_ids: list[int] = []
        for boundary, attribute in enumerate(compiled.boundary_attributes):
            v_table = f"{prefix}_r{rule_index}_v{boundary}"
            self._run(f"DROP TABLE IF EXISTS {v_table}", count=False)
            self._temp_tables.append(v_table)
            self._run(
                _boundary_sql(
                    v_table, real, tables[boundary], tables[boundary + 1],
                    flags[boundary][0] and self._skip,
                )
            )
            self._run(f"CREATE INDEX {v_table}_ix ON {v_table} (value)", count=False)
            values = self._run(f"SELECT value FROM {v_table} ORDER BY rnk")
            labels = [(attribute, value) for (value,) in values]
            first_ids.append(graph.bulk_add_virtual_nodes(labels))

        # per-segment edge emission: sorted integer arrays, bulk-loaded
        for seg_index, (table, (starts, ends)) in enumerate(zip(tables, flags)):
            sql = _edge_sql(prefix, rule_index, table, seg_index, starts, ends)
            params: list[int] = []
            if not starts:
                params.append(first_ids[seg_index - 1])
            if not ends:
                params.append(first_ids[seg_index])
            rows = self._run(sql, tuple(params))
            graph.bulk_add_edges(rows, allow_duplicate=not (starts and ends))

    def _run_full_rule(self, program: PushdownProgram, compiled: CompiledEdgeRule) -> None:
        graph, report = self._graph, self._report
        real = program.real_table
        table = compiled.segment_tables[0]
        self._create(compiled.segment_statements[0], table)
        if self._skip:
            either_unknown = (
                f"NOT (EXISTS (SELECT 1 FROM {real} r WHERE r.ext IS s.c0) "
                f"AND EXISTS (SELECT 1 FROM {real} r WHERE r.ext IS s.c1))"
            )
            report.skipped_edge_tuples += self._run(
                f"SELECT COUNT(*) FROM {table} s WHERE {either_unknown}"
            )[0][0]
        else:
            self._add_unknown_endpoints(program, table, ["c0", "c1"])
        rows = self._run(
            f"SELECT rl.nid AS src, rr.nid AS dst FROM {table} s "
            f"JOIN {real} rl ON rl.ext IS s.c0 JOIN {real} rr ON rr.ext IS s.c1 "
            f"ORDER BY src, dst"
        )
        graph.bulk_add_edges(rows, allow_duplicate=False)

    def _run_aggregate_rule(self, program: PushdownProgram, compiled: CompiledEdgeRule) -> None:
        graph, report = self._graph, self._report
        real = program.real_table
        table = compiled.segment_tables[0]
        src_col, dst_col = compiled.group_columns  # type: ignore[misc]
        self._create(compiled.segment_statements[0], table)
        if self._skip:
            either_unknown = (
                f"NOT (EXISTS (SELECT 1 FROM {real} r WHERE r.ext IS s.{src_col}) "
                f"AND EXISTS (SELECT 1 FROM {real} r WHERE r.ext IS s.{dst_col}))"
            )
            report.skipped_edge_tuples += self._run(
                f"SELECT COUNT(*) FROM {table} s WHERE {either_unknown}"
            )[0][0]
        else:
            self._add_unknown_endpoints(program, table, [src_col, dst_col])
        property_select = "".join(f", s.{name}" for name in compiled.property_names)
        rows = self._run(
            f"SELECT rl.nid AS src, rr.nid AS dst{property_select} FROM {table} s "
            f"JOIN {real} rl ON rl.ext IS s.{src_col} "
            f"JOIN {real} rr ON rr.ext IS s.{dst_col} ORDER BY src, dst"
        )
        property_names = compiled.property_names
        for row in rows:
            source, target = row[0], row[1]
            graph.add_edge(source, target, allow_duplicate=False)
            if property_names:
                graph.annotate_edge(source, target, **dict(zip(property_names, row[2:])))
