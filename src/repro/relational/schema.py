"""Relational schema objects: columns, table schemas and foreign keys.

The GraphGen planner only needs very light schema information — column names,
types (for SQL generation and value validation) and key / foreign-key
declarations (to recognise key–foreign-key joins, which are never
large-output).  The classes here are deliberately small, immutable value
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.exceptions import SchemaError

#: supported logical column types, mapped to the Python types accepted for
#: values and the SQLite affinity used by the sqlite backend.
COLUMN_TYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool, int),
    "any": (object,),
}

SQLITE_AFFINITY: dict[str, str] = {
    "int": "INTEGER",
    "float": "REAL",
    "str": "TEXT",
    "bool": "INTEGER",
    "any": "BLOB",
}


@dataclass(frozen=True)
class Column:
    """A single column declaration.

    Parameters
    ----------
    name:
        Column name; must be a valid identifier-ish string.
    type:
        One of ``int``, ``float``, ``str``, ``bool``, ``any``.
    nullable:
        Whether ``None`` is an accepted value.
    """

    name: str
    type: str = "any"
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.type not in COLUMN_TYPES:
            raise SchemaError(
                f"unknown column type {self.type!r} for column {self.name!r}; "
                f"expected one of {sorted(COLUMN_TYPES)}"
            )

    def accepts(self, value: Any) -> bool:
        """Return True if ``value`` is a legal value for this column."""
        if value is None:
            return self.nullable
        if self.type == "any":
            return True
        return isinstance(value, COLUMN_TYPES[self.type]) and not (
            self.type in ("int", "float") and isinstance(value, bool)
        )

    @property
    def sqlite_type(self) -> str:
        return SQLITE_AFFINITY[self.type]


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key declaration ``column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableSchema:
    """Schema of a single table: ordered columns, primary key, foreign keys."""

    name: str
    columns: Sequence[Column]
    primary_key: tuple[str, ...] = ()
    foreign_keys: Sequence[ForeignKey] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in table {self.name!r}: {names}")
        if not names:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        for key_col in self.primary_key:
            if key_col not in names:
                raise SchemaError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"foreign key column {fk.column!r} not in table {self.name!r}"
                )
        self._index = {n: i for i, n in enumerate(names)}

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        """Positional index of column ``name``; raises SchemaError if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column {name!r} in table {self.name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def is_key(self, column_name: str) -> bool:
        """True if ``column_name`` is (the only column of) the primary key."""
        return self.primary_key == (column_name,)

    def foreign_key_for(self, column_name: str) -> ForeignKey | None:
        for fk in self.foreign_keys:
            if fk.column == column_name:
                return fk
        return None

    def validate_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Check arity and column types of ``row``; return it as a tuple."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"arity {self.arity}: {row!r}"
            )
        for value, column in zip(row, self.columns):
            if not column.accepts(value):
                raise SchemaError(
                    f"value {value!r} is not valid for column "
                    f"{self.name}.{column.name} of type {column.type}"
                )
        return tuple(row)


def make_schema(
    name: str,
    columns: Iterable[tuple[str, str] | str],
    primary_key: Sequence[str] | str | None = None,
    foreign_keys: Iterable[tuple[str, str, str]] = (),
) -> TableSchema:
    """Convenience constructor used heavily by the dataset generators.

    ``columns`` may be plain names (type defaults to ``any``) or
    ``(name, type)`` pairs; ``foreign_keys`` are ``(column, ref_table,
    ref_column)`` triples.
    """
    cols = []
    for spec in columns:
        if isinstance(spec, str):
            cols.append(Column(spec))
        else:
            col_name, col_type = spec
            cols.append(Column(col_name, col_type))
    if primary_key is None:
        pk: tuple[str, ...] = ()
    elif isinstance(primary_key, str):
        pk = (primary_key,)
    else:
        pk = tuple(primary_key)
    fks = tuple(ForeignKey(c, t, rc) for c, t, rc in foreign_keys)
    return TableSchema(name=name, columns=cols, primary_key=pk, foreign_keys=fks)
