"""SQL text generation for conjunctive queries.

The paper's Figure 16 shows the SQL GraphGen issues to PostgreSQL for each
query segment (``SELECT DISTINCT ... FROM ... WHERE ...`` with table aliases).
This module reproduces that translation so that (a) users can inspect the SQL
GraphGen would run, and (b) the :class:`~repro.relational.sqlite_backend.
SQLiteBackend` can execute segments on a real SQL engine.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.query import ConjunctiveQuery, Const


def _alias(i: int) -> str:
    """A, B, ..., Z, A1, B1, ..."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    suffix = i // 26
    return letters[i % 26] + (str(suffix) if suffix else "")


def _literal(value: Any) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def to_sql(db: Database, query: ConjunctiveQuery, use_distinct: bool = True) -> str:
    """Translate a conjunctive query into a SQL SELECT statement.

    Each atom becomes an aliased table in the FROM clause; shared variables
    become equality predicates; constants and comparisons become additional
    WHERE predicates; head variables become the select list (aliased to the
    variable name).
    """
    aliases = [_alias(i) for i in range(len(query.atoms))]

    # map each variable to its first (alias, column) occurrence and collect
    # equality predicates for later occurrences
    first_occurrence: dict[str, str] = {}
    where: list[str] = []
    for atom, alias in zip(query.atoms, aliases):
        schema = db.table(atom.table).schema
        if len(atom.arguments) != schema.arity:
            raise QueryError(
                f"atom over {atom.table!r} has arity {len(atom.arguments)}, "
                f"table has arity {schema.arity}"
            )
        for position, arg in enumerate(atom.arguments):
            column = schema.column_names[position]
            qualified = f"{alias}.{column}"
            if isinstance(arg, Const):
                where.append(f"{qualified} = {_literal(arg.value)}")
            elif isinstance(arg, str):
                if arg in first_occurrence:
                    where.append(f"{first_occurrence[arg]} = {qualified}")
                else:
                    first_occurrence[arg] = qualified

    for comparison in query.comparisons:
        if comparison.variable not in first_occurrence:
            raise QueryError(f"comparison on unknown variable {comparison.variable!r}")
        op = "=" if comparison.op == "==" else comparison.op
        where.append(f"{first_occurrence[comparison.variable]} {op} {_literal(comparison.value)}")

    select_items = []
    for var in query.head_vars:
        if var not in first_occurrence:
            raise QueryError(f"head variable {var!r} not bound by any atom")
        select_items.append(f"{first_occurrence[var]} AS {var}")

    from_items = [f"{atom.table} {alias}" for atom, alias in zip(query.atoms, aliases)]

    sql = "SELECT "
    if use_distinct:
        sql += "DISTINCT "
    sql += ", ".join(select_items)
    sql += " FROM " + ", ".join(from_items)
    if where:
        sql += " WHERE " + " AND ".join(where)
    return sql + ";"


def create_table_sql(db: Database, table_name: str) -> str:
    """``CREATE TABLE`` statement for one table (used by the sqlite backend)."""
    schema = db.table(table_name).schema
    columns = ", ".join(f"{c.name} {c.sqlite_type}" for c in schema.columns)
    return f"CREATE TABLE {schema.name} ({columns});"
