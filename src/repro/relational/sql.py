"""SQL text generation for conjunctive queries.

The paper's Figure 16 shows the SQL GraphGen issues to PostgreSQL for each
query segment (``SELECT DISTINCT ... FROM ... WHERE ...`` with table aliases).
This module reproduces that translation so that (a) users can inspect the SQL
GraphGen would run, and (b) the :class:`~repro.relational.sqlite_backend.
SQLiteBackend` can execute segments on a real SQL engine.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.query import ConjunctiveQuery, Const

#: the only Python types to_sql accepts as SQL values; anything else (lists,
#: tuples, arbitrary objects) is rejected with a QueryError rather than
#: round-tripped through repr()
SCALAR_TYPES = (str, int, float, bool, type(None))


def _alias(i: int) -> str:
    """A, B, ..., Z, A1, B1, ..."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    suffix = i // 26
    return letters[i % 26] + (str(suffix) if suffix else "")


def _check_scalar(value: Any) -> Any:
    if not isinstance(value, SCALAR_TYPES):
        raise QueryError(f"unsupported SQL value {value!r} (expected str/int/float/bool/None)")
    return value


def _literal(value: Any) -> str:
    """Render a scalar as inline SQL text (display/explain path only).

    Execution paths bind values with ``sqlite3`` parameters instead — see
    :func:`render_value` — so this rendering is never handed to the engine.
    """
    _check_scalar(value)
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = value.replace("'", "''")
    return f"'{escaped}'"


def render_value(value: Any, parameters: list[Any] | None) -> str:
    """Render one SQL value: a bound ``?`` placeholder when ``parameters`` is
    a list (execution path — quotes, NUL bytes and floats round-trip exactly),
    inline text otherwise (display path)."""
    if parameters is None:
        return _literal(value)
    _check_scalar(value)
    parameters.append(value)
    return "?"


def to_sql(
    db: Database,
    query: ConjunctiveQuery,
    use_distinct: bool = True,
    parameters: list[Any] | None = None,
    column_aliases: Sequence[str] | None = None,
) -> str:
    """Translate a conjunctive query into a SQL SELECT statement.

    Each atom becomes an aliased table in the FROM clause; shared variables
    become equality predicates; constants and comparisons become additional
    WHERE predicates; head variables become the select list (aliased to the
    variable name, or to ``column_aliases`` when given — needed when the same
    variable appears twice in the head, e.g. a filter segment ``P -> P``).

    When ``parameters`` is a list, constant and comparison values are emitted
    as ``?`` placeholders and appended to it for ``sqlite3`` binding; without
    it they are inlined for display.  Either way, non-scalar values raise
    :class:`~repro.exceptions.QueryError`.
    """
    aliases = [_alias(i) for i in range(len(query.atoms))]

    # map each variable to its first (alias, column) occurrence and collect
    # equality predicates for later occurrences
    first_occurrence: dict[str, str] = {}
    where: list[str] = []
    for atom, alias in zip(query.atoms, aliases):
        schema = db.table(atom.table).schema
        if len(atom.arguments) != schema.arity:
            raise QueryError(
                f"atom over {atom.table!r} has arity {len(atom.arguments)}, "
                f"table has arity {schema.arity}"
            )
        for position, arg in enumerate(atom.arguments):
            column = schema.column_names[position]
            qualified = f"{alias}.{column}"
            if isinstance(arg, Const):
                where.append(f"{qualified} = {render_value(arg.value, parameters)}")
            elif isinstance(arg, str):
                if arg in first_occurrence:
                    where.append(f"{first_occurrence[arg]} = {qualified}")
                else:
                    first_occurrence[arg] = qualified

    for comparison in query.comparisons:
        if comparison.variable not in first_occurrence:
            raise QueryError(f"comparison on unknown variable {comparison.variable!r}")
        op = "=" if comparison.op == "==" else comparison.op
        where.append(
            f"{first_occurrence[comparison.variable]} {op} "
            f"{render_value(comparison.value, parameters)}"
        )

    if column_aliases is not None and len(column_aliases) != len(query.head_vars):
        raise QueryError(
            f"query {query.name!r} has {len(query.head_vars)} head variables "
            f"but {len(column_aliases)} column aliases were given"
        )
    select_items = []
    for position, var in enumerate(query.head_vars):
        if var not in first_occurrence:
            raise QueryError(f"head variable {var!r} not bound by any atom")
        output = var if column_aliases is None else column_aliases[position]
        select_items.append(f"{first_occurrence[var]} AS {output}")

    from_items = [f"{atom.table} {alias}" for atom, alias in zip(query.atoms, aliases)]

    sql = "SELECT "
    if use_distinct:
        sql += "DISTINCT "
    sql += ", ".join(select_items)
    sql += " FROM " + ", ".join(from_items)
    if where:
        sql += " WHERE " + " AND ".join(where)
    return sql + ";"


def create_table_sql(db: Database, table_name: str) -> str:
    """``CREATE TABLE`` statement for one table (used by the sqlite backend)."""
    schema = db.table(table_name).schema
    columns = ", ".join(f"{c.name} {c.sqlite_type}" for c in schema.columns)
    return f"CREATE TABLE {schema.name} ({columns});"
