"""The in-memory relational database: a named collection of tables plus a
catalog.  This is the storage engine GraphGen extracts graphs from.

The class intentionally mirrors the small surface the paper needs from
PostgreSQL: table scans, projections with DISTINCT, equi-joins, and catalog
statistics.  A :class:`~repro.relational.sqlite_backend.SQLiteBackend` can be
attached for executing generated SQL against stdlib ``sqlite3`` instead.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.exceptions import SchemaError
from repro.relational.catalog import Catalog
from repro.relational.schema import TableSchema, make_schema
from repro.relational.table import Table


class Database:
    """A named collection of :class:`~repro.relational.table.Table` objects."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._catalog = Catalog(self)

    # ------------------------------------------------------------------ #
    # table management
    # ------------------------------------------------------------------ #
    def create_table(
        self,
        name: str,
        columns: Iterable[tuple[str, str] | str],
        primary_key: Sequence[str] | str | None = None,
        foreign_keys: Iterable[tuple[str, str, str]] = (),
    ) -> Table:
        """Create an empty table from a lightweight column spec."""
        schema = make_schema(name, columns, primary_key, foreign_keys)
        return self.add_table(Table(schema))

    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists in database {self.name!r}")
        self._tables[table.name] = table
        self._catalog.refresh()
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name!r}")
        del self._tables[name]
        self._catalog.refresh()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise SchemaError(
                f"no table {name!r} in database {self.name!r} (tables: {known})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def schemas(self) -> list[TableSchema]:
        return [self._tables[name].schema for name in self.table_names()]

    # ------------------------------------------------------------------ #
    # data loading
    # ------------------------------------------------------------------ #
    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert into ``table``; refreshes catalog statistics."""
        count = self.table(table).insert_many(rows)
        self._catalog.refresh()
        return count

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def analyze(self) -> None:
        """Recompute catalog statistics (the equivalent of ``ANALYZE``)."""
        self._catalog.refresh()

    # ------------------------------------------------------------------ #
    def total_rows(self) -> int:
        return sum(t.num_rows for t in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        parts = ", ".join(f"{n}({t.num_rows})" for n, t in sorted(self._tables.items()))
        return f"Database({self.name!r}: {parts})"
