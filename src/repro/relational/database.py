"""The in-memory relational database: a named collection of tables plus a
catalog.  This is the storage engine GraphGen extracts graphs from.

The class intentionally mirrors the small surface the paper needs from
PostgreSQL: table scans, projections with DISTINCT, equi-joins, and catalog
statistics.  A :class:`~repro.relational.sqlite_backend.SQLiteBackend` can be
attached for executing generated SQL against stdlib ``sqlite3`` instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.exceptions import SchemaError
from repro.relational.catalog import Catalog
from repro.relational.schema import TableSchema, make_schema
from repro.relational.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.sqlite_backend import SQLiteBackend


class Database:
    """A named collection of :class:`~repro.relational.table.Table` objects."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._catalog = Catalog(self)
        # structural version, bumped when tables are added/dropped; combined
        # with the per-table data versions it identifies the database state
        # the cached SQLite mirror was loaded from
        self._structure_version = 0
        self._sqlite_cache: "SQLiteBackend | None" = None
        self._sqlite_cache_version: tuple[int, ...] | None = None

    # ------------------------------------------------------------------ #
    # table management
    # ------------------------------------------------------------------ #
    def create_table(
        self,
        name: str,
        columns: Iterable[tuple[str, str] | str],
        primary_key: Sequence[str] | str | None = None,
        foreign_keys: Iterable[tuple[str, str, str]] = (),
    ) -> Table:
        """Create an empty table from a lightweight column spec."""
        schema = make_schema(name, columns, primary_key, foreign_keys)
        return self.add_table(Table(schema))

    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists in database {self.name!r}")
        self._tables[table.name] = table
        self._structure_version += 1
        self._catalog.refresh()
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name!r}")
        del self._tables[name]
        self._structure_version += 1
        self._catalog.refresh()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise SchemaError(
                f"no table {name!r} in database {self.name!r} (tables: {known})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def schemas(self) -> list[TableSchema]:
        return [self._tables[name].schema for name in self.table_names()]

    # ------------------------------------------------------------------ #
    # data loading
    # ------------------------------------------------------------------ #
    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert into ``table``; refreshes catalog statistics."""
        count = self.table(table).insert_many(rows)
        self._catalog.refresh()
        return count

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def analyze(self) -> None:
        """Recompute catalog statistics (the equivalent of ``ANALYZE``)."""
        self._catalog.refresh()

    # ------------------------------------------------------------------ #
    # shared SQLite mirror
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> tuple[int, ...]:
        """A token identifying the current data state of the database.

        Changes whenever a table is added, dropped or mutated; used to decide
        when the cached SQLite mirror must be reloaded.
        """
        return (self._structure_version,) + tuple(
            self._tables[name].data_version for name in self.table_names()
        )

    def sqlite_backend(self) -> "SQLiteBackend":
        """One loaded :class:`SQLiteBackend` mirror, cached per database.

        The mirror is loaded lazily on first use and invalidated (reloaded)
        whenever :attr:`version` changes, so repeated extractions and planner
        catalog probes share a single copy instead of re-mirroring every
        table into ``:memory:`` per extraction.  Callers must not close the
        returned backend; its lifetime is tied to this database.
        """
        from repro.relational.sqlite_backend import SQLiteBackend

        version = self.version
        if self._sqlite_cache is None or self._sqlite_cache_version != version:
            if self._sqlite_cache is not None:
                self._sqlite_cache.close()
                self._sqlite_cache = None
            backend = SQLiteBackend(self).load()
            self._sqlite_cache = backend
            self._sqlite_cache_version = version
        return self._sqlite_cache

    # ------------------------------------------------------------------ #
    def total_rows(self) -> int:
        return sum(t.num_rows for t in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        parts = ", ".join(f"{n}({t.num_rows})" for n, t in sorted(self._tables.items()))
        return f"Database({self.name!r}: {parts})"
