"""Grouping and aggregation over conjunctive-query results.

The paper's DSL is "augmented with looping and aggregation constructs"
(Section 3.2); the motivating examples in the introduction include graphs
whose edges are defined by an aggregate over the join result — e.g. connect
two authors only if they co-authored *multiple* papers, or weight the edge by
the number of shared publications.  Aggregation makes the Edges statement
fall into the paper's Case 2 (the condensed representation cannot be used),
so the extraction pipeline evaluates the underlying conjunctive query fully
and then groups it here.

This module provides:

* the aggregate functions themselves (:data:`AGGREGATE_FUNCTIONS`),
* :class:`AggregateSpec` / :class:`AggregateQuery` — a conjunctive query plus
  group-by variables, aggregate expressions and an optional HAVING-style
  filter on the aggregated values,
* :func:`evaluate_aggregate` — evaluation against a
  :class:`~repro.relational.database.Database`,
* :func:`group_by` — the underlying physical operator, usable on any row
  stream.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.query import COMPARISON_OPS, ConjunctiveQuery, evaluate

Row = tuple[Any, ...]


def _count(values: Sequence[Any]) -> int:
    return len(values)


def _count_distinct(values: Sequence[Any]) -> int:
    return len(set(values))


def _sum(values: Sequence[Any]) -> Any:
    return sum(values)


def _avg(values: Sequence[Any]) -> float:
    return sum(values) / len(values)


def _min(values: Sequence[Any]) -> Any:
    return min(values)


def _max(values: Sequence[Any]) -> Any:
    return max(values)


#: name -> function over the list of grouped values
AGGREGATE_FUNCTIONS: dict[str, Callable[[Sequence[Any]], Any]] = {
    "count": _count,
    "count_distinct": _count_distinct,
    "sum": _sum,
    "avg": _avg,
    "min": _min,
    "max": _max,
}


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate expression, e.g. ``count(PubID)`` or ``max(Year)``.

    ``function`` is a key of :data:`AGGREGATE_FUNCTIONS`; ``variable`` is the
    query variable whose grouped values are aggregated; ``alias`` names the
    output column (defaults to ``function_variable``).
    """

    function: str
    variable: str
    alias: str = ""

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise QueryError(
                f"unknown aggregate function {self.function!r}; "
                f"expected one of {sorted(AGGREGATE_FUNCTIONS)}"
            )

    @property
    def output_name(self) -> str:
        return self.alias or f"{self.function}_{self.variable}"

    def compute(self, values: Sequence[Any]) -> Any:
        return AGGREGATE_FUNCTIONS[self.function](values)

    def __str__(self) -> str:
        return f"{self.function}({self.variable})"


@dataclass(frozen=True)
class HavingClause:
    """A filter on an aggregate's value, e.g. ``count(PubID) >= 2``."""

    aggregate: AggregateSpec
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryError(f"unsupported HAVING operator {self.op!r}")

    def evaluate(self, aggregated: Any) -> bool:
        try:
            return COMPARISON_OPS[self.op](aggregated, self.value)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.aggregate} {self.op} {self.value!r}"


@dataclass
class AggregateQuery:
    """A conjunctive query grouped by its head variables.

    The inner query is evaluated with *bag* semantics (no DISTINCT) because
    aggregates such as ``count`` must see every witness of the join, then the
    rows are grouped by ``group_by`` and each :class:`AggregateSpec` is
    evaluated per group.  Groups failing any :class:`HavingClause` are
    dropped.
    """

    query: ConjunctiveQuery
    group_by: Sequence[str]
    aggregates: Sequence[AggregateSpec]
    having: Sequence[HavingClause] = field(default_factory=tuple)
    name: str = "agg"

    def __post_init__(self) -> None:
        head = list(self.query.head_vars)
        for variable in self.group_by:
            if variable not in head:
                raise QueryError(
                    f"group-by variable {variable!r} is not in the head of "
                    f"query {self.query.name!r}"
                )
        for spec in self.aggregates:
            if spec.variable not in head:
                raise QueryError(
                    f"aggregated variable {spec.variable!r} is not in the head of "
                    f"query {self.query.name!r}"
                )
        known = {spec.output_name for spec in self.aggregates}
        for clause in self.having:
            if clause.aggregate.output_name not in known:
                raise QueryError(
                    f"HAVING clause {clause} references an aggregate that is "
                    f"not computed by query {self.name!r}"
                )

    @property
    def output_columns(self) -> list[str]:
        return list(self.group_by) + [spec.output_name for spec in self.aggregates]


def group_by(
    rows: Iterable[Row],
    key_positions: Sequence[int],
    value_positions: Sequence[int],
) -> dict[Row, list[Row]]:
    """Group ``rows`` by the key positions; values keep only ``value_positions``."""
    groups: dict[Row, list[Row]] = {}
    for row in rows:
        key = tuple(row[i] for i in key_positions)
        groups.setdefault(key, []).append(tuple(row[i] for i in value_positions))
    return groups


def evaluate_aggregate(db: Database, aggregate_query: AggregateQuery) -> list[Row]:
    """Evaluate an :class:`AggregateQuery`; rows are ``group_by + aggregates``.

    Output order is deterministic (sorted by the group key's repr) so the
    extraction pipeline and tests are reproducible.
    """
    inner = aggregate_query.query
    rows = evaluate(db, inner, use_distinct=False)

    head = list(inner.head_vars)
    key_positions = [head.index(v) for v in aggregate_query.group_by]
    value_positions = list(range(len(head)))
    groups = group_by(rows, key_positions, value_positions)

    value_index = {variable: position for position, variable in enumerate(head)}
    results: list[Row] = []
    for key in sorted(groups, key=repr):
        members = groups[key]
        aggregated: dict[str, Any] = {}
        for spec in aggregate_query.aggregates:
            values = [row[value_index[spec.variable]] for row in members]
            aggregated[spec.output_name] = spec.compute(values)
        if all(
            clause.evaluate(aggregated[clause.aggregate.output_name])
            for clause in aggregate_query.having
        ):
            results.append(key + tuple(aggregated[s.output_name] for s in aggregate_query.aggregates))
    return results


def aggregate_to_sql(
    db: Database,
    aggregate_query: AggregateQuery,
    parameters: list[Any] | None = None,
) -> str:
    """SQL text for an aggregate query (GROUP BY / HAVING form).

    Built on top of :func:`repro.relational.sql.to_sql` applied to the inner
    query, wrapped in an outer aggregation; this keeps the inner translation
    logic in one place.  With a ``parameters`` list, inner constants and
    HAVING values become bound ``?`` placeholders (the execution path);
    without it they are inlined for display.
    """
    from repro.relational.sql import render_value, to_sql

    inner_sql = (
        to_sql(db, aggregate_query.query, use_distinct=False, parameters=parameters)
        .rstrip()
        .rstrip(";")
    )
    select_parts = list(aggregate_query.group_by)
    for spec in aggregate_query.aggregates:
        function = "count" if spec.function == "count" else spec.function
        inner_expr = spec.variable
        if spec.function == "count_distinct":
            function, inner_expr = "count", f"DISTINCT {spec.variable}"
        select_parts.append(f"{function}({inner_expr}) AS {spec.output_name}")
    sql = (
        f"SELECT {', '.join(select_parts)} FROM ({inner_sql}) AS sub"
        f" GROUP BY {', '.join(aggregate_query.group_by)}"
    )
    if aggregate_query.having:
        having_parts = []
        for clause in aggregate_query.having:
            op = "=" if clause.op == "==" else clause.op
            rendered = render_value(clause.value, parameters)
            having_parts.append(f"{clause.aggregate.output_name} {op} {rendered}")
        sql += f" HAVING {' AND '.join(having_parts)}"
    return sql
