"""Physical query operators.

These are deliberately simple, composable, iterator-style operators (scan,
selection, projection, distinct, hash join) so that the conjunctive-query
executor in :mod:`repro.relational.query` can be built from them and tested
against brute-force evaluation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

Row = tuple[Any, ...]


def scan(rows: Iterable[Sequence[Any]]) -> Iterator[Row]:
    """Yield every row as a tuple."""
    for row in rows:
        yield tuple(row)


def select(rows: Iterable[Row], predicate: Callable[[Row], bool]) -> Iterator[Row]:
    """Yield rows satisfying ``predicate``."""
    for row in rows:
        if predicate(row):
            yield row


def project(rows: Iterable[Row], indexes: Sequence[int]) -> Iterator[Row]:
    """Yield rows restricted to the given column positions (in order)."""
    for row in rows:
        yield tuple(row[i] for i in indexes)


def distinct(rows: Iterable[Row]) -> Iterator[Row]:
    """Yield rows with duplicates removed, preserving first-seen order."""
    seen: set[Row] = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            yield row


def hash_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_key: int | Sequence[int],
    right_key: int | Sequence[int],
) -> Iterator[Row]:
    """Equi-join two row streams; output rows are ``left_row + right_row``.

    The right input is materialised into a hash table (build side); the left
    side streams (probe side).  Join keys may be single positions or tuples of
    positions for multi-attribute joins.
    """
    left_keys = (left_key,) if isinstance(left_key, int) else tuple(left_key)
    right_keys = (right_key,) if isinstance(right_key, int) else tuple(right_key)
    if len(left_keys) != len(right_keys):
        raise ValueError("left and right join keys must have the same arity")

    build: dict[Row, list[Row]] = {}
    for row in right:
        key = tuple(row[i] for i in right_keys)
        build.setdefault(key, []).append(row)

    for row in left:
        key = tuple(row[i] for i in left_keys)
        for match in build.get(key, ()):
            yield row + match


def semi_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_key: int | Sequence[int],
    right_key: int | Sequence[int],
) -> Iterator[Row]:
    """Yield left rows that have at least one join partner on the right.

    This is the building block of the Yannakakis algorithm for acyclic
    queries; we expose it for completeness and for tests of acyclic-query
    evaluation.
    """
    left_keys = (left_key,) if isinstance(left_key, int) else tuple(left_key)
    right_keys = (right_key,) if isinstance(right_key, int) else tuple(right_key)
    keys = {tuple(row[i] for i in right_keys) for row in right}
    for row in left:
        if tuple(row[i] for i in left_keys) in keys:
            yield row


def nested_loop_join(
    left: Iterable[Row],
    right: Iterable[Row],
    predicate: Callable[[Row, Row], bool],
) -> Iterator[Row]:
    """Theta-join by nested loops; used only as a test oracle."""
    right_rows = [tuple(r) for r in right]
    for lrow in left:
        for rrow in right_rows:
            if predicate(lrow, rrow):
                yield lrow + rrow


def count(rows: Iterable[Row]) -> int:
    """Number of rows in the stream (consumes it)."""
    total = 0
    for _ in rows:
        total += 1
    return total
