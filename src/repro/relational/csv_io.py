"""CSV import / export for tables and whole databases.

Real GraphGen deployments point at an existing PostgreSQL database; this
reproduction works on in-memory :class:`~repro.relational.database.Database`
objects, so users need a convenient way to get their data *into* one.  CSV is
the lowest-common-denominator interchange format (every RDBMS can ``COPY`` to
it), so this module provides:

* :func:`write_table_csv` / :func:`read_table_csv` — one table per file, with
  a header row; values are parsed back according to the table schema (or by
  type inference when no schema is given);
* :func:`write_database` / :func:`read_database` — a directory with one CSV
  per table plus a ``_schema.json`` manifest preserving column types, primary
  keys and foreign keys.

The CLI (:mod:`repro.cli`) builds on these to run extraction queries directly
against a directory of CSV files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable

from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.table import Table

SCHEMA_MANIFEST = "_schema.json"

#: marker used to round-trip ``None`` values through CSV text
NULL_TOKEN = ""


# --------------------------------------------------------------------------- #
# value conversion
# --------------------------------------------------------------------------- #
def _render(value: Any) -> str:
    if value is None:
        return NULL_TOKEN
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse_typed(text: str, column: Column) -> Any:
    if text == NULL_TOKEN and column.nullable:
        return None
    if column.type == "int":
        return int(text)
    if column.type == "float":
        return float(text)
    if column.type == "bool":
        return text.strip().lower() in ("1", "true", "yes")
    if column.type == "str":
        return text
    return infer_value(text)


def infer_value(text: str) -> Any:
    """Best-effort parse of a CSV cell: int, then float, then bool, then str."""
    stripped = text.strip()
    if stripped == NULL_TOKEN:
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    lowered = stripped.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def infer_column_type(values: Iterable[Any]) -> str:
    """Logical column type covering all inferred ``values``."""
    seen = {type(v) for v in values if v is not None}
    if not seen:
        return "any"
    if seen <= {int}:
        return "int"
    if seen <= {int, float}:
        return "float"
    if seen <= {bool}:
        return "bool"
    if seen <= {str}:
        return "str"
    return "any"


# --------------------------------------------------------------------------- #
# single table
# --------------------------------------------------------------------------- #
def write_table_csv(table: Table, path: str | Path) -> int:
    """Write ``table`` (header + rows) to ``path``; returns rows written."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.column_names)
        count = 0
        for row in table:
            writer.writerow([_render(v) for v in row])
            count += 1
    return count


def read_table_csv(
    path: str | Path,
    name: str | None = None,
    schema: TableSchema | None = None,
) -> Table:
    """Read a CSV file (header + rows) into a :class:`Table`.

    With ``schema``, the header must match the schema's column names and each
    value is parsed according to its column type.  Without one, column types
    are inferred from the data and every column is nullable.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV file (missing header row)") from None
        raw_rows = [row for row in reader if row]

    if schema is not None:
        if header != list(schema.column_names):
            raise SchemaError(
                f"{path}: header {header!r} does not match schema columns "
                f"{list(schema.column_names)!r}"
            )
        rows = [
            tuple(_parse_typed(cell, schema.column(column)) for cell, column in zip(row, header))
            for row in raw_rows
        ]
        return Table(schema, rows)

    inferred_rows = [tuple(infer_value(cell) for cell in row) for row in raw_rows]
    columns = []
    for position, column_name in enumerate(header):
        column_type = infer_column_type(row[position] for row in inferred_rows)
        columns.append(Column(column_name, column_type, nullable=True))
    table_name = name or path.stem
    return Table(TableSchema(name=table_name, columns=columns), inferred_rows)


# --------------------------------------------------------------------------- #
# whole database
# --------------------------------------------------------------------------- #
def _schema_to_manifest(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "type": c.type, "nullable": c.nullable} for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "foreign_keys": [
            {"column": fk.column, "ref_table": fk.ref_table, "ref_column": fk.ref_column}
            for fk in schema.foreign_keys
        ],
    }


def _schema_from_manifest(entry: dict[str, Any]) -> TableSchema:
    columns = [
        Column(c["name"], c.get("type", "any"), nullable=bool(c.get("nullable", False)))
        for c in entry["columns"]
    ]
    foreign_keys = tuple(
        ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
        for fk in entry.get("foreign_keys", ())
    )
    return TableSchema(
        name=entry["name"],
        columns=columns,
        primary_key=tuple(entry.get("primary_key", ())),
        foreign_keys=foreign_keys,
    )


def write_database(db: Database, directory: str | Path) -> list[Path]:
    """Write every table of ``db`` as ``<directory>/<table>.csv`` plus the
    schema manifest; returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    manifest = {"database": db.name, "tables": []}
    for table_name in db.table_names():
        table = db.table(table_name)
        path = directory / f"{table_name}.csv"
        write_table_csv(table, path)
        written.append(path)
        manifest["tables"].append(_schema_to_manifest(table.schema))
    manifest_path = directory / SCHEMA_MANIFEST
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    written.append(manifest_path)
    return written


def read_database(directory: str | Path, name: str | None = None) -> Database:
    """Load a database from a directory of CSV files.

    When ``_schema.json`` is present it drives table names, column types and
    key declarations; otherwise every ``*.csv`` file becomes a table with
    inferred column types.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise SchemaError(f"{directory} is not a directory")
    manifest_path = directory / SCHEMA_MANIFEST

    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        db = Database(name or manifest.get("database", directory.name))
        for entry in manifest["tables"]:
            schema = _schema_from_manifest(entry)
            csv_path = directory / f"{schema.name}.csv"
            if not csv_path.exists():
                raise SchemaError(f"manifest lists table {schema.name!r} but {csv_path} is missing")
            db.add_table(read_table_csv(csv_path, schema=schema))
        return db

    db = Database(name or directory.name)
    for csv_path in sorted(directory.glob("*.csv")):
        db.add_table(read_table_csv(csv_path))
    if not db.table_names():
        raise SchemaError(f"{directory} contains no CSV files")
    return db
