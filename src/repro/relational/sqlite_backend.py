"""SQLite execution backend.

The paper's GraphGen sits on top of PostgreSQL but "requires only basic SQL
support from the underlying storage engine".  This backend loads a
:class:`~repro.relational.database.Database` into an in-memory ``sqlite3``
database (Python standard library) and executes the SQL that
:mod:`repro.relational.sql` generates — demonstrating that the extraction
pipeline runs unchanged on a real SQL engine, and acting as a cross-check for
the pure-Python executor.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Iterable, Sequence

from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.query import ConjunctiveQuery
from repro.relational.sql import create_table_sql, to_sql

Row = tuple[Any, ...]


class SQLiteBackend:
    """Mirror a :class:`Database` into an in-memory SQLite database."""

    def __init__(self, database: Database) -> None:
        self._db = database
        # the backend may be cached on the Database and shared by extractions
        # running on different threads (e.g. the analysis service); statements
        # are serialised through a lock instead of per-thread connections
        self._conn = sqlite3.connect(":memory:", check_same_thread=False)
        self._lock = threading.RLock()
        self._loaded = False

    # ------------------------------------------------------------------ #
    def load(self) -> "SQLiteBackend":
        """(Re)create and populate every table.  Idempotent."""
        with self._lock:
            cursor = self._conn.cursor()
            try:
                for name in self._db.table_names():
                    cursor.execute(f"DROP TABLE IF EXISTS {name}")
                    cursor.execute(create_table_sql(self._db, name))
                    table = self._db.table(name)
                    if table.num_rows:
                        placeholders = ", ".join("?" for _ in range(table.schema.arity))
                        cursor.executemany(
                            f"INSERT INTO {name} VALUES ({placeholders})", table.rows()
                        )
            except sqlite3.Error as exc:
                raise QueryError(f"cannot mirror table {name!r} into sqlite: {exc}") from exc
            self._conn.commit()
            self._loaded = True
        return self

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteBackend":
        return self.load()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def execute_sql(self, sql: str, parameters: Iterable[Any] = ()) -> list[Row]:
        """Run raw SQL and return all rows."""
        if not self._loaded:
            self.load()
        with self._lock:
            try:
                cursor = self._conn.execute(sql, tuple(parameters))
            except sqlite3.Error as exc:
                raise QueryError(f"sqlite error for {sql!r}: {exc}") from exc
            return [tuple(row) for row in cursor.fetchall()]

    def executemany(self, sql: str, rows: Sequence[Sequence[Any]]) -> None:
        """Run one statement for every parameter row (bulk temp-table fills)."""
        if not self._loaded:
            self.load()
        with self._lock:
            try:
                self._conn.executemany(sql, rows)
            except sqlite3.Error as exc:
                raise QueryError(f"sqlite error for {sql!r}: {exc}") from exc

    def evaluate(self, query: ConjunctiveQuery, use_distinct: bool = True) -> list[Row]:
        """Evaluate a conjunctive query by generating SQL and executing it.

        Constant and comparison values are passed via ``sqlite3`` parameter
        binding, never inlined, so quotes, NUL bytes and floats round-trip.
        """
        parameters: list[Any] = []
        sql = to_sql(self._db, query, use_distinct=use_distinct, parameters=parameters)
        return self.execute_sql(sql, parameters)

    def row_count(self, table: str) -> int:
        rows = self.execute_sql(f"SELECT COUNT(*) FROM {table}")
        return int(rows[0][0])

    def n_distinct(self, table: str, column: str) -> int:
        """Distinct-value count computed by SQLite (catalog cross-check)."""
        rows = self.execute_sql(f"SELECT COUNT(DISTINCT {column}) FROM {table}")
        return int(rows[0][0])
