"""Dynamic algorithms: maintain previous results over a delta stream.

The complement of :mod:`repro.graph.delta`: once mutations are journaled as
edge deltas instead of invalidating the snapshot, results computed *before*
the mutation can often be repaired instead of recomputed — the
Berkholz-style "cheap re-answering after constant-time updates" frame the
ROADMAP names for the paper's Section 4.4 mutation workloads.

Each maintainer follows one contract::

    maintain(prev_values, csr, delta, params, backend) -> values | None

``prev_values`` is the algorithm's previous decoded result (external-ID
keyed), ``csr`` the *current* merged snapshot, ``delta`` a
:class:`~repro.incremental.base.DeltaView` of the records the previous
result has not absorbed, ``params`` the request's effective parameters and
``backend`` the resolved kernel backend.  The return value must satisfy the
same equivalence contract the backends do: integer-valued results
(components, BFS) **equal** a cold recompute on the current snapshot
bit-for-bit; float-valued results (PageRank) match within the documented
tolerance under the same termination contract.  ``None`` means "this delta
is not cheaply maintainable" (e.g. a deletion that may split a component)
and the caller falls back to the cold kernel.

Registered maintainers (:data:`MAINTAINERS`) are wired into
``PLAN_ALGORITHMS`` routing via ``PlanAlgorithm.maintainer``, so both the
scheduled and compiled plan paths serve incremental nodes whenever a
previous result plus a replayable journal window are available.
"""

from __future__ import annotations

from repro.incremental.base import DeltaView, build_delta_view
from repro.incremental.bfs import maintain_bfs
from repro.incremental.components import maintain_components
from repro.incremental.pagerank import maintain_pagerank

#: maintainer name (``PlanAlgorithm.maintainer``) -> maintain callable
MAINTAINERS = {
    "components": maintain_components,
    "pagerank": maintain_pagerank,
    "bfs": maintain_bfs,
}

__all__ = [
    "DeltaView",
    "build_delta_view",
    "MAINTAINERS",
    "maintain_components",
    "maintain_pagerank",
    "maintain_bfs",
]
