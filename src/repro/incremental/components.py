"""Dynamic connected components: union-find over the delta stream.

Edge additions only ever *merge* components, so the previous labeling plus a
union per added pair determines the new partition exactly — no traversal of
the snapshot at all, ``O(k α)`` for k added edges.  A net edge *removal* may
split a component, and deciding whether it does costs a reachability query,
so deletions fall back to the cold kernel (return ``None``).

The cold kernels label components 0-based in order of each component's
first dense vertex; identical partitions therefore canonicalise to identical
labelings, which is what makes the maintained result bit-identical to a
cold recompute.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.incremental.base import DeltaView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def maintain_components(
    prev_values: dict,
    csr: "CSRGraph",
    delta: DeltaView,
    params: dict,
    backend: "KernelBackend",
) -> dict | None:
    if delta.removed:
        return None  # a removal may split; recompute decides

    ids = csr.external_ids
    n = csr.n
    index = csr._index
    parent = list(range(n))

    def find(item: int) -> int:
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    # seed the forest with the previous partition: vertices sharing a prev
    # label join one set (vertices the previous result does not know — new
    # ones — stay singletons)
    anchor: dict = {}
    for vertex in ids:
        label = prev_values.get(vertex)
        if label is None:
            continue
        dense = index[vertex]
        if label in anchor:
            union(anchor[label], dense)
        else:
            anchor[label] = dense
    for u, v in delta.added:
        union(index[u], index[v])

    # canonical relabel: 0-based in first-vertex order, exactly the kernels'
    labels_of_root: dict[int, int] = {}
    values: dict = {}
    for dense, vertex in enumerate(ids):
        root = find(dense)
        label = labels_of_root.get(root)
        if label is None:
            label = labels_of_root[root] = len(labels_of_root)
        values[vertex] = label
    return values
