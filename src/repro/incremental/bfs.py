"""Delta-BFS: repair a distance map from the changed frontiers.

With insertions only, exact previous distances are an *over*-estimate
nowhere and an under-estimate nowhere — a new edge ``u -> v`` can only
shorten paths through ``v``.  Label-correcting relaxation seeded from the
added edges' improved endpoints therefore converges to the exact new
distance map while visiting only the region the delta actually improved.

Fallbacks (return ``None``):

* any net removal whose endpoints look like a shortest-path tree edge
  (``dist(v) == dist(u) + 1``) — the removal may lengthen or disconnect;
  removals provably off every shortest path are ignored instead;
* a depth-limited previous result (``max_depth``): repaired frontiers could
  not distinguish "beyond the horizon" from "unreached".
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.incremental.base import DeltaView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def maintain_bfs(
    prev_values: dict,
    csr: "CSRGraph",
    delta: DeltaView,
    params: dict,
    backend: "KernelBackend",
) -> dict | None:
    if params.get("max_depth") is not None:
        return None
    source = params["source"]
    if prev_values.get(source) != 0:
        return None  # previous result is not a full-depth map from source
    for u, v in delta.removed:
        du = prev_values.get(u)
        if du is not None and prev_values.get(v) == du + 1:
            return None  # possibly a tree edge: repair is not monotone
        # otherwise the removed edge lay on no shortest path; ignore it

    index = csr._index
    ids = csr.external_ids
    n = csr.n
    distances = [-1] * n
    for vertex, distance in prev_values.items():
        dense = index.get(vertex)
        if dense is not None:
            distances[dense] = distance

    offsets = csr.offsets_list
    targets = csr.targets_list
    queue: deque[int] = deque()
    for u, v in delta.added:
        iu, iv = index[u], index[v]
        du = distances[iu]
        if du >= 0 and (distances[iv] < 0 or distances[iv] > du + 1):
            distances[iv] = du + 1
            queue.append(iv)
    while queue:
        current = queue.popleft()
        next_distance = distances[current] + 1
        for e in range(offsets[current], offsets[current + 1]):
            neighbor = targets[e]
            if distances[neighbor] < 0 or distances[neighbor] > next_distance:
                distances[neighbor] = next_distance
                queue.append(neighbor)

    return {ids[v]: d for v, d in enumerate(distances) if d >= 0}
