"""Shared delta decoding for the dynamic-algorithm maintainers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graph.api import VertexId


@dataclass(frozen=True)
class DeltaView:
    """Net view of a delta-record window, as the maintainers consume it.

    Last-op-wins per directed pair (the same netting
    :class:`~repro.graph.delta.DeltaOverlay` applies when merging
    snapshots), so a maintainer never sees an edge that was added and
    removed inside the window.
    """

    #: net-present directed pairs, first-touch order
    added: tuple[tuple[VertexId, VertexId], ...] = ()
    #: net-absent directed pairs, first-touch order
    removed: tuple[tuple[VertexId, VertexId], ...] = ()
    #: vertices introduced by ``V`` records, first-appearance order
    new_vertices: tuple[VertexId, ...] = ()
    #: raw records in the window (maintenance-cost accounting)
    record_count: int = 0
    #: touched pairs that existed *before* the window — their first
    #: effective op was a removal.  The journal only records effective
    #: deltas, so a pair whose first op is ``+`` was absent beforehand;
    #: maintainers that reconstruct the pre-delta structure (incremental
    #: PageRank's residual) need this to tell a genuinely new edge from a
    #: removed-then-re-added one the netting collapses to ``added``.
    prior_present: frozenset = frozenset()

    @property
    def empty(self) -> bool:
        return self.record_count == 0


def build_delta_view(records: list[tuple[str, Any]]) -> DeltaView:
    """Net a raw record window into a :class:`DeltaView`."""
    last: dict[tuple[VertexId, VertexId], str] = {}
    first: dict[tuple[VertexId, VertexId], str] = {}
    vertices: list[VertexId] = []
    seen: set[VertexId] = set()
    for op, payload in records:
        if op == "V":
            if payload not in seen:
                seen.add(payload)
                vertices.append(payload)
            continue
        last[payload] = op
        if payload not in first:
            first[payload] = op
    return DeltaView(
        added=tuple(pair for pair, op in last.items() if op == "+"),
        removed=tuple(pair for pair, op in last.items() if op == "-"),
        new_vertices=tuple(vertices),
        record_count=len(records),
        prior_present=frozenset(pair for pair, op in first.items() if op == "-"),
    )
