"""Incremental PageRank: a localized correction solve, falling back to a
warm-started power iteration.

PageRank is linear in its source term: with ``P`` the out-degree-normalised
transition matrix, the fixed point satisfies ``r = (1-d)/n + d P^T r``.  A
small edge delta changes a handful of *rows* of ``P``, so the new fixed
point differs from the previous one by a correction ``e`` that solves

    e = d P^T e + rho,     rho = d (P - P0)^T r_prev

``rho`` is supported only on the out-neighborhoods of vertices whose
adjacency changed, and the Neumann series ``e = sum_t (d P^T)^t rho``
spreads that support one hop per term while its mass shrinks by the damping
factor.  On a graph whose delta neighborhood is small relative to the whole
(the k << m regime the journal is built for), the series converges after
touching a region far smaller than one dense sweep — the classic dynamic-
PageRank observation (Chien et al.; Bahmani et al., VLDB'10) that updates
are local.

The sparse path is *exact about structure*: it distinguishes a genuinely
new edge from a removed-then-re-added one via
:attr:`~repro.incremental.base.DeltaView.prior_present`, and it refuses
(falls back) whenever its assumptions don't hold — vertex set changed,
dangling vertices present (their redistributed mass couples every vertex,
so the correction is dense), or the frontier grows past a work budget where
a dense warm start is cheaper.  Termination mirrors the kernels' contract:
the series is truncated once its per-term L1 mass drops below the same
``tolerance``, capped at the same ``max_iterations``, so a converged
maintained result sits within the same distance of the true fixed point as
a converged cold run (L∞ within the backends' documented 1e-9 for
tolerances at or below 1e-10).

The dense fallback restarts power iteration from the previous ranks
(renormalised over the current vertex set) — strictly better-seeded than a
cold run, same termination contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.algorithms.pagerank import pagerank_kernel
from repro.incremental.base import DeltaView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph

#: the sparse solve bails to the dense warm start once it has pushed more
#: than ``m * max_iterations / _BUDGET_DIVISOR`` edge traversals — past that
#: the frontier has engulfed enough of the graph that per-edge dict work
#: loses to the kernels' array sweeps
_BUDGET_DIVISOR = 16


def maintain_pagerank(
    prev_values: dict,
    csr: "CSRGraph",
    delta: DeltaView,
    params: dict,
    backend: "KernelBackend",
) -> dict | None:
    n = csr.n
    if n == 0:
        return {}
    maintained = _maintain_sparse(prev_values, csr, delta, params)
    if maintained is not None:
        return maintained

    uniform = 1.0 / n
    initial = [prev_values.get(vertex, uniform) for vertex in csr.external_ids]
    total = sum(initial)
    if total <= 0.0:
        return None
    initial = [rank / total for rank in initial]
    ranks = pagerank_kernel(
        csr,
        damping=params["damping"],
        max_iterations=params["max_iterations"],
        tolerance=params["tolerance"],
        backend=backend,
        initial=initial,
    )
    return csr.decode(ranks)


def _maintain_sparse(
    prev_values: dict, csr: "CSRGraph", delta: DeltaView, params: dict
) -> dict | None:
    """Correction solve; ``None`` means "use the dense warm start"."""
    n = csr.n
    if len(prev_values) != n or delta.new_vertices:
        return None  # vertex set changed: (1-d)/n shifted at every vertex
    ids = csr.external_ids
    index = csr._index
    offsets = csr.offsets_list
    targets = csr.targets_list
    damping = params["damping"]
    tolerance = params["tolerance"]
    max_iterations = params["max_iterations"]

    ranks = [0.0] * n
    for dense, vertex in enumerate(ids):
        rank = prev_values.get(vertex)
        if rank is None:
            return None  # same cardinality, different vertices
        if offsets[dense + 1] == offsets[dense]:
            return None  # dangling: redistributed mass couples every vertex
        ranks[dense] = rank

    # per-source structural delta, old-graph membership resolved through
    # prior_present (a net-added pair that was present before the window is
    # a remove+re-add: structurally a no-op)
    new_out: dict[int, list[int]] = {}
    old_out: dict[int, list[int]] = {}
    for u_ext, v_ext in delta.added:
        if (u_ext, v_ext) in delta.prior_present:
            continue
        u, v = index.get(u_ext), index.get(v_ext)
        if u is None or v is None:
            return None
        new_out.setdefault(u, []).append(v)
    for u_ext, v_ext in delta.removed:
        if (u_ext, v_ext) not in delta.prior_present:
            continue  # added-then-removed inside the window: never existed
        u, v = index.get(u_ext), index.get(v_ext)
        if u is None or v is None:
            return None
        old_out.setdefault(u, []).append(v)
    if not new_out and not old_out:
        return dict(prev_values)

    # rho = d (P - P0)^T r_prev, supported on changed out-neighborhoods
    residual: dict[int, float] = {}
    for u in set(new_out) | set(old_out):
        start, end = offsets[u], offsets[u + 1]
        new_deg = end - start
        old_deg = new_deg - len(new_out.get(u, ())) + len(old_out.get(u, ()))
        if old_deg <= 0:
            return None  # u dangled before the delta: dense coupling
        share_new = damping * ranks[u] / new_deg
        share_old = damping * ranks[u] / old_deg
        added_here = set(new_out.get(u, ()))
        for e in range(start, end):
            v = targets[e]
            residual[v] = residual.get(v, 0.0) + share_new - (
                0.0 if v in added_here else share_old
            )
        for v in old_out.get(u, ()):
            residual[v] = residual.get(v, 0.0) - share_old
    residual = {v: value for v, value in residual.items() if value != 0.0}

    # Neumann series: e = sum_t (d P^T)^t rho, truncated on the kernels'
    # own contract — per-term L1 mass below tolerance, max_iterations cap
    budget = max(offsets[n], offsets[n] * max_iterations // _BUDGET_DIVISOR)
    pushed = 0
    correction: dict[int, float] = {}
    current = residual
    for _ in range(max_iterations):
        for v, value in current.items():
            correction[v] = correction.get(v, 0.0) + value
        mass = sum(abs(value) for value in current.values())
        if mass < tolerance:
            break
        pushed += sum(offsets[u + 1] - offsets[u] for u in current)
        if pushed > budget:
            return None  # frontier too wide: the dense warm start wins
        spread: dict[int, float] = {}
        for u, value in current.items():
            share = damping * value / (offsets[u + 1] - offsets[u])
            for e in range(offsets[u], offsets[u + 1]):
                v = targets[e]
                spread[v] = spread.get(v, 0.0) + share
        current = spread

    maintained = dict(prev_values)
    for dense, value in correction.items():
        maintained[ids[dense]] = ranks[dense] + value
    return maintained
