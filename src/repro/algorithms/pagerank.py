"""PageRank over the CSR execution kernel.

PageRank is the paper's canonical "whole graph, many passes" workload
(Figure 11, Table 3, Table 4).  It is *not* duplicate-insensitive: running it
directly on a duplicated condensed graph would over-weight edges with multiple
paths, which is exactly why deduplication matters.

Two-phase execution: the input graph is encoded into a
:class:`~repro.graph.kernel.CSRGraph` snapshot once, power iteration runs on
flat float lists indexed by dense vertex index, and the result is decoded back
to external vertex IDs.  The kernel mirrors the summation order of the
pre-kernel Graph-API implementation, so the floating-point results are
bit-for-bit identical.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId
from repro.graph.kernel import CSRGraph


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1.0e-9,
) -> dict[VertexId, float]:
    """Power-iteration PageRank.

    Dangling vertices (out-degree zero) redistribute their rank uniformly, the
    standard correction.  Iteration stops when the L1 change drops below
    ``tolerance`` or after ``max_iterations``.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    csr = graph.snapshot()
    if csr.n == 0:
        return {}
    return csr.decode(_pagerank_kernel(csr, damping, max_iterations, tolerance))


def _pagerank_kernel(
    csr: CSRGraph, damping: float, max_iterations: int, tolerance: float
) -> list[float]:
    """Dense power iteration; returns the per-index rank list."""
    n = csr.n
    offsets = csr.offsets_list
    targets = csr.targets_list
    ranks = [1.0 / n] * n
    for _ in range(max_iterations):
        dangling_mass = sum(ranks[v] for v in range(n) if offsets[v + 1] == offsets[v])
        base = (1.0 - damping) / n + damping * dangling_mass / n
        next_ranks = [base] * n
        for vertex in range(n):
            start = offsets[vertex]
            end = offsets[vertex + 1]
            if start == end:
                continue
            share = damping * ranks[vertex] / (end - start)
            for e in range(start, end):
                next_ranks[targets[e]] += share
        change = sum(abs(next_ranks[v] - ranks[v]) for v in range(n))
        ranks = next_ranks
        if change < tolerance:
            break
    return ranks


def top_k_pagerank(graph: Graph, k: int = 10, **kwargs: float) -> list[tuple[VertexId, float]]:
    """The ``k`` highest-ranked vertices as ``(vertex, score)`` pairs."""
    scores = pagerank(graph, **kwargs)
    return sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
