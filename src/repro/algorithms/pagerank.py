"""PageRank over the Graph API.

PageRank is the paper's canonical "whole graph, many passes" workload
(Figure 11, Table 3, Table 4).  It is *not* duplicate-insensitive: running it
directly on a duplicated condensed graph would over-weight edges with multiple
paths, which is exactly why deduplication matters.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1.0e-9,
) -> dict[VertexId, float]:
    """Power-iteration PageRank.

    Dangling vertices (out-degree zero) redistribute their rank uniformly, the
    standard correction.  Iteration stops when the L1 change drops below
    ``tolerance`` or after ``max_iterations``.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    vertices = list(graph.get_vertices())
    n = len(vertices)
    if n == 0:
        return {}

    # cache neighbor lists and degrees: every iteration reuses them, and on
    # condensed representations computing them is the expensive part
    neighbors: dict[VertexId, list[VertexId]] = {v: list(graph.get_neighbors(v)) for v in vertices}
    ranks = {v: 1.0 / n for v in vertices}

    for _ in range(max_iterations):
        dangling_mass = sum(ranks[v] for v in vertices if not neighbors[v])
        next_ranks = {v: (1.0 - damping) / n + damping * dangling_mass / n for v in vertices}
        for vertex in vertices:
            out = neighbors[vertex]
            if not out:
                continue
            share = damping * ranks[vertex] / len(out)
            for neighbor in out:
                next_ranks[neighbor] += share
        change = sum(abs(next_ranks[v] - ranks[v]) for v in vertices)
        ranks = next_ranks
        if change < tolerance:
            break
    return ranks


def top_k_pagerank(graph: Graph, k: int = 10, **kwargs: float) -> list[tuple[VertexId, float]]:
    """The ``k`` highest-ranked vertices as ``(vertex, score)`` pairs."""
    scores = pagerank(graph, **kwargs)
    return sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
