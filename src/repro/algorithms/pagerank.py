"""PageRank over the CSR execution kernel.

PageRank is the paper's canonical "whole graph, many passes" workload
(Figure 11, Table 3, Table 4).  It is *not* duplicate-insensitive: running it
directly on a duplicated condensed graph would over-weight edges with multiple
paths, which is exactly why deduplication matters.

Two-phase execution: the input graph is encoded into a
:class:`~repro.graph.kernel.CSRGraph` snapshot once, power iteration runs on
flat per-index float arrays in the selected kernel backend
(:func:`repro.graph.backend.get_backend`), and the result is decoded back to
external vertex IDs.  The ``python`` backend mirrors the summation order of
the pre-kernel Graph-API implementation bit-for-bit; the ``numpy`` backend
re-associates sums and matches it within 1e-9 L-infinity.

:func:`pagerank_kernel` is the kernel-level entry point the session layer's
:class:`~repro.session.AnalysisPlan` calls over a shared snapshot; the free
functions are thin delegations around it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def pagerank_kernel(
    csr: "CSRGraph",
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1.0e-9,
    backend: "KernelBackend | None" = None,
    initial: list[float] | None = None,
) -> list[float]:
    """Kernel-level entry point: per-index PageRank over a built snapshot.

    ``initial`` warm-starts the power iteration from a previous rank vector
    (the incremental-maintenance path); termination semantics are identical
    to the cold run.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    if csr.n == 0:
        return []
    return (backend or get_backend()).pagerank(
        csr, damping, max_iterations, tolerance, initial=initial
    )


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1.0e-9,
) -> dict[VertexId, float]:
    """Power-iteration PageRank.

    Dangling vertices (out-degree zero) redistribute their rank uniformly, the
    standard correction.  Iteration stops when the L1 change drops below
    ``tolerance`` or after ``max_iterations``.
    """
    csr = graph.snapshot()
    return csr.decode(pagerank_kernel(csr, damping, max_iterations, tolerance))


def top_k_pagerank(graph: Graph, k: int = 10, **kwargs: float) -> list[tuple[VertexId, float]]:
    """The ``k`` highest-ranked vertices as ``(vertex, score)`` pairs."""
    scores = pagerank(graph, **kwargs)
    return sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
