"""Centrality measures over the CSR execution kernel.

Centrality analysis is one of the graph analysis tasks the paper's
introduction lists as a motivation for extracting hidden graphs.

* :func:`degree_centrality` — normalised out-degree (off the offset array).
* :func:`closeness_centrality` — inverse average BFS distance (Wasserman–Faust
  normalisation for disconnected graphs), one integer BFS per vertex.
* :func:`betweenness_centrality` — Brandes' algorithm on flat sigma/delta
  lists; an optional ``sample_size`` runs it from a random sample of sources,
  the standard approximation for large graphs.
"""

from __future__ import annotations

import random

from repro.graph.api import Graph, VertexId
from repro.graph.kernel import CSRGraph, bfs_distances_kernel


def degree_centrality(graph: Graph) -> dict[VertexId, float]:
    """Out-degree divided by ``n - 1`` (0.0 for a single-vertex graph)."""
    csr = graph.snapshot()
    n = csr.n
    if n <= 1:
        return csr.decode([0.0] * n)
    scale = 1.0 / (n - 1)
    return csr.decode([degree * scale for degree in csr.degrees()])


def closeness_centrality(graph: Graph) -> dict[VertexId, float]:
    """Closeness of every vertex, scaled by the fraction of reachable vertices.

    For vertex ``u`` reaching ``r`` other vertices with total distance ``d``,
    closeness is ``((r) / (n - 1)) * (r / d)`` — the Wasserman–Faust variant
    that remains comparable across components.  Vertices reaching nothing get
    0.0.
    """
    csr = graph.snapshot()
    n = csr.n
    result = [0.0] * n
    for vertex in range(n):
        reachable = 0
        total = 0
        for distance in bfs_distances_kernel(csr, vertex):
            if distance > 0:
                reachable += 1
                total += distance
        if reachable <= 0 or total <= 0 or n <= 1:
            continue
        result[vertex] = (reachable / (n - 1)) * (reachable / total)
    return csr.decode(result)


def betweenness_centrality(
    graph: Graph,
    normalized: bool = True,
    sample_size: int | None = None,
    seed: int = 0,
) -> dict[VertexId, float]:
    """Shortest-path betweenness (Brandes 2001).

    With ``sample_size`` set, the accumulation runs only from a random sample
    of source vertices and the result is rescaled by ``n / sample_size`` —
    the usual unbiased estimator for large extracted graphs.
    """
    csr = graph.snapshot()
    n = csr.n
    if n <= 2:
        return csr.decode([0.0] * n)

    if sample_size is not None and sample_size < n:
        rng = random.Random(seed)
        sources = [csr.index(v) for v in rng.sample(csr.external_ids, sample_size)]
        scale_sources = n / sample_size
    else:
        sources = list(range(n))
        scale_sources = 1.0

    betweenness = _betweenness_kernel(csr, sources)

    scale = scale_sources
    if normalized:
        scale /= (n - 1) * (n - 2)
    if scale != 1.0:
        betweenness = [value * scale for value in betweenness]
    return csr.decode(betweenness)


def _betweenness_kernel(csr: CSRGraph, sources: list[int]) -> list[float]:
    """Brandes accumulation from ``sources`` over dense indexes."""
    n = csr.n
    offsets = csr.offsets_list
    targets = csr.targets_list
    betweenness = [0.0] * n

    for source in sources:
        # single-source shortest paths (unweighted -> BFS)
        predecessors: list[list[int]] = [[] for _ in range(n)]
        sigma = [0.0] * n
        distance = [-1] * n
        sigma[source] = 1.0
        distance[source] = 0
        stack: list[int] = [source]
        head = 0
        while head < len(stack):
            current = stack[head]
            head += 1
            next_distance = distance[current] + 1
            for e in range(offsets[current], offsets[current + 1]):
                neighbor = targets[e]
                if distance[neighbor] < 0:
                    distance[neighbor] = next_distance
                    stack.append(neighbor)
                if distance[neighbor] == next_distance:
                    sigma[neighbor] += sigma[current]
                    predecessors[neighbor].append(current)
        # accumulation in reverse visit order
        delta = [0.0] * n
        for w in reversed(stack):
            for v in predecessors[w]:
                if sigma[w] > 0:
                    delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != source:
                betweenness[w] += delta[w]
    return betweenness


def top_k_central(centrality: dict[VertexId, float], k: int = 10) -> list[tuple[VertexId, float]]:
    """The ``k`` highest-scoring vertices of any centrality map, descending."""
    return sorted(centrality.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
