"""Centrality measures over the Graph API.

Centrality analysis is one of the graph analysis tasks the paper's
introduction lists as a motivation for extracting hidden graphs.  All three
measures here only use ``get_vertices`` / ``get_neighbors``, so they run on
every in-memory representation.

* :func:`degree_centrality` — normalised out-degree.
* :func:`closeness_centrality` — inverse average BFS distance (Wasserman–Faust
  normalisation for disconnected graphs).
* :func:`betweenness_centrality` — Brandes' algorithm; an optional
  ``sample_size`` runs it from a random sample of sources, the standard
  approximation for large graphs.
"""

from __future__ import annotations

import random
from collections import deque

from repro.algorithms.bfs import bfs_distances
from repro.graph.api import Graph, VertexId


def degree_centrality(graph: Graph) -> dict[VertexId, float]:
    """Out-degree divided by ``n - 1`` (0.0 for a single-vertex graph)."""
    vertices = list(graph.get_vertices())
    n = len(vertices)
    if n <= 1:
        return {vertex: 0.0 for vertex in vertices}
    return {vertex: graph.degree(vertex) / (n - 1) for vertex in vertices}


def closeness_centrality(graph: Graph) -> dict[VertexId, float]:
    """Closeness of every vertex, scaled by the fraction of reachable vertices.

    For vertex ``u`` reaching ``r`` other vertices with total distance ``d``,
    closeness is ``((r) / (n - 1)) * (r / d)`` — the Wasserman–Faust variant
    that remains comparable across components.  Vertices reaching nothing get
    0.0.
    """
    vertices = list(graph.get_vertices())
    n = len(vertices)
    result: dict[VertexId, float] = {}
    for vertex in vertices:
        distances = bfs_distances(graph, vertex)
        reachable = len(distances) - 1
        total = sum(distances.values())
        if reachable <= 0 or total <= 0 or n <= 1:
            result[vertex] = 0.0
            continue
        result[vertex] = (reachable / (n - 1)) * (reachable / total)
    return result


def betweenness_centrality(
    graph: Graph,
    normalized: bool = True,
    sample_size: int | None = None,
    seed: int = 0,
) -> dict[VertexId, float]:
    """Shortest-path betweenness (Brandes 2001).

    With ``sample_size`` set, the accumulation runs only from a random sample
    of source vertices and the result is rescaled by ``n / sample_size`` —
    the usual unbiased estimator for large extracted graphs.
    """
    vertices = list(graph.get_vertices())
    n = len(vertices)
    betweenness: dict[VertexId, float] = {vertex: 0.0 for vertex in vertices}
    if n <= 2:
        return betweenness

    if sample_size is not None and sample_size < n:
        rng = random.Random(seed)
        sources = rng.sample(vertices, sample_size)
        scale_sources = n / sample_size
    else:
        sources = vertices
        scale_sources = 1.0

    for source in sources:
        # single-source shortest paths (unweighted -> BFS)
        stack: list[VertexId] = []
        predecessors: dict[VertexId, list[VertexId]] = {vertex: [] for vertex in vertices}
        sigma: dict[VertexId, float] = {vertex: 0.0 for vertex in vertices}
        distance: dict[VertexId, int] = {}
        sigma[source] = 1.0
        distance[source] = 0
        queue: deque[VertexId] = deque([source])
        while queue:
            current = queue.popleft()
            stack.append(current)
            for neighbor in graph.get_neighbors(current):
                if neighbor not in distance:
                    distance[neighbor] = distance[current] + 1
                    queue.append(neighbor)
                if distance[neighbor] == distance[current] + 1:
                    sigma[neighbor] += sigma[current]
                    predecessors[neighbor].append(current)
        # accumulation
        delta: dict[VertexId, float] = {vertex: 0.0 for vertex in vertices}
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                if sigma[w] > 0:
                    delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != source:
                betweenness[w] += delta[w]

    scale = scale_sources
    if normalized:
        scale /= (n - 1) * (n - 2)
    if scale != 1.0:
        for vertex in betweenness:
            betweenness[vertex] *= scale
    return betweenness


def top_k_central(centrality: dict[VertexId, float], k: int = 10) -> list[tuple[VertexId, float]]:
    """The ``k`` highest-scoring vertices of any centrality map, descending."""
    return sorted(centrality.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
