"""Centrality measures over the CSR execution kernel.

Centrality analysis is one of the graph analysis tasks the paper's
introduction lists as a motivation for extracting hidden graphs.

* :func:`degree_centrality` — normalised out-degree (off the offset array).
* :func:`closeness_centrality` — inverse average BFS distance (Wasserman–Faust
  normalisation for disconnected graphs), one integer BFS per vertex.
* :func:`betweenness_centrality` — Brandes' algorithm on flat sigma/delta
  lists; an optional ``sample_size`` runs it from a random sample of sources,
  the standard approximation for large graphs.

All three dispatch to the selected kernel backend
(:func:`repro.graph.backend.get_backend`).  The path counts (sigma) are
integers and identical on every backend; the float delta accumulation is
re-associated by the ``numpy`` backend's per-level ``bincount`` reduction, so
betweenness and closeness match the reference within 1e-9 L-infinity.

:func:`closeness_kernel` / :func:`betweenness_kernel` are the kernel-level
entry points (sampling and normalisation included) the session layer's
:class:`~repro.session.AnalysisPlan` calls over a shared snapshot; the free
functions are thin delegations around them.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.algorithms.degree import degrees_kernel
from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def closeness_kernel(csr: "CSRGraph", backend: "KernelBackend | None" = None) -> list[float]:
    """Kernel-level entry point: Wasserman–Faust closeness per dense index."""
    return (backend or get_backend()).closeness_centrality(csr)


def closeness_value(n: int, reachable: int, total: int) -> float:
    """Wasserman–Faust closeness of one vertex from its BFS-tree stats.

    A pure function of integers — ``reachable`` vertices at ``total`` summed
    hop distance in an ``n``-vertex graph — so every backend (and the plan
    compiler's shared-sweep finaliser) computing it from the same tree
    produces the same float, bit for bit.
    """
    if reachable <= 0 or total <= 0 or n <= 1:
        return 0.0
    return (reachable / (n - 1)) * (reachable / total)


def betweenness_sources(
    csr: "CSRGraph", sample_size: int | None, seed: int
) -> tuple[list[int], float]:
    """The dense source indexes a betweenness run accumulates from, plus the
    sampling rescale factor.

    Sampling draws from the snapshot's external-ID list with the same seeded
    generator the free function always used, so sampled sources are identical
    for a given seed — shared by the serial kernel and the plan scheduler's
    chunk-parallel path, which partitions this exact list across workers.
    """
    n = csr.n
    if sample_size is not None and sample_size < n:
        rng = random.Random(seed)
        return [csr.index(v) for v in rng.sample(csr.external_ids, sample_size)], n / sample_size
    return list(range(n)), 1.0


def apply_betweenness_scale(
    values: list[float], n: int, normalized: bool, scale_sources: float
) -> list[float]:
    """Final normalisation/sampling rescale, shared by the serial kernel and
    the chunk-parallel merge (identical arithmetic keeps them bit-identical)."""
    scale = scale_sources
    if normalized:
        scale /= (n - 1) * (n - 2)
    if scale != 1.0:
        values = [value * scale for value in values]
    return values


def betweenness_kernel(
    csr: "CSRGraph",
    normalized: bool = True,
    sample_size: int | None = None,
    seed: int = 0,
    backend: "KernelBackend | None" = None,
) -> list[float]:
    """Kernel-level entry point: Brandes betweenness per dense index."""
    n = csr.n
    if n <= 2:
        return [0.0] * n
    sources, scale_sources = betweenness_sources(csr, sample_size, seed)
    betweenness = (backend or get_backend()).betweenness(csr, sources)
    return apply_betweenness_scale(betweenness, n, normalized, scale_sources)


def degree_centrality(graph: Graph) -> dict[VertexId, float]:
    """Out-degree divided by ``n - 1`` (0.0 for a single-vertex graph)."""
    csr = graph.snapshot()
    n = csr.n
    if n <= 1:
        return csr.decode([0.0] * n)
    scale = 1.0 / (n - 1)
    return csr.decode([degree * scale for degree in degrees_kernel(csr)])


def closeness_centrality(graph: Graph) -> dict[VertexId, float]:
    """Closeness of every vertex, scaled by the fraction of reachable vertices.

    For vertex ``u`` reaching ``r`` other vertices with total distance ``d``,
    closeness is ``((r) / (n - 1)) * (r / d)`` — the Wasserman–Faust variant
    that remains comparable across components.  Vertices reaching nothing get
    0.0.
    """
    csr = graph.snapshot()
    return csr.decode(closeness_kernel(csr))


def betweenness_centrality(
    graph: Graph,
    normalized: bool = True,
    sample_size: int | None = None,
    seed: int = 0,
) -> dict[VertexId, float]:
    """Shortest-path betweenness (Brandes 2001).

    With ``sample_size`` set, the accumulation runs only from a random sample
    of source vertices and the result is rescaled by ``n / sample_size`` —
    the usual unbiased estimator for large extracted graphs.
    """
    csr = graph.snapshot()
    return csr.decode(
        betweenness_kernel(csr, normalized=normalized, sample_size=sample_size, seed=seed)
    )


def top_k_central(centrality: dict[VertexId, float], k: int = 10) -> list[tuple[VertexId, float]]:
    """The ``k`` highest-scoring vertices of any centrality map, descending."""
    return sorted(centrality.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
