"""Breadth-first search over the CSR execution kernel.

BFS is one of the paper's three benchmark algorithms; it is also
duplicate-insensitive, i.e. it returns correct results even when run directly
on C-DUP without deduplication (Section 4.1).

Each public function encodes the graph into its cached
:class:`~repro.graph.kernel.CSRGraph` snapshot, runs an integer-frontier
kernel from the selected backend (:func:`repro.graph.backend.get_backend`),
and decodes at the boundary.  Repeated BFS calls on the same graph — the
Figure 11 workload runs 50 sources — share one snapshot, so only the first
call pays the encoding cost.  Discovery order matches the pre-kernel FIFO
implementation exactly on every backend (the ``numpy`` frontier kernels
preserve first-occurrence discovery order, see
:mod:`repro.graph.backend.numpy_backend`).

:func:`distances_kernel` / :func:`order_kernel` / :func:`parents_kernel` are
the kernel-level entry points (dense source index in, dense lists out) that
the session layer's :class:`~repro.session.AnalysisPlan` calls over a shared
snapshot; the free functions are thin encode/decode delegations around them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import RepresentationError
from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def distances_kernel(
    csr: "CSRGraph",
    source: int,
    max_depth: int | None = None,
    backend: "KernelBackend | None" = None,
) -> list[int]:
    """Kernel-level entry point: hop distance per dense index (-1 unreachable)."""
    return (backend or get_backend()).bfs_distances(csr, source, max_depth=max_depth)


def order_kernel(
    csr: "CSRGraph", source: int, backend: "KernelBackend | None" = None
) -> list[int]:
    """Kernel-level entry point: dense indexes in BFS visit order."""
    return (backend or get_backend()).bfs_order(csr, source)


def parents_kernel(
    csr: "CSRGraph", source: int, backend: "KernelBackend | None" = None
) -> list[int]:
    """Kernel-level entry point: BFS-tree parent per dense index
    (``-1`` root, ``-2`` unreached)."""
    return (backend or get_backend()).bfs_parents(csr, source)


def _encode_source(graph: Graph, source: VertexId) -> tuple:
    csr = graph.snapshot()
    if not csr.has_vertex(source):
        raise RepresentationError(f"BFS source {source!r} is not in the graph")
    return csr, csr.index(source)


def bfs_distances(graph: Graph, source: VertexId, max_depth: int | None = None) -> dict[VertexId, int]:
    """Hop distance from ``source`` to every reachable vertex (including itself)."""
    csr, src = _encode_source(graph, source)
    distances = distances_kernel(csr, src, max_depth=max_depth)
    ids = csr.external_ids
    return {ids[v]: d for v, d in enumerate(distances) if d >= 0}


def bfs_order(graph: Graph, source: VertexId) -> list[VertexId]:
    """Vertices in BFS visit order starting from ``source``."""
    csr, src = _encode_source(graph, source)
    ids = csr.external_ids
    return [ids[v] for v in order_kernel(csr, src)]


def bfs_tree(graph: Graph, source: VertexId) -> dict[VertexId, VertexId | None]:
    """Parent pointers of a BFS tree rooted at ``source`` (root maps to None)."""
    csr, src = _encode_source(graph, source)
    parents = parents_kernel(csr, src)
    ids = csr.external_ids
    return {
        ids[v]: (None if p == -1 else ids[p])
        for v, p in enumerate(parents)
        if p != -2
    }


def reachable_set(graph: Graph, source: VertexId) -> set[VertexId]:
    """All vertices reachable from ``source`` (including itself)."""
    return set(bfs_distances(graph, source))


def shortest_path(graph: Graph, source: VertexId, target: VertexId) -> list[VertexId] | None:
    """A shortest (unweighted) path from ``source`` to ``target``; None if unreachable."""
    csr, src = _encode_source(graph, source)
    if not csr.has_vertex(target):
        return None
    parents = parents_kernel(csr, src)
    dst = csr.index(target)
    if parents[dst] == -2:
        return None
    ids = csr.external_ids
    path = [ids[dst]]
    current = dst
    while parents[current] != -1:
        current = parents[current]
        path.append(ids[current])
    path.reverse()
    return path
