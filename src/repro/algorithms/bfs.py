"""Breadth-first search over the Graph API.

BFS is one of the paper's three benchmark algorithms; it is also
duplicate-insensitive, i.e. it returns correct results even when run directly
on C-DUP without deduplication (Section 4.1).
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import RepresentationError
from repro.graph.api import Graph, VertexId


def bfs_distances(graph: Graph, source: VertexId, max_depth: int | None = None) -> dict[VertexId, int]:
    """Hop distance from ``source`` to every reachable vertex (including itself)."""
    if not graph.has_vertex(source):
        raise RepresentationError(f"BFS source {source!r} is not in the graph")
    distances: dict[VertexId, int] = {source: 0}
    queue: deque[VertexId] = deque([source])
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.get_neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


def bfs_order(graph: Graph, source: VertexId) -> list[VertexId]:
    """Vertices in BFS visit order starting from ``source``."""
    if not graph.has_vertex(source):
        raise RepresentationError(f"BFS source {source!r} is not in the graph")
    visited: set[VertexId] = {source}
    order: list[VertexId] = [source]
    queue: deque[VertexId] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.get_neighbors(current):
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def bfs_tree(graph: Graph, source: VertexId) -> dict[VertexId, VertexId | None]:
    """Parent pointers of a BFS tree rooted at ``source`` (root maps to None)."""
    if not graph.has_vertex(source):
        raise RepresentationError(f"BFS source {source!r} is not in the graph")
    parents: dict[VertexId, VertexId | None] = {source: None}
    queue: deque[VertexId] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.get_neighbors(current):
            if neighbor not in parents:
                parents[neighbor] = current
                queue.append(neighbor)
    return parents


def reachable_set(graph: Graph, source: VertexId) -> set[VertexId]:
    """All vertices reachable from ``source`` (including itself)."""
    return set(bfs_distances(graph, source))


def shortest_path(graph: Graph, source: VertexId, target: VertexId) -> list[VertexId] | None:
    """A shortest (unweighted) path from ``source`` to ``target``; None if unreachable."""
    parents = bfs_tree(graph, source)
    if target not in parents:
        return None
    path: list[VertexId] = [target]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path
