"""Neighborhood-similarity measures and simple link prediction.

On extracted co-occurrence graphs (co-authors, co-actors, co-purchasers)
neighborhood overlap is the natural notion of similarity between two
entities; these functions are the building blocks of "who should collaborate
next" style analyses the paper's introduction motivates.

All measures use out-neighborhoods, which equal the undirected neighborhoods
on the symmetric graphs GraphGen extracts.  The pairwise scoring kernels
come from the selected backend (:func:`repro.graph.backend.get_backend`):
dense-integer set intersection on ``python``, sorted-array ``intersect1d``
on ``numpy``.  Counts and set results are exact across backends; the
Adamic–Adar sum iterates the shared neighbors in a backend-specific order
and matches within 1e-9.  External IDs only appear at the decode boundary.
"""

from __future__ import annotations

from itertools import combinations

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend
from repro.graph.kernel import CSRGraph


def common_neighbors(graph: Graph, u: VertexId, v: VertexId) -> set[VertexId]:
    """Vertices adjacent to both ``u`` and ``v`` (excluding ``u``/``v`` themselves)."""
    csr = graph.snapshot()
    shared = get_backend().common_neighbors(csr, csr.index(u), csr.index(v))
    ids = csr.external_ids
    return {ids[i] for i in shared}


def jaccard_coefficient(graph: Graph, u: VertexId, v: VertexId) -> float:
    """``|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`` (0.0 when both neighborhoods are empty)."""
    csr = graph.snapshot()
    return get_backend().jaccard(csr, csr.index(u), csr.index(v))


def adamic_adar(graph: Graph, u: VertexId, v: VertexId) -> float:
    """Adamic–Adar index: common neighbors weighted by ``1 / log(degree)``.

    Common neighbors of degree <= 1 contribute nothing (their log is 0).
    """
    csr = graph.snapshot()
    return get_backend().adamic_adar(csr, csr.index(u), csr.index(v))


def preferential_attachment(graph: Graph, u: VertexId, v: VertexId) -> int:
    """``|N(u)| * |N(v)|`` — the preferential-attachment link-prediction score."""
    csr = graph.snapshot()
    return get_backend().preferential_attachment(csr, csr.index(u), csr.index(v))


def _neighborhood_index(csr: CSRGraph, index: int) -> set[int]:
    """Out-neighborhood of a dense index, excluding the vertex itself
    (candidate enumeration only; scoring goes through the backend)."""
    neighborhood = csr.neighbor_set(index)
    neighborhood.discard(index)
    return neighborhood


SCORES = {
    "jaccard": jaccard_coefficient,
    "adamic_adar": adamic_adar,
    "common_neighbors": lambda graph, u, v: len(common_neighbors(graph, u, v)),
    "preferential_attachment": preferential_attachment,
}


def link_predictions(
    graph: Graph,
    k: int = 10,
    score: str = "adamic_adar",
    candidates: list[tuple[VertexId, VertexId]] | None = None,
) -> list[tuple[VertexId, VertexId, float]]:
    """The ``k`` highest-scoring *non-edges*, descending.

    ``candidates`` restricts scoring to specific pairs; otherwise every
    unordered pair of vertices at distance exactly two is considered (pairs
    further apart score zero under all supported measures).
    """
    try:
        scorer = SCORES[score]
    except KeyError:
        raise ValueError(
            f"unknown link-prediction score {score!r}; expected one of {sorted(SCORES)}"
        ) from None

    if candidates is None:
        csr = graph.snapshot()
        ids = csr.external_ids
        neighbor_sets = [csr.neighbor_set(i) for i in range(csr.n)]
        candidates = []
        seen: set[tuple[VertexId, VertexId]] = set()
        for index in range(csr.n):
            neighborhood = [ids[i] for i in _neighborhood_index(csr, index)]
            for a, b in combinations(sorted(neighborhood, key=repr), 2):
                ia, ib = csr.index(a), csr.index(b)
                if ib in neighbor_sets[ia] or ia in neighbor_sets[ib]:
                    continue
                key = (a, b)
                if key not in seen:
                    seen.add(key)
                    candidates.append(key)

    scored = [(u, v, float(scorer(graph, u, v))) for u, v in candidates]
    scored.sort(key=lambda item: (-item[2], repr(item[0]), repr(item[1])))
    return scored[:k]


def similarity_matrix(
    graph: Graph, vertices: list[VertexId], score: str = "jaccard"
) -> dict[tuple[VertexId, VertexId], float]:
    """Pairwise similarity over an explicit vertex list (small sets only)."""
    try:
        scorer = SCORES[score]
    except KeyError:
        raise ValueError(
            f"unknown similarity score {score!r}; expected one of {sorted(SCORES)}"
        ) from None
    result: dict[tuple[VertexId, VertexId], float] = {}
    for u, v in combinations(vertices, 2):
        value = float(scorer(graph, u, v))
        result[(u, v)] = value
        result[(v, u)] = value
    return result
