"""Neighborhood-similarity measures and simple link prediction.

On extracted co-occurrence graphs (co-authors, co-actors, co-purchasers)
neighborhood overlap is the natural notion of similarity between two
entities; these functions are the building blocks of "who should collaborate
next" style analyses the paper's introduction motivates.

All measures use out-neighborhoods, which equal the undirected neighborhoods
on the symmetric graphs GraphGen extracts.  The pairwise scoring kernels
come from the selected backend (:func:`repro.graph.backend.get_backend`):
dense-integer set intersection on ``python``, sorted-array ``intersect1d``
on ``numpy``.  Counts and set results are exact across backends; the
Adamic–Adar sum iterates the shared neighbors in a backend-specific order
and matches within 1e-9.  External IDs only appear at the decode boundary.

:func:`pair_score_kernel` / :func:`link_predictions_kernel` are the
kernel-level entry points (dense indexes in, dense results out; tie-breaks
read the snapshot codec's reprs) the session layer's
:class:`~repro.session.AnalysisPlan` calls over a shared snapshot; the free
functions are thin delegations around them.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend
from repro.graph.kernel import CSRGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend

#: similarity score names accepted by the kernel entry points and the
#: link-prediction / similarity-matrix free functions
SCORE_NAMES = ("adamic_adar", "common_neighbors", "jaccard", "preferential_attachment")


def pair_score_kernel(
    csr: CSRGraph, score: str, iu: int, iv: int, backend: "KernelBackend | None" = None
) -> float:
    """Kernel-level entry point: one similarity score for a dense pair."""
    backend = backend or get_backend()
    if score == "jaccard":
        return float(backend.jaccard(csr, iu, iv))
    if score == "adamic_adar":
        return float(backend.adamic_adar(csr, iu, iv))
    if score == "common_neighbors":
        return float(len(backend.common_neighbors(csr, iu, iv)))
    if score == "preferential_attachment":
        return float(backend.preferential_attachment(csr, iu, iv))
    raise ValueError(
        f"unknown link-prediction score {score!r}; expected one of {sorted(SCORE_NAMES)}"
    )


def _neighborhood_index(csr: CSRGraph, index: int) -> set[int]:
    """Out-neighborhood of a dense index, excluding the vertex itself
    (candidate enumeration only; scoring goes through the backend)."""
    neighborhood = csr.neighbor_set(index)
    neighborhood.discard(index)
    return neighborhood


def _candidate_pairs(csr: CSRGraph) -> list[tuple[int, int]]:
    """Dense non-edge pairs at distance exactly two, in the deterministic
    enumeration order of the original free function (external-ID ``repr``
    sorts inside each shared neighborhood)."""
    ids = csr.external_ids
    neighbor_sets = [csr.neighbor_set(i) for i in range(csr.n)]
    candidates: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for index in range(csr.n):
        neighborhood = [ids[i] for i in _neighborhood_index(csr, index)]
        for a, b in combinations(sorted(neighborhood, key=repr), 2):
            ia, ib = csr.index(a), csr.index(b)
            if ib in neighbor_sets[ia] or ia in neighbor_sets[ib]:
                continue
            key = (ia, ib)
            if key not in seen:
                seen.add(key)
                candidates.append(key)
    return candidates


def link_predictions_kernel(
    csr: CSRGraph,
    k: int = 10,
    score: str = "adamic_adar",
    candidates: list[tuple[int, int]] | None = None,
    backend: "KernelBackend | None" = None,
) -> list[tuple[int, int, float]]:
    """Kernel-level entry point: the ``k`` highest-scoring dense pairs.

    ``candidates`` restricts scoring to specific dense pairs; otherwise every
    unordered pair at distance exactly two is considered.  Sorting descends by
    score with ties broken on the external IDs' reprs, exactly like
    :func:`link_predictions`.
    """
    if score not in SCORE_NAMES:
        raise ValueError(
            f"unknown link-prediction score {score!r}; expected one of {sorted(SCORE_NAMES)}"
        )
    if candidates is None:
        candidates = _candidate_pairs(csr)
    ids = csr.external_ids
    scored = [
        (iu, iv, pair_score_kernel(csr, score, iu, iv, backend=backend))
        for iu, iv in candidates
    ]
    scored.sort(key=lambda item: (-item[2], repr(ids[item[0]]), repr(ids[item[1]])))
    return scored[:k]


def common_neighbors(graph: Graph, u: VertexId, v: VertexId) -> set[VertexId]:
    """Vertices adjacent to both ``u`` and ``v`` (excluding ``u``/``v`` themselves)."""
    csr = graph.snapshot()
    shared = get_backend().common_neighbors(csr, csr.index(u), csr.index(v))
    ids = csr.external_ids
    return {ids[i] for i in shared}


def jaccard_coefficient(graph: Graph, u: VertexId, v: VertexId) -> float:
    """``|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`` (0.0 when both neighborhoods are empty)."""
    csr = graph.snapshot()
    return pair_score_kernel(csr, "jaccard", csr.index(u), csr.index(v))


def adamic_adar(graph: Graph, u: VertexId, v: VertexId) -> float:
    """Adamic–Adar index: common neighbors weighted by ``1 / log(degree)``.

    Common neighbors of degree <= 1 contribute nothing (their log is 0).
    """
    csr = graph.snapshot()
    return pair_score_kernel(csr, "adamic_adar", csr.index(u), csr.index(v))


def preferential_attachment(graph: Graph, u: VertexId, v: VertexId) -> int:
    """``|N(u)| * |N(v)|`` — the preferential-attachment link-prediction score."""
    csr = graph.snapshot()
    return get_backend().preferential_attachment(csr, csr.index(u), csr.index(v))


SCORES = {
    "jaccard": jaccard_coefficient,
    "adamic_adar": adamic_adar,
    "common_neighbors": lambda graph, u, v: len(common_neighbors(graph, u, v)),
    "preferential_attachment": preferential_attachment,
}


def link_predictions(
    graph: Graph,
    k: int = 10,
    score: str = "adamic_adar",
    candidates: list[tuple[VertexId, VertexId]] | None = None,
) -> list[tuple[VertexId, VertexId, float]]:
    """The ``k`` highest-scoring *non-edges*, descending.

    ``candidates`` restricts scoring to specific pairs; otherwise every
    unordered pair of vertices at distance exactly two is considered (pairs
    further apart score zero under all supported measures).
    """
    if score not in SCORES:
        raise ValueError(
            f"unknown link-prediction score {score!r}; expected one of {sorted(SCORES)}"
        )
    csr = graph.snapshot()
    dense = None
    if candidates is not None:
        dense = [(csr.index(u), csr.index(v)) for u, v in candidates]
    ids = csr.external_ids
    return [
        (ids[iu], ids[iv], value)
        for iu, iv, value in link_predictions_kernel(csr, k=k, score=score, candidates=dense)
    ]


def similarity_matrix(
    graph: Graph, vertices: list[VertexId], score: str = "jaccard"
) -> dict[tuple[VertexId, VertexId], float]:
    """Pairwise similarity over an explicit vertex list (small sets only)."""
    if score not in SCORES:
        raise ValueError(
            f"unknown similarity score {score!r}; expected one of {sorted(SCORES)}"
        )
    csr = graph.snapshot()
    result: dict[tuple[VertexId, VertexId], float] = {}
    for u, v in combinations(vertices, 2):
        value = pair_score_kernel(csr, score, csr.index(u), csr.index(v))
        result[(u, v)] = value
        result[(v, u)] = value
    return result
