"""Single-source shortest paths (unweighted and weighted by hop count helpers).

These are thin wrappers around BFS plus an eccentricity / diameter estimate
used by the examples; graph algorithms here only use the Graph API so they run
on every representation.
"""

from __future__ import annotations

from repro.algorithms.bfs import bfs_distances
from repro.graph.api import Graph, VertexId
from repro.utils.rand import SeededRandom


def single_source_shortest_paths(graph: Graph, source: VertexId) -> dict[VertexId, int]:
    """Hop distances from ``source`` (alias of :func:`bfs_distances`)."""
    return bfs_distances(graph, source)


def eccentricity(graph: Graph, vertex: VertexId) -> int:
    """Largest hop distance from ``vertex`` to any reachable vertex."""
    distances = bfs_distances(graph, vertex)
    return max(distances.values()) if distances else 0


def approximate_diameter(graph: Graph, samples: int = 10, seed: int = 0) -> int:
    """Lower bound on the diameter from BFS at ``samples`` random vertices."""
    vertices = list(graph.get_vertices())
    if not vertices:
        return 0
    rng = SeededRandom(seed)
    chosen = rng.sample(vertices, min(samples, len(vertices)))
    return max(eccentricity(graph, vertex) for vertex in chosen)


def average_path_length(graph: Graph, samples: int = 10, seed: int = 0) -> float:
    """Average hop distance over BFS trees rooted at sampled vertices."""
    vertices = list(graph.get_vertices())
    if not vertices:
        return 0.0
    rng = SeededRandom(seed)
    chosen = rng.sample(vertices, min(samples, len(vertices)))
    total = 0.0
    count = 0
    for vertex in chosen:
        distances = bfs_distances(graph, vertex)
        reachable = [d for node, d in distances.items() if node != vertex]
        total += sum(reachable)
        count += len(reachable)
    return total / count if count else 0.0
