"""Single-source shortest paths (unweighted) plus eccentricity / diameter
estimates, executed on the CSR kernel.

The sampled estimators run the integer BFS kernel once per sampled source
over the shared snapshot and aggregate distances without materialising
per-source dictionaries.  Sampling draws from the snapshot's external-ID list
(the canonical ``get_vertices`` order), keeping the chosen sources identical
to the pre-kernel implementation for a given seed.

:func:`diameter_kernel` / :func:`average_path_length_kernel` are the
kernel-level entry points the session layer's
:class:`~repro.session.AnalysisPlan` calls over a shared snapshot; the free
functions are thin delegations around them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.algorithms.bfs import bfs_distances, distances_kernel
from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend
from repro.utils.rand import SeededRandom

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def diameter_sample_indexes(csr: "CSRGraph", samples: int, seed: int) -> list[int]:
    """Dense indexes of the seeded BFS sample a diameter estimate sweeps from.

    Shared by the serial kernel and the plan scheduler's chunk-parallel path
    (which partitions this exact list across workers), so both sweep the same
    sources for a given seed.
    """
    vertices = csr.external_ids
    if not vertices:
        return []
    rng = SeededRandom(seed)
    return [csr.index(vertex) for vertex in rng.sample(vertices, min(samples, len(vertices)))]


def source_eccentricity(
    csr: "CSRGraph", source: int, backend: "KernelBackend | None" = None
) -> int:
    """Eccentricity of one dense index via the backend's shared BFS-tree
    entry point (the same integer the plan compiler's sweep reads out of
    ``tree_stats``, so sampled diameters agree however the tree was grown)."""
    active = backend or get_backend()
    return active.tree_stats(active.bfs_tree(csr, source))[2]


def diameter_kernel(
    csr: "CSRGraph",
    samples: int = 10,
    seed: int = 0,
    backend: "KernelBackend | None" = None,
) -> int:
    """Kernel-level entry point: diameter lower bound from sampled BFS runs."""
    if csr.n == 0:
        return 0
    return max(
        (
            source_eccentricity(csr, source, backend=backend)
            for source in diameter_sample_indexes(csr, samples, seed)
        ),
        default=0,
    )


def average_path_length_kernel(
    csr: "CSRGraph",
    samples: int = 10,
    seed: int = 0,
    backend: "KernelBackend | None" = None,
) -> float:
    """Kernel-level entry point: mean hop distance over sampled BFS trees."""
    vertices = csr.external_ids
    if not vertices:
        return 0.0
    rng = SeededRandom(seed)
    chosen = rng.sample(vertices, min(samples, len(vertices)))
    total = 0.0
    count = 0
    for vertex in chosen:
        source = csr.index(vertex)
        for node, distance in enumerate(distances_kernel(csr, source, backend=backend)):
            if node != source and distance > 0:
                total += distance
                count += 1
    return total / count if count else 0.0


def single_source_shortest_paths(graph: Graph, source: VertexId) -> dict[VertexId, int]:
    """Hop distances from ``source`` (alias of :func:`bfs_distances`)."""
    return bfs_distances(graph, source)


def eccentricity(graph: Graph, vertex: VertexId) -> int:
    """Largest hop distance from ``vertex`` to any reachable vertex."""
    csr = graph.snapshot()
    distances = distances_kernel(csr, csr.index(vertex))
    return max(distances, default=0) if csr.n else 0


def approximate_diameter(graph: Graph, samples: int = 10, seed: int = 0) -> int:
    """Lower bound on the diameter from BFS at ``samples`` random vertices."""
    return diameter_kernel(graph.snapshot(), samples=samples, seed=seed)


def average_path_length(graph: Graph, samples: int = 10, seed: int = 0) -> float:
    """Average hop distance over BFS trees rooted at sampled vertices."""
    return average_path_length_kernel(graph.snapshot(), samples=samples, seed=seed)
