"""Single-source shortest paths (unweighted) plus eccentricity / diameter
estimates, executed on the CSR kernel.

The sampled estimators run the integer BFS kernel once per sampled source
over the shared snapshot and aggregate distances without materialising
per-source dictionaries.  Sampling draws from the snapshot's external-ID list
(the canonical ``get_vertices`` order), keeping the chosen sources identical
to the pre-kernel implementation for a given seed.
"""

from __future__ import annotations

from repro.algorithms.bfs import bfs_distances
from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend
from repro.utils.rand import SeededRandom


def single_source_shortest_paths(graph: Graph, source: VertexId) -> dict[VertexId, int]:
    """Hop distances from ``source`` (alias of :func:`bfs_distances`)."""
    return bfs_distances(graph, source)


def eccentricity(graph: Graph, vertex: VertexId) -> int:
    """Largest hop distance from ``vertex`` to any reachable vertex."""
    csr = graph.snapshot()
    distances = get_backend().bfs_distances(csr, csr.index(vertex))
    return max(distances, default=0) if csr.n else 0


def approximate_diameter(graph: Graph, samples: int = 10, seed: int = 0) -> int:
    """Lower bound on the diameter from BFS at ``samples`` random vertices."""
    csr = graph.snapshot()
    vertices = csr.external_ids
    if not vertices:
        return 0
    rng = SeededRandom(seed)
    chosen = rng.sample(vertices, min(samples, len(vertices)))
    backend = get_backend()
    return max(
        max(backend.bfs_distances(csr, csr.index(vertex)), default=0)
        for vertex in chosen
    )


def average_path_length(graph: Graph, samples: int = 10, seed: int = 0) -> float:
    """Average hop distance over BFS trees rooted at sampled vertices."""
    csr = graph.snapshot()
    vertices = csr.external_ids
    if not vertices:
        return 0.0
    rng = SeededRandom(seed)
    chosen = rng.sample(vertices, min(samples, len(vertices)))
    total = 0.0
    count = 0
    backend = get_backend()
    for vertex in chosen:
        source = csr.index(vertex)
        for node, distance in enumerate(backend.bfs_distances(csr, source)):
            if node != source and distance > 0:
                total += distance
                count += 1
    return total / count if count else 0.0
