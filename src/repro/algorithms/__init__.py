"""Graph algorithms written against the Graph API.

Every algorithm works on any representation (EXP, C-DUP, DEDUP-1, DEDUP-2,
BITMAP) because it only uses ``get_vertices`` / ``get_neighbors`` /
``exists_edge``.
"""

from repro.algorithms.degree import average_degree, degree_of, degrees, max_degree_vertex
from repro.algorithms.bfs import (
    bfs_distances,
    bfs_order,
    bfs_tree,
    reachable_set,
    shortest_path,
)
from repro.algorithms.pagerank import pagerank, top_k_pagerank
from repro.algorithms.connected_components import (
    component_sizes,
    connected_components,
    largest_component,
    num_components,
)
from repro.algorithms.label_propagation import communities, label_propagation
from repro.algorithms.triangles import (
    average_clustering,
    clustering_coefficient,
    count_triangles,
    triangles_per_vertex,
)
from repro.algorithms.shortest_paths import (
    approximate_diameter,
    average_path_length,
    eccentricity,
    single_source_shortest_paths,
)
from repro.algorithms.kcore import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    densest_core,
    k_core,
)
from repro.algorithms.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    top_k_central,
)
from repro.algorithms.similarity import (
    adamic_adar,
    common_neighbors,
    jaccard_coefficient,
    link_predictions,
    preferential_attachment,
    similarity_matrix,
)

__all__ = [
    "average_degree",
    "degree_of",
    "degrees",
    "max_degree_vertex",
    "bfs_distances",
    "bfs_order",
    "bfs_tree",
    "reachable_set",
    "shortest_path",
    "pagerank",
    "top_k_pagerank",
    "component_sizes",
    "connected_components",
    "largest_component",
    "num_components",
    "communities",
    "label_propagation",
    "average_clustering",
    "clustering_coefficient",
    "count_triangles",
    "triangles_per_vertex",
    "approximate_diameter",
    "average_path_length",
    "eccentricity",
    "single_source_shortest_paths",
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "densest_core",
    "k_core",
    "betweenness_centrality",
    "closeness_centrality",
    "degree_centrality",
    "top_k_central",
    "adamic_adar",
    "common_neighbors",
    "jaccard_coefficient",
    "link_predictions",
    "preferential_attachment",
    "similarity_matrix",
]
