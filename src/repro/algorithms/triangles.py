"""Triangle counting and clustering coefficients over the CSR kernel.

Edges are treated as undirected (the out-adjacency is symmetrised first) and
self-loops are ignored.  Triangle counting is a representative "dense
subgraph" style workload that exercises neighbor-set intersection rather than
plain iteration, complementing PageRank and BFS in the example applications.

All functions start from the snapshot's cached symmetrised adjacency
(:meth:`~repro.graph.kernel.CSRGraph.undirected_sets`) and intersect sets of
dense integers; the degree-ordered counting scheme is unchanged, with the
dense index itself serving as the vertex rank.
"""

from __future__ import annotations

from itertools import combinations

from repro.graph.api import Graph, VertexId


def count_triangles(graph: Graph) -> int:
    """Number of distinct triangles (each counted once)."""
    adjacency = graph.snapshot().undirected_sets()
    total = 0
    for u, neighbors in enumerate(adjacency):
        higher_u = {v for v in neighbors if v > u}
        for v in higher_u:
            total += sum(1 for w in adjacency[v] if w > v and w in higher_u)
    return total


def triangles_per_vertex(graph: Graph) -> dict[VertexId, int]:
    """Number of triangles each vertex participates in."""
    csr = graph.snapshot()
    adjacency = csr.undirected_sets()
    counts = [0] * csr.n
    for u, neighbors in enumerate(adjacency):
        higher_u = {v for v in neighbors if v > u}
        for v in higher_u:
            for w in adjacency[v]:
                if w > v and w in higher_u:
                    counts[u] += 1
                    counts[v] += 1
                    counts[w] += 1
    return csr.decode(counts)


def clustering_coefficient(graph: Graph, vertex: VertexId) -> float:
    """Local clustering coefficient of ``vertex`` (0.0 when degree < 2)."""
    csr = graph.snapshot()
    adjacency = csr.undirected_sets()
    if not csr.has_vertex(vertex):
        return 0.0
    neighbors = adjacency[csr.index(vertex)]
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = sum(1 for a, b in combinations(neighbors, 2) if b in adjacency[a])
    return 2.0 * links / (degree * (degree - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all vertices."""
    csr = graph.snapshot()
    adjacency = csr.undirected_sets()
    if not adjacency:
        return 0.0
    total = 0.0
    for neighbors in adjacency:
        degree = len(neighbors)
        if degree < 2:
            continue
        links = sum(1 for a, b in combinations(neighbors, 2) if b in adjacency[a])
        total += 2.0 * links / (degree * (degree - 1))
    return total / len(adjacency)
