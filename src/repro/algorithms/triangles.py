"""Triangle counting and clustering coefficients.

Edges are treated as undirected (the out-adjacency is symmetrised first) and
self-loops are ignored.  Triangle counting is a representative "dense
subgraph" style workload that exercises neighbor-set intersection rather than
plain iteration, complementing PageRank and BFS in the example applications.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId


def _undirected_adjacency(graph: Graph) -> dict[VertexId, set[VertexId]]:
    """Symmetrised adjacency with self-loops dropped."""
    adjacency: dict[VertexId, set[VertexId]] = {v: set() for v in graph.get_vertices()}
    for u in list(adjacency):
        for v in graph.get_neighbors(u):
            if v == u:
                continue
            adjacency.setdefault(v, set())
            adjacency[u].add(v)
            adjacency[v].add(u)
    return adjacency


def count_triangles(graph: Graph) -> int:
    """Number of distinct triangles (each counted once)."""
    adjacency = _undirected_adjacency(graph)
    order = {vertex: index for index, vertex in enumerate(adjacency)}
    total = 0
    for u, rank_u in order.items():
        higher_u = {v for v in adjacency[u] if order[v] > rank_u}
        for v in higher_u:
            higher_v = {w for w in adjacency[v] if order[w] > order[v]}
            total += len(higher_u & higher_v)
    return total


def triangles_per_vertex(graph: Graph) -> dict[VertexId, int]:
    """Number of triangles each vertex participates in."""
    adjacency = _undirected_adjacency(graph)
    order = {vertex: index for index, vertex in enumerate(adjacency)}
    counts: dict[VertexId, int] = {v: 0 for v in adjacency}
    for u, rank_u in order.items():
        higher_u = {v for v in adjacency[u] if order[v] > rank_u}
        for v in higher_u:
            higher_v = {w for w in adjacency[v] if order[w] > order[v]}
            for w in higher_u & higher_v:
                counts[u] += 1
                counts[v] += 1
                counts[w] += 1
    return counts


def clustering_coefficient(graph: Graph, vertex: VertexId) -> float:
    """Local clustering coefficient of ``vertex`` (0.0 when degree < 2)."""
    adjacency = _undirected_adjacency(graph)
    neighbors = adjacency.get(vertex, set())
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = 0
    neighbor_list = sorted(neighbors, key=repr)
    for i, a in enumerate(neighbor_list):
        for b in neighbor_list[i + 1 :]:
            if b in adjacency[a]:
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all vertices."""
    adjacency = _undirected_adjacency(graph)
    if not adjacency:
        return 0.0
    total = 0.0
    for vertex, neighbors in adjacency.items():
        degree = len(neighbors)
        if degree < 2:
            continue
        links = 0
        neighbor_list = sorted(neighbors, key=repr)
        for i, a in enumerate(neighbor_list):
            for b in neighbor_list[i + 1 :]:
                if b in adjacency[a]:
                    links += 1
        total += 2.0 * links / (degree * (degree - 1))
    return total / len(adjacency)
