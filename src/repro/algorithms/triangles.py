"""Triangle counting and clustering coefficients over the CSR kernel.

Edges are treated as undirected (the out-adjacency is symmetrised first) and
self-loops are ignored.  Triangle counting is a representative "dense
subgraph" style workload that exercises neighbor-set intersection rather than
plain iteration, complementing PageRank and BFS in the example applications.

The intersection kernels come from the selected backend
(:func:`repro.graph.backend.get_backend`): dense-integer set intersection on
``python``, ``searchsorted`` probes into the sorted symmetrised CSR on
``numpy``.  Both count the same ``u < v < w`` orientation (the dense index is
the vertex rank), so triangle counts are exactly equal across backends; the
derived clustering coefficients share every arithmetic step and are
bit-identical too.

:func:`count_triangles_kernel` / :func:`triangles_per_vertex_kernel` /
:func:`average_clustering_kernel` are the kernel-level entry points the
session layer's :class:`~repro.session.AnalysisPlan` calls over a shared
snapshot; the free functions are thin delegations around them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def count_triangles_kernel(csr: "CSRGraph", backend: "KernelBackend | None" = None) -> int:
    """Kernel-level entry point: number of distinct triangles."""
    return (backend or get_backend()).count_triangles(csr)


def triangles_per_vertex_kernel(
    csr: "CSRGraph", backend: "KernelBackend | None" = None
) -> list[int]:
    """Kernel-level entry point: triangle participation count per dense index."""
    return (backend or get_backend()).triangles_per_vertex(csr)


def average_clustering_kernel(
    csr: "CSRGraph", backend: "KernelBackend | None" = None
) -> float:
    """Kernel-level entry point: mean local clustering coefficient
    (0.0 for an empty snapshot)."""
    if csr.n == 0:
        return 0.0
    return (backend or get_backend()).average_clustering(csr)


def count_triangles(graph: Graph) -> int:
    """Number of distinct triangles (each counted once)."""
    return count_triangles_kernel(graph.snapshot())


def triangles_per_vertex(graph: Graph) -> dict[VertexId, int]:
    """Number of triangles each vertex participates in."""
    csr = graph.snapshot()
    return csr.decode(triangles_per_vertex_kernel(csr))


def clustering_coefficient(graph: Graph, vertex: VertexId) -> float:
    """Local clustering coefficient of ``vertex`` (0.0 when degree < 2)."""
    csr = graph.snapshot()
    if not csr.has_vertex(vertex):
        return 0.0
    return get_backend().clustering_coefficient(csr, csr.index(vertex))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all vertices."""
    return average_clustering_kernel(graph.snapshot())
