"""Community detection by (semi-synchronous) label propagation.

The paper motivates GraphGen with "complex analysis tasks like community
detection ... which require random and arbitrary access to the graph"; label
propagation is the classic lightweight community-detection algorithm and runs
against the plain Graph API, so it works on every representation.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId
from repro.utils.rand import SeededRandom


def label_propagation(
    graph: Graph,
    max_iterations: int = 20,
    seed: int = 0,
) -> dict[VertexId, VertexId]:
    """Assign a community label to every vertex.

    Every vertex starts in its own community; in each round the vertices (in a
    shuffled order) adopt the most frequent label among their out-neighbors,
    with deterministic tie-breaking.  Stops when no label changes or after
    ``max_iterations`` rounds.
    """
    rng = SeededRandom(seed)
    vertices = list(graph.get_vertices())
    labels: dict[VertexId, VertexId] = {v: v for v in vertices}
    neighbors: dict[VertexId, list[VertexId]] = {v: list(graph.get_neighbors(v)) for v in vertices}

    for _ in range(max_iterations):
        changed = 0
        for vertex in rng.shuffle(list(vertices)):
            adjacent = neighbors[vertex]
            if not adjacent:
                continue
            counts: dict[VertexId, int] = {}
            for neighbor in adjacent:
                label = labels.get(neighbor, neighbor)
                counts[label] = counts.get(label, 0) + 1
            best = sorted(counts.items(), key=lambda item: (-item[1], repr(item[0])))[0][0]
            if best != labels[vertex]:
                labels[vertex] = best
                changed += 1
        if changed == 0:
            break
    return labels


def communities(graph: Graph, max_iterations: int = 20, seed: int = 0) -> list[set[VertexId]]:
    """Group vertices by their propagated label, largest community first."""
    labels = label_propagation(graph, max_iterations=max_iterations, seed=seed)
    groups: dict[VertexId, set[VertexId]] = {}
    for vertex, label in labels.items():
        groups.setdefault(label, set()).add(vertex)
    return sorted(groups.values(), key=len, reverse=True)
