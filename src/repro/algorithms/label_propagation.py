"""Community detection by (semi-synchronous) label propagation.

The paper motivates GraphGen with "complex analysis tasks like community
detection ... which require random and arbitrary access to the graph"; label
propagation is the classic lightweight community-detection algorithm.

The kernel propagates dense integer labels over the CSR snapshot; the
deterministic tie-break (most frequent label, then smallest ``repr``) is
evaluated on the external IDs' reprs so the output matches the pre-kernel
Graph-API implementation exactly, shuffle order included.  Every backend
shares the reference kernel: in-round updates are sequential by definition
(a vertex reads labels already updated earlier in the same shuffled round),
so there is no vectorised variant — see
:meth:`repro.graph.backend.python_backend.KernelBackend.label_propagation`.

:func:`label_propagation_kernel` is the kernel-level entry point the session
layer's :class:`~repro.session.AnalysisPlan` calls over a shared snapshot;
the free functions are thin delegations around it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def label_propagation_kernel(
    csr: "CSRGraph",
    max_iterations: int = 20,
    seed: int = 0,
    backend: "KernelBackend | None" = None,
) -> list[int]:
    """Kernel-level entry point: community label (a dense vertex index) per
    dense index."""
    return (backend or get_backend()).label_propagation(csr, max_iterations, seed)


def label_propagation(
    graph: Graph,
    max_iterations: int = 20,
    seed: int = 0,
) -> dict[VertexId, VertexId]:
    """Assign a community label to every vertex.

    Every vertex starts in its own community; in each round the vertices (in a
    shuffled order) adopt the most frequent label among their out-neighbors,
    with deterministic tie-breaking.  Stops when no label changes or after
    ``max_iterations`` rounds.
    """
    csr = graph.snapshot()
    labels = label_propagation_kernel(csr, max_iterations, seed)
    ids = csr.external_ids
    return {ids[v]: ids[label] for v, label in enumerate(labels)}


def communities(graph: Graph, max_iterations: int = 20, seed: int = 0) -> list[set[VertexId]]:
    """Group vertices by their propagated label, largest community first."""
    labels = label_propagation(graph, max_iterations=max_iterations, seed=seed)
    groups: dict[VertexId, set[VertexId]] = {}
    for vertex, label in labels.items():
        groups.setdefault(label, set()).add(vertex)
    return sorted(groups.values(), key=len, reverse=True)
