"""Community detection by (semi-synchronous) label propagation.

The paper motivates GraphGen with "complex analysis tasks like community
detection ... which require random and arbitrary access to the graph"; label
propagation is the classic lightweight community-detection algorithm.

The kernel propagates dense integer labels over the CSR snapshot; the
deterministic tie-break (most frequent label, then smallest ``repr``) is
evaluated on the external IDs' reprs so the output matches the pre-kernel
Graph-API implementation exactly, shuffle order included.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId
from repro.utils.rand import SeededRandom


def label_propagation(
    graph: Graph,
    max_iterations: int = 20,
    seed: int = 0,
) -> dict[VertexId, VertexId]:
    """Assign a community label to every vertex.

    Every vertex starts in its own community; in each round the vertices (in a
    shuffled order) adopt the most frequent label among their out-neighbors,
    with deterministic tie-breaking.  Stops when no label changes or after
    ``max_iterations`` rounds.
    """
    rng = SeededRandom(seed)
    csr = graph.snapshot()
    n = csr.n
    offsets = csr.offsets_list
    targets = csr.targets_list
    reprs = [repr(external) for external in csr.external_ids]
    labels = list(range(n))

    for _ in range(max_iterations):
        changed = 0
        for vertex in rng.shuffle(list(range(n))):
            start = offsets[vertex]
            end = offsets[vertex + 1]
            if start == end:
                continue
            counts: dict[int, int] = {}
            for e in range(start, end):
                label = labels[targets[e]]
                counts[label] = counts.get(label, 0) + 1
            best = sorted(counts.items(), key=lambda item: (-item[1], reprs[item[0]]))[0][0]
            if best != labels[vertex]:
                labels[vertex] = best
                changed += 1
        if changed == 0:
            break
    ids = csr.external_ids
    return {ids[v]: ids[label] for v, label in enumerate(labels)}


def communities(graph: Graph, max_iterations: int = 20, seed: int = 0) -> list[set[VertexId]]:
    """Group vertices by their propagated label, largest community first."""
    labels = label_propagation(graph, max_iterations=max_iterations, seed=seed)
    groups: dict[VertexId, set[VertexId]] = {}
    for vertex, label in labels.items():
        groups.setdefault(label, set()).add(vertex)
    return sorted(groups.values(), key=len, reverse=True)
