"""Degree computation.

Trivial on EXP; on condensed representations it exercises the neighbor
iterator, which is exactly why the paper uses it as one of its three
benchmark algorithms (Figures 11 and 13, Table 3, Table 4).
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId


def degrees(graph: Graph) -> dict[VertexId, int]:
    """Out-degree of every vertex (logical, duplicates removed)."""
    return {vertex: graph.degree(vertex) for vertex in graph.get_vertices()}


def degree_of(graph: Graph, vertex: VertexId) -> int:
    """Out-degree of a single vertex."""
    return graph.degree(vertex)


def average_degree(graph: Graph) -> float:
    """Mean out-degree (0.0 for an empty graph)."""
    total = 0
    count = 0
    for vertex in graph.get_vertices():
        total += graph.degree(vertex)
        count += 1
    return total / count if count else 0.0


def max_degree_vertex(graph: Graph) -> tuple[VertexId, int] | None:
    """The vertex with the largest out-degree, or ``None`` for an empty graph."""
    best: tuple[VertexId, int] | None = None
    for vertex in graph.get_vertices():
        degree = graph.degree(vertex)
        if best is None or degree > best[1]:
            best = (vertex, degree)
    return best
