"""Degree computation.

Trivial on EXP; on condensed representations it exercises the neighbor
machinery, which is exactly why the paper uses it as one of its three
benchmark algorithms (Figures 11 and 13, Table 3, Table 4).

Whole-graph variants read degrees straight off the CSR snapshot's offset
array through the selected kernel backend (a cached list scan on ``python``,
an ``np.diff`` over the zero-copy offset view on ``numpy``);
:func:`degree_of` keeps the single-vertex Graph-API path so that one lookup
never forces a full snapshot of a cold graph.

:func:`degrees_kernel` is the kernel-level entry point: it takes an already
built snapshot plus a resolved backend, so a session
:class:`~repro.session.AnalysisPlan` can run it over one shared snapshot
without re-encoding; the free functions are thin delegations around it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def degrees_kernel(csr: "CSRGraph", backend: "KernelBackend | None" = None) -> list[int]:
    """Kernel-level entry point: out-degree per dense index."""
    return (backend or get_backend()).degrees(csr)


def degrees(graph: Graph) -> dict[VertexId, int]:
    """Out-degree of every vertex (logical, duplicates removed)."""
    csr = graph.snapshot()
    return csr.decode(degrees_kernel(csr))


def degree_of(graph: Graph, vertex: VertexId) -> int:
    """Out-degree of a single vertex."""
    csr = graph.cached_snapshot()
    if csr is not None:
        return csr.out_degree(csr.index(vertex))
    return graph.degree(vertex)


def average_degree(graph: Graph) -> float:
    """Mean out-degree (0.0 for an empty graph)."""
    csr = graph.snapshot()
    if csr.n == 0:
        return 0.0
    return csr.num_edges / csr.n


def max_degree_vertex(graph: Graph) -> tuple[VertexId, int] | None:
    """The vertex with the largest out-degree, or ``None`` for an empty graph."""
    csr = graph.snapshot()
    best: tuple[VertexId, int] | None = None
    for index, degree in enumerate(degrees_kernel(csr)):
        if best is None or degree > best[1]:
            best = (csr.external_ids[index], degree)
    return best
