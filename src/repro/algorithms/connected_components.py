"""Connected components (weak connectivity) over the CSR execution kernel.

Connected components is duplicate-insensitive, so the paper runs it directly
on C-DUP and even exploits the condensed topology in the Giraph port for a
speed-up (Section 6.4).

The kernel comes from the selected backend
(:func:`repro.graph.backend.get_backend`): an integer union-find (path
halving + union by size) on ``python``, vectorised BFS sweeps on ``numpy``.
Both assign component labels in first-vertex order, so the results are
identical across backends and to the pre-backend implementation.

:func:`components_kernel` is the kernel-level entry point the session
layer's :class:`~repro.session.AnalysisPlan` calls over a shared snapshot;
the free functions are thin delegations around it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def components_kernel(csr: "CSRGraph", backend: "KernelBackend | None" = None) -> list[int]:
    """Kernel-level entry point: component label (0-based, first-vertex
    order) per dense index; edges are treated as undirected."""
    return (backend or get_backend()).connected_components(csr)


def connected_components(graph: Graph) -> dict[VertexId, int]:
    """Map every vertex to a component index (0-based, ordered by discovery).

    Edges are treated as undirected (weak connectivity).
    """
    csr = graph.snapshot()
    return csr.decode(components_kernel(csr))


def component_sizes(graph: Graph) -> list[int]:
    """Sizes of all components, largest first."""
    labels = components_kernel(graph.snapshot())
    counts: dict[int, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return sorted(counts.values(), reverse=True)


def num_components(graph: Graph) -> int:
    return len(set(components_kernel(graph.snapshot())))


def largest_component(graph: Graph) -> set[VertexId]:
    """The vertex set of the largest component (empty set for empty graphs)."""
    csr = graph.snapshot()
    labels = components_kernel(csr)
    if not labels:
        return set()
    counts: dict[int, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    biggest = max(counts, key=lambda label: counts[label])
    ids = csr.external_ids
    return {ids[v] for v, label in enumerate(labels) if label == biggest}
