"""Connected components (weak connectivity) over the CSR execution kernel.

Connected components is duplicate-insensitive, so the paper runs it directly
on C-DUP and even exploits the condensed topology in the Giraph port for a
speed-up (Section 6.4).

The kernel comes from the selected backend
(:func:`repro.graph.backend.get_backend`): an integer union-find (path
halving + union by size) on ``python``, vectorised BFS sweeps on ``numpy``.
Both assign component labels in first-vertex order, so the results are
identical across backends and to the pre-backend implementation.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend


def connected_components(graph: Graph) -> dict[VertexId, int]:
    """Map every vertex to a component index (0-based, ordered by discovery).

    Edges are treated as undirected (weak connectivity).
    """
    csr = graph.snapshot()
    return csr.decode(get_backend().connected_components(csr))


def component_sizes(graph: Graph) -> list[int]:
    """Sizes of all components, largest first."""
    labels = get_backend().connected_components(graph.snapshot())
    counts: dict[int, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return sorted(counts.values(), reverse=True)


def num_components(graph: Graph) -> int:
    csr = graph.snapshot()
    labels = get_backend().connected_components(csr)
    return len(set(labels))


def largest_component(graph: Graph) -> set[VertexId]:
    """The vertex set of the largest component (empty set for empty graphs)."""
    csr = graph.snapshot()
    labels = get_backend().connected_components(csr)
    if not labels:
        return set()
    counts: dict[int, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    biggest = max(counts, key=lambda label: counts[label])
    ids = csr.external_ids
    return {ids[v] for v, label in enumerate(labels) if label == biggest}
