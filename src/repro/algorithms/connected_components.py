"""Connected components (weak connectivity) over the Graph API.

Connected components is duplicate-insensitive, so the paper runs it directly
on C-DUP and even exploits the condensed topology in the Giraph port for a
speed-up (Section 6.4).
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId


class _UnionFind:
    """Standard union-find with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: dict[VertexId, VertexId] = {}
        self._size: dict[VertexId, int] = {}

    def add(self, item: VertexId) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: VertexId) -> VertexId:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: VertexId, b: VertexId) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


def connected_components(graph: Graph) -> dict[VertexId, int]:
    """Map every vertex to a component index (0-based, ordered by discovery).

    Edges are treated as undirected (weak connectivity).
    """
    uf = _UnionFind()
    for vertex in graph.get_vertices():
        uf.add(vertex)
    for vertex in graph.get_vertices():
        for neighbor in graph.get_neighbors(vertex):
            uf.add(neighbor)
            uf.union(vertex, neighbor)

    labels: dict[VertexId, int] = {}
    component_of_root: dict[VertexId, int] = {}
    for vertex in graph.get_vertices():
        root = uf.find(vertex)
        if root not in component_of_root:
            component_of_root[root] = len(component_of_root)
        labels[vertex] = component_of_root[root]
    return labels


def component_sizes(graph: Graph) -> list[int]:
    """Sizes of all components, largest first."""
    labels = connected_components(graph)
    counts: dict[int, int] = {}
    for label in labels.values():
        counts[label] = counts.get(label, 0) + 1
    return sorted(counts.values(), reverse=True)


def num_components(graph: Graph) -> int:
    return len(set(connected_components(graph).values()))


def largest_component(graph: Graph) -> set[VertexId]:
    """The vertex set of the largest component (empty set for empty graphs)."""
    labels = connected_components(graph)
    if not labels:
        return set()
    counts: dict[int, int] = {}
    for label in labels.values():
        counts[label] = counts.get(label, 0) + 1
    biggest = max(counts, key=lambda label: counts[label])
    return {vertex for vertex, label in labels.items() if label == biggest}
