"""Connected components (weak connectivity) over the CSR execution kernel.

Connected components is duplicate-insensitive, so the paper runs it directly
on C-DUP and even exploits the condensed topology in the Giraph port for a
speed-up (Section 6.4).

The kernel is an integer union-find (path halving + union by size) over the
dense snapshot indexes; component labels are assigned in vertex discovery
order exactly as the pre-kernel implementation did, so results are identical.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId
from repro.graph.kernel import CSRGraph


def _components_kernel(csr: CSRGraph) -> list[int]:
    """Component index (0-based, ordered by first vertex) per dense index."""
    n = csr.n
    parent = list(range(n))
    size = [1] * n
    offsets = csr.offsets_list
    targets = csr.targets_list

    def find(item: int) -> int:
        while parent[item] != item:
            parent[item] = parent[parent[item]]  # path halving
            item = parent[item]
        return item

    for u in range(n):
        for e in range(offsets[u], offsets[u + 1]):
            ra = find(u)
            rb = find(targets[e])
            if ra == rb:
                continue
            if size[ra] < size[rb]:
                ra, rb = rb, ra
            parent[rb] = ra
            size[ra] += size[rb]

    labels = [0] * n
    component_of_root: dict[int, int] = {}
    for v in range(n):
        root = find(v)
        label = component_of_root.get(root)
        if label is None:
            label = component_of_root[root] = len(component_of_root)
        labels[v] = label
    return labels


def connected_components(graph: Graph) -> dict[VertexId, int]:
    """Map every vertex to a component index (0-based, ordered by discovery).

    Edges are treated as undirected (weak connectivity).
    """
    csr = graph.snapshot()
    return csr.decode(_components_kernel(csr))


def component_sizes(graph: Graph) -> list[int]:
    """Sizes of all components, largest first."""
    labels = _components_kernel(graph.snapshot())
    counts: dict[int, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return sorted(counts.values(), reverse=True)


def num_components(graph: Graph) -> int:
    csr = graph.snapshot()
    labels = _components_kernel(csr)
    return len(set(labels))


def largest_component(graph: Graph) -> set[VertexId]:
    """The vertex set of the largest component (empty set for empty graphs)."""
    csr = graph.snapshot()
    labels = _components_kernel(csr)
    if not labels:
        return set()
    counts: dict[int, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    biggest = max(counts, key=lambda label: counts[label])
    ids = csr.external_ids
    return {ids[v] for v, label in enumerate(labels) if label == biggest}
