"""k-core decomposition over the Graph API.

The paper motivates GraphGen with "complex analysis tasks like community
detection, dense subgraph detection" that need random access to the graph and
cannot be pushed to SQL (Section 2).  k-core decomposition is the standard
dense-subgraph primitive: the *k-core* is the maximal subgraph in which every
vertex has degree at least ``k``, and a vertex's *core number* is the largest
``k`` for which it belongs to the k-core.

Edges are treated as undirected (the co-occurrence graphs GraphGen extracts
are symmetric); for directed inputs the union of in- and out-neighbors is
approximated by the out-neighborhood, which is exact for symmetric graphs.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId


def _undirected_adjacency(graph: Graph) -> dict[VertexId, set[VertexId]]:
    """Symmetrised adjacency (u~v if u->v or v->u), without self-loops."""
    adjacency: dict[VertexId, set[VertexId]] = {v: set() for v in graph.get_vertices()}
    for vertex in graph.get_vertices():
        for neighbor in graph.get_neighbors(vertex):
            if neighbor == vertex:
                continue
            adjacency.setdefault(vertex, set()).add(neighbor)
            adjacency.setdefault(neighbor, set()).add(vertex)
    return adjacency


def core_numbers(graph: Graph) -> dict[VertexId, int]:
    """Core number of every vertex (Batagelj–Zaveršnik peeling algorithm).

    Runs in ``O(V + E)`` after the adjacency has been symmetrised.
    """
    adjacency = _undirected_adjacency(graph)
    degrees = {vertex: len(neighbors) for vertex, neighbors in adjacency.items()}
    # bucket queue over degrees
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: list[list[VertexId]] = [[] for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].append(vertex)

    cores: dict[VertexId, int] = {}
    removed: set[VertexId] = set()
    current = 0
    for degree in range(max_degree + 1):
        bucket = buckets[degree]
        while bucket:
            vertex = bucket.pop()
            if vertex in removed or degrees[vertex] != degree:
                continue
            current = max(current, degree)
            cores[vertex] = current
            removed.add(vertex)
            for neighbor in adjacency[vertex]:
                if neighbor in removed:
                    continue
                if degrees[neighbor] > degree:
                    degrees[neighbor] -= 1
                    buckets[degrees[neighbor]].append(neighbor)
    # vertices skipped because their recorded degree was stale get re-processed
    # through the bucket they were re-appended to, so every vertex ends up in
    # ``cores``; isolated vertices have core number 0.
    for vertex in adjacency:
        cores.setdefault(vertex, 0)
    return cores


def k_core(graph: Graph, k: int) -> set[VertexId]:
    """Vertices of the k-core (maximal subgraph of minimum degree >= k)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return {vertex for vertex, core in core_numbers(graph).items() if core >= k}


def degeneracy(graph: Graph) -> int:
    """The graph's degeneracy (the largest k with a non-empty k-core)."""
    cores = core_numbers(graph)
    return max(cores.values()) if cores else 0


def degeneracy_ordering(graph: Graph) -> list[VertexId]:
    """Vertices ordered by non-decreasing core number (ties by repr).

    A degeneracy ordering is the standard preprocessing step for clique
    enumeration and greedy colouring on the extracted graphs.
    """
    cores = core_numbers(graph)
    return sorted(cores, key=lambda vertex: (cores[vertex], repr(vertex)))


def densest_core(graph: Graph) -> tuple[int, set[VertexId]]:
    """The innermost (highest-k) core: ``(k, vertex set)``.

    Returns ``(0, set of all vertices)`` for an edgeless graph.
    """
    cores = core_numbers(graph)
    if not cores:
        return 0, set()
    k = max(cores.values())
    return k, {vertex for vertex, core in cores.items() if core == k}
