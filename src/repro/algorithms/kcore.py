"""k-core decomposition over the CSR execution kernel.

The paper motivates GraphGen with "complex analysis tasks like community
detection, dense subgraph detection" that need random access to the graph and
cannot be pushed to SQL (Section 2).  k-core decomposition is the standard
dense-subgraph primitive: the *k-core* is the maximal subgraph in which every
vertex has degree at least ``k``, and a vertex's *core number* is the largest
``k`` for which it belongs to the k-core.

Edges are treated as undirected (the co-occurrence graphs GraphGen extracts
are symmetric); the peeling kernel runs over the snapshot's symmetrised
dense-index adjacency with flat degree/core lists.
"""

from __future__ import annotations

from repro.graph.api import Graph, VertexId
from repro.graph.kernel import CSRGraph


def _core_numbers_kernel(csr: CSRGraph) -> list[int]:
    """Core number per dense index (Batagelj–Zaveršnik peeling)."""
    adjacency = csr.undirected_sets()
    n = csr.n
    if n == 0:
        return []
    degrees = [len(neighbors) for neighbors in adjacency]
    max_degree = max(degrees, default=0)
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for vertex, degree in enumerate(degrees):
        buckets[degree].append(vertex)

    cores = [0] * n
    removed = bytearray(n)
    current = 0
    for degree in range(max_degree + 1):
        bucket = buckets[degree]
        while bucket:
            vertex = bucket.pop()
            if removed[vertex] or degrees[vertex] != degree:
                continue
            current = max(current, degree)
            cores[vertex] = current
            removed[vertex] = 1
            for neighbor in adjacency[vertex]:
                if removed[neighbor]:
                    continue
                if degrees[neighbor] > degree:
                    degrees[neighbor] -= 1
                    buckets[degrees[neighbor]].append(neighbor)
    # vertices skipped because their recorded degree was stale get re-processed
    # through the bucket they were re-appended to; isolated vertices stay 0
    return cores


def core_numbers(graph: Graph) -> dict[VertexId, int]:
    """Core number of every vertex (Batagelj–Zaveršnik peeling algorithm).

    Runs in ``O(V + E)`` after the adjacency has been symmetrised.
    """
    csr = graph.snapshot()
    return csr.decode(_core_numbers_kernel(csr))


def k_core(graph: Graph, k: int) -> set[VertexId]:
    """Vertices of the k-core (maximal subgraph of minimum degree >= k)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    csr = graph.snapshot()
    cores = _core_numbers_kernel(csr)
    ids = csr.external_ids
    return {ids[v] for v, core in enumerate(cores) if core >= k}


def degeneracy(graph: Graph) -> int:
    """The graph's degeneracy (the largest k with a non-empty k-core)."""
    cores = _core_numbers_kernel(graph.snapshot())
    return max(cores, default=0)


def degeneracy_ordering(graph: Graph) -> list[VertexId]:
    """Vertices ordered by non-decreasing core number (ties by repr).

    A degeneracy ordering is the standard preprocessing step for clique
    enumeration and greedy colouring on the extracted graphs.
    """
    csr = graph.snapshot()
    cores = _core_numbers_kernel(csr)
    ids = csr.external_ids
    return sorted(ids, key=lambda vertex: (cores[csr.index(vertex)], repr(vertex)))


def densest_core(graph: Graph) -> tuple[int, set[VertexId]]:
    """The innermost (highest-k) core: ``(k, vertex set)``.

    Returns ``(0, set of all vertices)`` for an edgeless graph.
    """
    csr = graph.snapshot()
    cores = _core_numbers_kernel(csr)
    if not cores:
        return 0, set()
    k = max(cores)
    ids = csr.external_ids
    return k, {ids[v] for v, core in enumerate(cores) if core == k}
