"""k-core decomposition over the CSR execution kernel.

The paper motivates GraphGen with "complex analysis tasks like community
detection, dense subgraph detection" that need random access to the graph and
cannot be pushed to SQL (Section 2).  k-core decomposition is the standard
dense-subgraph primitive: the *k-core* is the maximal subgraph in which every
vertex has degree at least ``k``, and a vertex's *core number* is the largest
``k`` for which it belongs to the k-core.

Edges are treated as undirected (the co-occurrence graphs GraphGen extracts
are symmetric).  The peeling kernel comes from the selected backend:
Batagelj–Zaveršnik bucket peeling over symmetrised dense-index sets on
``python``, masked bulk peeling over the sorted symmetrised CSR on
``numpy`` — core numbers are graph-determined, so both are exactly equal.

:func:`core_numbers_kernel` is the kernel-level entry point the session
layer's :class:`~repro.session.AnalysisPlan` calls over a shared snapshot;
the free functions are thin delegations around it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.api import Graph, VertexId
from repro.graph.backend import get_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph


def core_numbers_kernel(csr: "CSRGraph", backend: "KernelBackend | None" = None) -> list[int]:
    """Kernel-level entry point: core number per dense index."""
    return (backend or get_backend()).core_numbers(csr)


def core_numbers(graph: Graph) -> dict[VertexId, int]:
    """Core number of every vertex (Batagelj–Zaveršnik peeling algorithm).

    Runs in ``O(V + E)`` after the adjacency has been symmetrised.
    """
    csr = graph.snapshot()
    return csr.decode(core_numbers_kernel(csr))


def k_core(graph: Graph, k: int) -> set[VertexId]:
    """Vertices of the k-core (maximal subgraph of minimum degree >= k)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    csr = graph.snapshot()
    cores = core_numbers_kernel(csr)
    ids = csr.external_ids
    return {ids[v] for v, core in enumerate(cores) if core >= k}


def degeneracy(graph: Graph) -> int:
    """The graph's degeneracy (the largest k with a non-empty k-core)."""
    return max(core_numbers_kernel(graph.snapshot()), default=0)


def degeneracy_ordering(graph: Graph) -> list[VertexId]:
    """Vertices ordered by non-decreasing core number (ties by repr).

    A degeneracy ordering is the standard preprocessing step for clique
    enumeration and greedy colouring on the extracted graphs.
    """
    csr = graph.snapshot()
    cores = core_numbers_kernel(csr)
    ids = csr.external_ids
    return sorted(ids, key=lambda vertex: (cores[csr.index(vertex)], repr(vertex)))


def densest_core(graph: Graph) -> tuple[int, set[VertexId]]:
    """The innermost (highest-k) core: ``(k, vertex set)``.

    Returns ``(0, set of all vertices)`` for an edgeless graph.
    """
    csr = graph.snapshot()
    cores = core_numbers_kernel(csr)
    if not cores:
        return 0, set()
    k = max(cores)
    ids = csr.external_ids
    return k, {ids[v] for v, core in enumerate(cores) if core == k}
