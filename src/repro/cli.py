"""Command-line interface for GraphGen.

The paper's system is used through a web front-end and a Python wrapper; this
CLI gives the reproduction an equivalent batch entry point so that graphs can
be extracted, inspected and analyzed without writing a script::

    python -m repro.cli datasets
    python -m repro.cli extract --dataset dblp --output coauthors.tsv
    python -m repro.cli explain --data ./my_csv_db --query-file coauthors.dl
    python -m repro.cli analyze --dataset tpch --algorithm pagerank --top 5
    python -m repro.cli analyze --dataset dblp --algo pagerank --algo components \
        --snapshot-cache ./snapshots --parallel 4

The ``analyze`` command is a thin client of
:class:`repro.session.GraphSession`: it builds one session, requests one
:class:`~repro.session.GraphHandle`, chains every ``--algo`` onto one
:class:`~repro.session.AnalysisPlan` and prints the resulting report — so
``--algo pagerank --algo components`` shares a single extraction and a
single CSR snapshot build instead of two process invocations.

Databases come either from a directory of CSV files (see
:mod:`repro.relational.csv_io`) or from one of the built-in synthetic dataset
generators; queries come from a file, a literal string, or the dataset's
default extraction query.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.config import EXTRACT_ENGINES
from repro.core.graphgen import GraphGen, REPRESENTATIONS
from repro.graph.backend import BACKEND_ENV_VAR, get_backend
from repro.datasets import (
    COACTOR_QUERY,
    COAUTHOR_QUERY,
    COENROLLMENT_QUERY,
    COPURCHASE_QUERY,
    generate_dblp,
    generate_imdb,
    generate_tpch,
    generate_univ,
)
from repro.exceptions import GraphGenError, UsageError
from repro.graphgenpy import FORMATS, GraphGenPy
from repro.session import GraphSession
from repro.session.plan import PLAN_ALGORITHMS
from repro.session.report import AnalysisResult
from repro.relational.csv_io import read_database
from repro.relational.database import Database

#: name -> (generator(scale, seed) -> Database, default extraction query)
BUILTIN_DATASETS: dict[str, tuple[Callable[[float, int], Database], str]] = {
    "dblp": (
        lambda scale, seed: generate_dblp(
            num_authors=int(300 * scale),
            num_publications=int(500 * scale),
            mean_authors_per_pub=4.0,
            seed=seed,
        ),
        COAUTHOR_QUERY,
    ),
    "imdb": (
        lambda scale, seed: generate_imdb(
            num_people=int(250 * scale), num_movies=int(40 * scale), mean_cast_size=10.0, seed=seed
        ),
        COACTOR_QUERY,
    ),
    "tpch": (
        lambda scale, seed: generate_tpch(
            num_customers=int(200 * scale),
            num_parts=int(60 * scale),
            orders_per_customer=3.0,
            lineitems_per_order=4.0,
            part_skew=1.0,
            seed=seed,
        ),
        COPURCHASE_QUERY,
    ),
    "univ": (
        lambda scale, seed: generate_univ(
            num_students=int(250 * scale),
            num_instructors=int(20 * scale),
            num_courses=int(40 * scale),
            seed=seed,
        ),
        COENROLLMENT_QUERY,
    ),
}

#: choices of the legacy single --algorithm flag (kept stable); the
#: repeatable --algo flag accepts every repro.session plan algorithm
ALGORITHMS = ("degree", "pagerank", "components", "bfs", "kcore", "triangles")


# --------------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="graphgen",
        description="Extract and analyze hidden graphs from relational data.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the built-in synthetic datasets")

    for name, help_text in (
        ("extract", "extract a graph and serialize it to a file"),
        ("explain", "show the extraction plan and generated SQL"),
        ("analyze", "extract a graph and run graph algorithms on it"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_source_arguments(sub)
        _add_query_arguments(sub)
        sub.add_argument(
            "--representation",
            choices=REPRESENTATIONS,
            default="cdup",
            help="in-memory representation to build (default: cdup)",
        )
        if name == "extract":
            sub.add_argument("--output", required=True, help="output file path")
            sub.add_argument(
                "--format", choices=FORMATS, default="edgelist", help="serialization format"
            )
        if name == "analyze":
            sub.add_argument(
                "--algorithm",
                choices=ALGORITHMS,
                default=None,
                help="single algorithm to run (default: degree); see --algo "
                "for batches and the full catalogue",
            )
            sub.add_argument(
                "--algo",
                action="append",
                dest="algos",
                metavar="NAME",
                default=None,
                help="algorithm to run (repeatable): all requests share one "
                "extraction and one snapshot build; choices: "
                + ", ".join(sorted(PLAN_ALGORITHMS)),
            )
            sub.add_argument("--top", type=int, default=10, help="number of result rows to print")
            sub.add_argument("--source", help="source vertex for BFS (as text)")
            sub.add_argument(
                "--snapshot-cache",
                metavar="DIR",
                help="directory of persisted CSR snapshots, keyed by "
                "dataset/query/representation; the extracted graph's snapshot "
                "is written there (only when missing or stale, detected by "
                "content hash) and --parallel workers mmap the cached file",
            )
            sub.add_argument(
                "--parallel",
                type=int,
                default=1,
                metavar="N",
                help="schedule the whole --algo batch over one pool of N "
                "worker processes mapping the shared snapshot: "
                "degree/pagerank/components/bfs run on the superstep engine, "
                "triangles/closeness/diameter (and sampled betweenness) run "
                "chunk-parallel, remaining algorithms run concurrently on "
                "single workers (identical results for any N; pagerank may "
                "differ from the serial kernel in low-order digits, and "
                "non-symmetric graphs fall back to the serial kernel with a "
                "note)",
            )
            sub.add_argument(
                "--shards",
                type=int,
                default=None,
                metavar="N",
                help="persist the snapshot as N per-vertex-range segment "
                "files and run superstep algorithms out-of-core: each worker "
                "maps only its own shard, never the whole graph (results "
                "identical to the monolithic path; mutually exclusive with "
                "--memory-budget)",
            )
            sub.add_argument(
                "--memory-budget",
                type=float,
                default=None,
                metavar="MB",
                help="out-of-core memory budget per worker, in megabytes: "
                "snapshots whose payload exceeds the budget are sharded so "
                "no segment file is larger than MB, and superstep workers "
                "map one shard each (mutually exclusive with --shards)",
            )
            sub.add_argument(
                "--backend",
                default=None,
                metavar="{python,numpy,auto}",
                help="kernel backend executing the algorithms (and any "
                "--parallel workers): 'python' is the bit-exact reference, "
                "'numpy' runs vectorised kernels over zero-copy snapshot "
                "views (int results exact, float results within 1e-9), "
                "'auto' picks numpy when importable (default: the "
                "REPRO_KERNEL_BACKEND environment variable, else auto)",
            )
            sub.add_argument(
                "--plan-report",
                action="store_true",
                help="after the results, print the plan compiler's execution "
                "report: per-request engine and timing plus per-node "
                "provenance (which snapshot/derived-view/sweep/algorithm "
                "nodes each request computed vs reused)",
            )

    serve = subparsers.add_parser(
        "serve",
        help="serve the extracted graph over HTTP with a session result cache",
    )
    _add_source_arguments(serve)
    _add_query_arguments(serve)
    serve.add_argument(
        "--representation",
        choices=REPRESENTATIONS,
        default="cdup",
        help="in-memory representation to build (default: cdup)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 picks a free one and prints it (default: 0)",
    )
    serve.add_argument(
        "--snapshot-cache",
        metavar="DIR",
        help="directory of persisted CSR snapshots; defaults to a temporary "
        "directory when --parallel > 1 (workers mmap the snapshot file)",
    )
    serve.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per plan; the service keeps one warm pool "
        "shared across requests (default: 1)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="serve out-of-core: shard the snapshot into N segment files "
        "and have each plan worker map only its own shard (mutually "
        "exclusive with --memory-budget)",
    )
    serve.add_argument(
        "--memory-budget",
        type=float,
        default=None,
        metavar="MB",
        help="per-worker memory budget in megabytes for served analyses; "
        "oversized snapshots are sharded to fit (mutually exclusive with "
        "--shards)",
    )
    serve.add_argument(
        "--backend",
        default=None,
        metavar="{python,numpy,auto}",
        help="kernel backend executing served analyses (default: the "
        "REPRO_KERNEL_BACKEND environment variable, else auto)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=128,
        metavar="N",
        help="result-cache capacity in entries, LRU-evicted (default: 128)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="uncached analyses executing concurrently (default: 4)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        metavar="N",
        help="uncached analyses allowed to wait for a slot before the "
        "service answers 503 (default: 16)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="shut down after serving N requests (smoke tests; default: run forever)",
    )
    serve.add_argument(
        "--incremental",
        action="store_true",
        help="journal mutations instead of rebuilding: POST /edges appends "
        "to a delta journal, snapshots merge the delta over the mmap'd "
        "base, and cached results of maintainable algorithms (pagerank, "
        "components, bfs) are patched in place instead of evicted",
    )

    return parser


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--data", help="directory of CSV files to load as the database")
    group.add_argument(
        "--dataset", choices=sorted(BUILTIN_DATASETS), help="built-in synthetic dataset"
    )
    parser.add_argument("--scale", type=float, default=1.0, help="size multiplier for --dataset")
    parser.add_argument("--seed", type=int, default=0, help="random seed for --dataset")


def _add_query_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--query", help="extraction query as a literal DSL string")
    group.add_argument("--query-file", help="file containing the extraction query")
    parser.add_argument(
        "--extract-engine",
        choices=EXTRACT_ENGINES,
        default=None,
        help="extraction engine: 'python' row-at-a-time reference, 'sqlite' "
        "row-at-a-time over the sqlite mirror, 'pushdown' compiles the whole "
        "plan into set-based SQL emitting sorted edge arrays, 'auto' tries "
        "pushdown and falls back (default: derived from the query backend)",
    )


# --------------------------------------------------------------------------- #
# shared resolution helpers
# --------------------------------------------------------------------------- #
def _resolve_database(args: argparse.Namespace) -> Database:
    if args.data:
        return read_database(args.data)
    generator, _ = BUILTIN_DATASETS[args.dataset]
    return generator(args.scale, args.seed)


def _engine_overrides(args: argparse.Namespace) -> dict[str, str]:
    """ExtractionOptions overrides implied by --extract-engine (if given)."""
    if getattr(args, "extract_engine", None) is None:
        return {}
    return {"extract_engine": args.extract_engine}


def _resolve_query(args: argparse.Namespace) -> str:
    if args.query:
        return args.query
    if args.query_file:
        return Path(args.query_file).read_text(encoding="utf-8")
    if args.dataset:
        return BUILTIN_DATASETS[args.dataset][1]
    raise GraphGenError(
        "no query given: pass --query / --query-file, or use --dataset for its default query"
    )


def _print_rows(rows: Sequence[tuple[Any, Any]], header: tuple[str, str], out) -> None:
    width = max(len(header[0]), *(len(str(key)) for key, _ in rows)) if rows else len(header[0])
    print(f"{header[0].ljust(width)}  {header[1]}", file=out)
    for key, value in rows:
        print(f"{str(key).ljust(width)}  {value}", file=out)


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def _cmd_datasets(_: argparse.Namespace, out) -> int:
    for name in sorted(BUILTIN_DATASETS):
        _, query = BUILTIN_DATASETS[name]
        first_edges_line = next(
            line.strip() for line in query.strip().splitlines() if line.strip().startswith("Edges")
        )
        print(f"{name}: {first_edges_line}", file=out)
    return 0


def _cmd_extract(args: argparse.Namespace, out) -> int:
    db = _resolve_database(args)
    query = _resolve_query(args)
    result = GraphGenPy(db, **_engine_overrides(args)).execute_query(
        query, args.output, fmt=args.format, representation=args.representation
    )
    for key, value in result.as_dict().items():
        print(f"{key}: {value}", file=out)
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    db = _resolve_database(args)
    query = _resolve_query(args)
    print(GraphGen(db, **_engine_overrides(args)).explain(query), file=out)
    return 0


# --------------------------------------------------------------------------- #
# analyze: a thin client of repro.session.GraphSession
# --------------------------------------------------------------------------- #
def _parallelism(args) -> int:
    parallel = getattr(args, "parallel", 1)
    if parallel < 1:
        raise UsageError(f"--parallel must be at least 1 (got {parallel})")
    return parallel


def _resolve_algos(args: argparse.Namespace) -> list[str]:
    """The algorithm batch this invocation requests (validated names)."""
    if args.algos:
        if args.algorithm is not None:
            raise UsageError("pass either --algorithm or repeated --algo flags, not both")
        for name in args.algos:
            if name not in PLAN_ALGORITHMS:
                raise UsageError(
                    f"--algo: unknown algorithm {name!r}; expected one of "
                    + ", ".join(sorted(PLAN_ALGORITHMS))
                )
        return list(args.algos)
    return [args.algorithm or "degree"]


def _print_degree(result: AnalysisResult, args, out) -> None:
    rows = sorted(result.values.items(), key=lambda item: (-item[1], repr(item[0])))[: args.top]
    _print_rows(rows, ("vertex", "degree"), out)


def _print_pagerank(result: AnalysisResult, args, out) -> None:
    rows = [
        (vertex, f"{score:.6f}")
        for vertex, score in sorted(
            result.values.items(), key=lambda item: (-item[1], repr(item[0]))
        )[: args.top]
    ]
    _print_rows(rows, ("vertex", "pagerank"), out)


def _sizes_rows(labels: dict) -> dict:
    sizes: dict[Any, int] = {}
    for label in labels.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes


def _print_components(result: AnalysisResult, args, out) -> None:
    sizes = _sizes_rows(result.values)
    rows = sorted(sizes.items(), key=lambda item: (-item[1], repr(item[0])))[: args.top]
    print(f"components: {len(sizes)}", file=out)
    _print_rows(rows, ("component", "size"), out)


def _print_bfs(result: AnalysisResult, args, out) -> None:
    distances = result.values
    rows = sorted(distances.items(), key=lambda item: (item[1], repr(item[0])))[: args.top]
    print(f"reachable vertices: {len(distances)}", file=out)
    _print_rows(rows, ("vertex", "distance"), out)


def _print_kcore(result: AnalysisResult, args, out) -> None:
    cores = result.values
    rows = sorted(cores.items(), key=lambda item: (-item[1], repr(item[0])))[: args.top]
    print(f"degeneracy: {max(cores.values(), default=0)}", file=out)
    _print_rows(rows, ("vertex", "core"), out)


def _print_triangles(result: AnalysisResult, args, out) -> None:
    print(f"triangles: {result.values}", file=out)


def _print_clustering(result: AnalysisResult, args, out) -> None:
    print(f"average clustering: {result.values:.6f}", file=out)


def _print_label_propagation(result: AnalysisResult, args, out) -> None:
    sizes = _sizes_rows(result.values)
    rows = sorted(sizes.items(), key=lambda item: (-item[1], repr(item[0])))[: args.top]
    print(f"communities: {len(sizes)}", file=out)
    _print_rows(rows, ("community", "size"), out)


def _print_centrality(result: AnalysisResult, args, out) -> None:
    rows = [
        (vertex, f"{score:.6f}")
        for vertex, score in sorted(
            result.values.items(), key=lambda item: (-item[1], repr(item[0]))
        )[: args.top]
    ]
    _print_rows(rows, ("vertex", result.algorithm), out)


def _print_diameter(result: AnalysisResult, args, out) -> None:
    print(f"approximate diameter: {result.values}", file=out)


def _print_link_predictions(result: AnalysisResult, args, out) -> None:
    rows = [(f"{u} -- {v}", f"{score:.6f}") for u, v, score in result.values[: args.top]]
    _print_rows(rows, ("pair", result.params["score"]), out)


#: algorithm name -> printer(result, args, out)
RESULT_PRINTERS: dict[str, Callable[[AnalysisResult, argparse.Namespace, Any], None]] = {
    "degree": _print_degree,
    "pagerank": _print_pagerank,
    "components": _print_components,
    "bfs": _print_bfs,
    "kcore": _print_kcore,
    "triangles": _print_triangles,
    "clustering": _print_clustering,
    "label_propagation": _print_label_propagation,
    "closeness": _print_centrality,
    "betweenness": _print_centrality,
    "diameter": _print_diameter,
    "link_predictions": _print_link_predictions,
}


def _snapshot_cache_key(args: argparse.Namespace, query: str) -> str:
    """Cache key identifying (database origin + dataset args, query,
    representation) — everything that changes the snapshot's content or
    vertex order.  A ``--data`` directory is identified by its full resolved
    path (hashed), so two directories that happen to share a basename never
    collide."""
    import hashlib

    if args.dataset:
        origin = f"{args.dataset}_s{args.scale}_r{args.seed}"
    else:
        path = Path(args.data).resolve()
        origin = f"{path.name}_{hashlib.sha256(str(path).encode('utf-8')).hexdigest()[:8]}"
    digest = hashlib.sha256(query.encode("utf-8")).hexdigest()[:12]
    return f"{origin}_{args.representation}_{digest}"


def _parse_vertex(graph, text: str):
    """Interpret a --source string as an existing vertex ID (int if possible)."""
    if graph.has_vertex(text):
        return text
    try:
        candidate = int(text)
    except ValueError:
        candidate = None
    if candidate is not None and graph.has_vertex(candidate):
        return candidate
    raise GraphGenError(f"vertex {text!r} is not in the extracted graph")


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    # validate cheap flags early, before the (expensive) extraction; an
    # unknown --algo / --backend or --parallel < 1 is a UsageError message,
    # never a traceback
    algos = _resolve_algos(args)
    _parallelism(args)
    try:
        # repro.graph.backend owns name + availability validation
        get_backend(args.backend)
    except UsageError as exc:
        # blame the actual source: the flag if given, else the environment
        source = "--backend" if args.backend is not None else BACKEND_ENV_VAR
        raise UsageError(f"{source}: {exc}") from None
    db = _resolve_database(args)
    query = _resolve_query(args)

    session = GraphSession(
        db,
        snapshot_cache=args.snapshot_cache,
        backend=args.backend,
        parallelism=args.parallel,
        shards=args.shards,
        memory_budget_mb=args.memory_budget,
        **_engine_overrides(args),
    )
    handle = session.graph(
        query, representation=args.representation, key=_snapshot_cache_key(args, query)
    )
    if args.snapshot_cache:
        # persist eagerly (content-hash checked: a fresh file is written only
        # when missing or stale) so warm runs and parallel workers mmap it
        handle.persist()

    plan = handle.analyze()
    for name in algos:
        params: dict[str, Any] = {}
        if name == "bfs":
            if args.source is None:
                raise GraphGenError("--source is required for the bfs algorithm")
            params["source"] = _parse_vertex(handle.graph, args.source)
        plan.add(name, **params)
    report = plan.run()

    multiple = len(report) > 1
    for result in report:
        if multiple:
            print(f"--- {result.label} ---", file=out)
        for note in result.notes:
            print(note, file=out)
        RESULT_PRINTERS[result.algorithm](result, args, out)
    if args.plan_report:
        print("--- plan report ---", file=out)
        print(report.summary(), file=out)
    return 0


# --------------------------------------------------------------------------- #
# serve: the repro.service HTTP front-end
# --------------------------------------------------------------------------- #
def _cmd_serve(args: argparse.Namespace, out) -> int:
    import tempfile

    from repro.service import GraphService, make_server

    _parallelism(args)
    try:
        get_backend(args.backend)
    except UsageError as exc:
        source = "--backend" if args.backend is not None else BACKEND_ENV_VAR
        raise UsageError(f"{source}: {exc}") from None
    db = _resolve_database(args)
    query = _resolve_query(args)

    # parallel plans need a snapshot *file* for workers to mmap; without a
    # user-provided store, give the service a private temporary one so every
    # request shares one file instead of re-writing a tempfile per plan
    snapshot_cache = args.snapshot_cache
    temp_store = None
    if snapshot_cache is None and args.parallel > 1:
        temp_store = tempfile.TemporaryDirectory(prefix="ggserve-")
        snapshot_cache = temp_store.name

    session = GraphSession(
        db,
        snapshot_cache=snapshot_cache,
        backend=args.backend,
        parallelism=args.parallel,
        warm_pool=True,
        shards=args.shards,
        memory_budget_mb=args.memory_budget,
        **_engine_overrides(args),
    )
    try:
        handle = session.graph(
            query, representation=args.representation, key=_snapshot_cache_key(args, query)
        )
        service = GraphService(
            session,
            handle,
            cache_size=args.cache_size,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            incremental=args.incremental,
        )
        server = make_server(service, args.host, args.port, max_requests=args.max_requests)
        host, port = server.server_address[:2]
        # machine-readable boot line: smoke tests (and humans) parse the port
        print(f"serving on http://{host}:{port}", file=out, flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            server.server_close()
    finally:
        session.close()
        if temp_store is not None:
            temp_store.cleanup()
    return 0


COMMANDS = {
    "datasets": _cmd_datasets,
    "extract": _cmd_extract,
    "explain": _cmd_explain,
    "analyze": _cmd_analyze,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args, out)
    except GraphGenError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
