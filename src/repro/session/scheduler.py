"""Plan-level scheduling: one worker pool, one snapshot file per plan.

PR 4 put every request of an :class:`~repro.session.AnalysisPlan` onto one
shared snapshot, but ``parallelism > 1`` plans still paid per request: each
superstep-routed algorithm forked its own worker pool and, on store-less
sessions, wrote its own tempfile copy of the snapshot, while direct kernels
never used workers at all.  This module holds the worker-side machinery the
plan scheduler drives instead:

* :class:`PlanWorkerFactory` / :class:`PlanWorker` — one *generic* worker per
  partition, forked once per plan, mmap-loading the plan's single snapshot
  file.  A worker serves three kinds of work over the run's lifetime:

  - ``install_program`` + the standard superstep protocol — the
    vertex-centric coordinator installs each superstep-routed request's
    program (shipped by value through the pipe) on the same processes, so a
    plan with three superstep requests forks one pool, not three;
  - ``run_chunk`` — one partition's share of a chunk-parallel direct kernel
    (see :data:`CHUNK_RUNNERS`); the master merges partials in partition
    order, which keeps results bit-identical to the serial kernels;
  - ``run_task`` — a whole-graph serial kernel executed on a single worker,
    so independent kernel-only requests run *concurrently* across the worker
    budget instead of sequentially on the master.

* :data:`CHUNK_RUNNERS` — the worker half of the chunk-parallel direct
  kernels.  Range tasks (triangles, closeness) receive the worker's
  ``(lo, hi)`` vertex partition; source tasks (sampled betweenness, diameter
  sweeps) receive their contiguous slice of the master's seeded source list.
  Merge determinism mirrors the superstep executor's contract: integer
  partials are exact under any regrouping, float partials are shipped as
  *ordered per-source contribution lists* and re-summed by the master with
  one flat left-to-right pass in global source order — exactly the serial
  kernels' accumulation order, so floats are bit-identical, not merely
  close.

The master half (routing, pool lifecycle, merges) lives in
:mod:`repro.session.plan`.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.graph.backend import get_backend
from repro.graph.kernel import CSRGraph
from repro.vertexcentric.parallel import ParallelSuperstepExecutor, VertexChunkWorker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend


# --------------------------------------------------------------------------- #
# chunk runners: (csr, backend, payload) -> partial result, executed inside a
# worker over the shared mmap'd snapshot
# --------------------------------------------------------------------------- #
def _chunk_triangles(csr: CSRGraph, backend: "KernelBackend", payload: Any) -> int:
    lo, hi = payload
    return backend.count_triangles(csr, lo, hi)


def _chunk_closeness(csr: CSRGraph, backend: "KernelBackend", payload: Any) -> list[float]:
    lo, hi = payload
    return backend.closeness_centrality(csr, lo, hi)


def _chunk_betweenness(
    csr: CSRGraph, backend: "KernelBackend", payload: Any
) -> list[list[float]]:
    # ordered per-source Brandes contributions for this worker's slice of the
    # master's seeded source list; the master re-sums them in global source
    # order, replaying the serial kernel's addition sequence exactly
    return [backend.betweenness_contribution(csr, source) for source in payload]


def _chunk_diameter(csr: CSRGraph, backend: "KernelBackend", payload: Any) -> int:
    best = 0
    for source in payload:
        best = max(best, backend.tree_stats(backend.bfs_tree(csr, source))[2])
    return best


#: chunk task name -> worker-side runner
CHUNK_RUNNERS: dict[str, Callable[[CSRGraph, "KernelBackend", Any], Any]] = {
    "triangles": _chunk_triangles,
    "closeness": _chunk_closeness,
    "betweenness": _chunk_betweenness,
    "diameter": _chunk_diameter,
}


class PlanWorker:
    """One partition's generic worker for a scheduled plan (see module doc)."""

    def __init__(self, csr: CSRGraph, lo: int, hi: int, backend: "KernelBackend") -> None:
        self.csr = csr
        self.lo = lo
        self.hi = hi
        self.backend = backend
        self._program_worker: VertexChunkWorker | None = None

    # -- superstep protocol (pool reuse across programs) ----------------- #
    def install_program(self, executor) -> None:
        """Adopt a new vertex-centric program: fresh per-program state, same
        process, same mmap'd snapshot."""
        self._program_worker = VertexChunkWorker(
            self.csr, executor, self.lo, self.hi, backend=self.backend
        )

    def run_superstep(self, payload):
        if self._program_worker is None:
            raise RuntimeError("no superstep program installed on this worker")
        return self._program_worker.run_superstep(payload)

    def collect(self):  # pragma: no cover - master merges every superstep
        return None

    # -- direct-kernel work ---------------------------------------------- #
    def run_chunk(self, payload):
        """One partition's share of a chunk-parallel kernel."""
        name, argument = payload
        return CHUNK_RUNNERS[name](self.csr, self.backend, argument)

    def run_sweep(self, payload):
        """One slice of the plan compiler's shared source sweep.

        ``payload`` is a list of ``(source, want_delta, want_dists)`` tuples;
        for each source the worker grows one traversal — a Brandes traversal
        when a betweenness demand needs the dependency vector, a plain BFS
        tree otherwise — and ships ``(stats, delta|None, dists|None)`` back.
        Stats are integer-exact and deltas are ordered per-source contribution
        lists, so the master's partition-order merge keeps every consuming
        algorithm bit-identical to its serial kernel (see
        :mod:`repro.session.compiler`).
        """
        products = []
        for source, want_delta, want_dists in payload:
            if want_delta:
                tree, delta = self.backend.brandes_tree(self.csr, source)
                delta_list = self.backend.tree_delta(delta)
            else:
                tree = self.backend.bfs_tree(self.csr, source)
                delta_list = None
            stats = self.backend.tree_stats(tree)
            dists = self.backend.tree_distances(tree) if want_dists else None
            products.append((stats, delta_list, dists))
        return products

    def run_task(self, payload):
        """A whole-graph serial kernel on this worker.

        Returns ``("ok", seconds, values)`` with worker-measured execution
        time, or ``("error", exc)`` for caller-mistake exceptions
        (:class:`UsageError` / :class:`RepresentationError`) — the master
        re-raises them as-is, so a bad request fails with the same one-line
        message type whether it ran inline or on a worker.
        """
        # local import: plan.py imports this module at load time
        from repro.exceptions import RepresentationError, UsageError
        from repro.session.plan import PLAN_ALGORITHMS

        name, params = payload
        started = time.perf_counter()
        try:
            values = PLAN_ALGORITHMS[name].kernel(self.csr, self.backend, params)
        except (UsageError, RepresentationError) as exc:
            return ("error", exc)
        return ("ok", time.perf_counter() - started, values)

    # -- observability ---------------------------------------------------- #
    def memory_stats(self, _payload=None) -> dict:
        """This worker's snapshot footprint — the out-of-core assertion data.

        ``mapped_bytes`` is the snapshot file bytes this process keeps
        memory-mapped (one shard's segment file under sharding, the whole
        snapshot otherwise); ``peak_rss_bytes`` the process-lifetime peak
        resident set size.
        """
        from repro.utils.memstats import mapped_snapshot_bytes, peak_rss_bytes

        return {
            "lo": self.lo,
            "hi": self.hi,
            "mapped_bytes": mapped_snapshot_bytes(self.csr),
            "peak_rss_bytes": peak_rss_bytes(),
        }


class SharedPoolManager:
    """One warm :class:`PlanWorker` pool shared across plans (and across
    service request threads) of a ``warm_pool=True`` session.

    A pool's worker processes are stateful (installed superstep programs,
    pipe protocol), so at most one plan may drive a pool at a time:
    :meth:`acquire` blocks until the pool is free, then hands out the cached
    executor when the *identity key* — snapshot path, snapshot content hash,
    parallelism, worker geometry, backend — still matches, re-forking only on
    a mismatch (e.g. the dataset was mutated, so the content hash moved).
    The returned ``release`` merely frees the lease; worker processes stay
    alive, keeping their mmap of the snapshot file warm for the next plan.

    ``os.replace`` on the snapshot file keeps the old inode alive for
    existing mmaps, which is exactly why the content hash must be part of the
    key: workers holding the *old* mapping would silently serve stale arrays
    after a store rewrite.
    """

    def __init__(self) -> None:
        self._busy = threading.Lock()
        self._pool: ParallelSuperstepExecutor | None = None
        self._key: tuple | None = None
        #: observability: pools forked vs leases served from the warm pool
        self.counters = {"forks": 0, "reuses": 0, "leases": 0}

    def acquire(
        self,
        parallelism: int,
        num_items: int,
        snapshot_path: str,
        content_hash: bytes,
        backend_name: str | None,
        *,
        partitions: "list[tuple[int, int]] | None" = None,
        sharded: bool = False,
    ):
        """Blocks until the warm pool is free; returns ``(pool, release)``.

        ``partitions``/``sharded`` carry the out-of-core geometry: workers of
        a sharded pool mmap one segment file each, so the partition bounds
        (which must equal the manifest's shard ranges) are part of the
        identity key — a plan that changes the shard geometry re-forks.
        """
        self._busy.acquire()
        key = (
            str(snapshot_path),
            content_hash,
            parallelism,
            num_items,
            backend_name,
            tuple(partitions) if partitions is not None else None,
            sharded,
        )
        try:
            self.counters["leases"] += 1
            if self._pool is None or self._key != key:
                if self._pool is not None:
                    self._pool.close()
                    self._pool = None
                self._pool = ParallelSuperstepExecutor(
                    parallelism,
                    num_items,
                    PlanWorkerFactory(snapshot_path, backend_name, sharded=sharded),
                    partitions=partitions,
                ).start()
                self._key = key
                self.counters["forks"] += 1
            else:
                self.counters["reuses"] += 1
        except BaseException:
            self._busy.release()
            raise
        return self._pool, self._release

    def _release(self) -> None:
        self._busy.release()

    def close(self) -> None:
        """Shut the warm pool down (blocks until any active lease returns)."""
        with self._busy:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
                self._key = None


class PlanWorkerFactory:
    """Builds a :class:`PlanWorker` inside a forked worker process.

    Loads the plan's snapshot file with ``mmap=True`` so all workers (and the
    master, when its snapshot came off the store) share one physical copy of
    the arrays, and re-resolves the session's backend by name so workers run
    the same kernels regardless of their inherited environment.

    With ``sharded=True`` the path is a shard *manifest* and each worker maps
    only its own partition's segment file (the partition bounds must equal
    the manifest's shard ranges) — the out-of-core contract: no worker
    process ever maps the full graph.
    """

    def __init__(
        self, snapshot_path, backend: str | None = None, *, sharded: bool = False
    ) -> None:
        self.snapshot_path = snapshot_path
        self.backend = backend
        self.sharded = sharded

    def __call__(self, lo: int, hi: int) -> PlanWorker:
        if self.sharded:
            from repro.graph.shard_store import load_shard

            csr: CSRGraph = load_shard(self.snapshot_path, (lo, hi), mmap=True)
        else:
            csr = CSRGraph.load(self.snapshot_path, mmap=True, verify=False)
        return PlanWorker(csr, lo, hi, get_backend(self.backend))
