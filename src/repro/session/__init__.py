"""The session layer: a unified extract → snapshot → analyze API.

:class:`GraphSession` owns the resources a batch-analysis workload wants
amortised (extractor, snapshot store, kernel backend, worker processes);
:class:`GraphHandle` binds one extracted representation to its lazily built,
store-backed, version-tracked CSR snapshot; :class:`AnalysisPlan` chains
algorithm requests that execute over **one** shared snapshot; and
:class:`AnalysisReport` / :class:`AnalysisResult` / :class:`Provenance`
carry the structured outcome, including per-node :class:`NodeProvenance`
records for compiled runs (see :mod:`repro.session.compiler`).  See
:mod:`repro.session.session` for the object model and a usage example.
"""

from repro.session.plan import PLAN_ALGORITHMS, AnalysisPlan
from repro.session.report import (
    AnalysisReport,
    AnalysisResult,
    NodeProvenance,
    Provenance,
)
from repro.session.session import GraphHandle, GraphSession

__all__ = [
    "GraphSession",
    "GraphHandle",
    "AnalysisPlan",
    "AnalysisReport",
    "AnalysisResult",
    "Provenance",
    "NodeProvenance",
    "PLAN_ALGORITHMS",
]
