"""The GraphSession façade: extract once, snapshot once, analyze many times.

The paper's workflow is "declare a hidden graph, extract it, then run *many*
analyses on it", and real workloads batch heterogeneous queries against one
graph.  :class:`GraphSession` is the object that owns every resource that
workflow wants amortised:

* the :class:`~repro.core.graphgen.GraphGen` extractor (one per database),
* an optional :class:`~repro.graph.snapshot_store.SnapshotStore` directory
  of persisted, mmap-able CSR snapshot files,
* one resolved kernel backend (validated eagerly, so a bad name fails at
  session construction, not at the first analysis), and
* a worker-process budget for the parallel superstep executor.

``session.graph(query)`` extracts (memoised per query/representation) and
returns a :class:`GraphHandle`; ``handle.analyze()`` starts an
:class:`~repro.session.AnalysisPlan` whose ``run()`` executes every chained
algorithm over **one** shared snapshot.  A typical session::

    session = GraphSession(db, snapshot_cache="./snapshots", parallelism=4)
    handle = session.graph(COAUTHOR_QUERY, representation="cdup")
    report = handle.analyze().pagerank().components().triangles().run()
    print(report["pagerank"].values)
    print(report.summary())

Handles are *version-tracked*: the snapshot is built lazily on first use,
reused (``"cache-hit"`` provenance) while the graph is structurally
unchanged, and rebuilt automatically after a mutation such as ``add_edge``
(the representations' version counters invalidate the cached snapshot, and
the store detects the stale file by content hash and rewrites it).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.config import ExtractionOptions
from repro.core.graphgen import ExtractionResult, GraphGen
from repro.exceptions import UsageError
from repro.graph.backend import get_backend
from repro.graph.snapshot_store import SnapshotStore, ensure_saved
from repro.session.plan import PLAN_ALGORITHMS, AnalysisPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dsl.ast import GraphSpec
    from repro.giraph.runner import GiraphRunResult
    from repro.graph.api import Graph
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph
    from repro.relational.database import Database


@dataclass
class RefreshReport:
    """Outcome of :meth:`GraphHandle.refresh` — what applying the journal
    cost, and which previous results were maintained vs. dropped."""

    #: pending edge-delta records the refresh merged over the base snapshot
    delta_edges: int
    #: provenance of the refreshed snapshot (``"base+delta"`` when the
    #: journal was applied; ``"heap"``/``"cache-hit"`` etc. otherwise)
    snapshot_source: str | None
    #: labels of previous results the dynamic maintainers carried forward
    maintained: list[str] = field(default_factory=list)
    #: labels of previous results that could not be maintained (recomputed
    #: cold on their next request)
    dropped: list[str] = field(default_factory=list)
    #: wall-clock seconds for the whole refresh
    seconds: float = 0.0


@dataclass
class _IncrementalEntry:
    """A previous result a dynamic maintainer can carry over deltas."""

    #: algorithm registry name
    algorithm: str
    #: effective parameters of the remembered run
    params: dict[str, Any]
    #: journal position (``journal.total``) the values are exact at
    position: int
    #: private copy of the decoded values
    values: dict
    #: journal generation the position is valid for (a rebaseline that could
    #: not be expressed as edge records bumps it, invalidating the entry)
    generation: int


class GraphHandle:
    """A representation-bound graph plus its lazily managed CSR snapshot.

    Obtained from :meth:`GraphSession.graph` (or :meth:`GraphSession.wrap`
    for an already-built :class:`~repro.graph.api.Graph`).  The handle does
    not copy anything: ``handle.graph`` is the live representation, and
    mutating it through the Graph API invalidates the snapshot as usual.
    """

    def __init__(
        self,
        session: "GraphSession",
        graph: "Graph",
        representation: str,
        store_key: str,
        extraction: ExtractionResult | None = None,
    ) -> None:
        self.session = session
        #: the live in-memory representation (Graph API)
        self.graph = graph
        #: resolved representation name ("cdup", "exp", ...)
        self.representation = representation
        #: key under which this handle's snapshot persists in the session
        #: store; None = derive lazily from the first snapshot's content hash
        #: (wrapped graphs, so equal graphs share one stable store file)
        self._store_key = store_key
        #: full extraction result (plan, condensed graph, report), when the
        #: handle came out of an extraction; None for wrapped graphs
        self.extraction = extraction
        self._builds = 0
        self._snapshot_source: str | None = None
        #: pending edge-delta records behind the most recent snapshot (0 for
        #: non-journaled graphs) — surfaced as ``Provenance.delta_edges``
        self._delta_edges = 0
        # previous results the dynamic maintainers can carry over deltas,
        # keyed (algorithm, canonical params); journaled graphs only
        self._incremental: dict[tuple[str, str], _IncrementalEntry] = {}
        # serialises snapshot builds/persists across service request threads:
        # concurrent analyses of one dataset share one build instead of
        # racing to produce two (RLock: persist() calls snapshot())
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def store_key(self) -> str:
        """The handle's snapshot-store key.

        Extracted handles get a query-derived key up front; wrapped graphs
        derive theirs lazily as ``wrapped_<representation>_<content hash>``
        of the first snapshot — *stable across processes and sessions*, so a
        second session wrapping an equal graph gets an mmap cache hit instead
        of leaking a fresh ``.csr`` file per run (the key stays fixed after a
        mutation; the store then detects the stale file by hash and rewrites
        it, exactly like extracted handles).
        """
        with self._lock:
            if self._store_key is None:
                digest = self.graph.snapshot().content_hash.hex()[:16]
                self._store_key = f"wrapped_{self.representation}_{digest}"
            return self._store_key

    @property
    def builds(self) -> int:
        """How many snapshot builds/loads this handle has performed (an
        in-process cache hit does not count)."""
        return self._builds

    @property
    def snapshot_source(self) -> str | None:
        """Provenance of the most recent :meth:`snapshot` call — ``"heap"``,
        ``"mmap"`` or ``"cache-hit"`` (None before the first call)."""
        return self._snapshot_source

    def snapshot(self) -> "CSRGraph":
        """The graph's current CSR snapshot — built lazily, store-backed,
        version-tracked.

        While the graph is structurally unchanged the cached snapshot is
        returned (``"cache-hit"``).  Otherwise the session's snapshot store,
        if configured, is consulted: a file whose content hash matches the
        rebuilt snapshot is loaded zero-copy (``"mmap"``), anything else is
        (re)written from the fresh heap build (``"heap"``).
        """
        with self._lock:
            cached = self.graph.cached_snapshot()
            if cached is not None:
                self._snapshot_source = "cache-hit"
                self._delta_edges = getattr(self.graph, "delta_edges", 0)
                return cached
            store = self.session.store
            if store is not None:
                # the per-call outcome, not a read-back of shared store state:
                # another thread's fetch on the same store could land between
                # the two (see SnapshotStore.fetch)
                csr, outcome = store.fetch(self.graph, self.store_key)
                if outcome == "base+delta":
                    # journaled graph: the base file stayed put, pending
                    # deltas went to the .csrd sidecar, and the served
                    # snapshot is the overlay merge
                    self._snapshot_source = "base+delta"
                elif outcome == "hit" and csr._buffer_owner is None:
                    # sharded-store hit: the coordinator keeps its heap
                    # arrays (only workers map segment files), so "mmap"
                    # would misstate where these arrays live
                    self._snapshot_source = "heap"
                else:
                    self._snapshot_source = "mmap" if outcome == "hit" else "heap"
            else:
                csr = self.graph.snapshot()
                journal = getattr(self.graph, "journal", None)
                self._snapshot_source = (
                    "base+delta" if journal is not None and journal.records else "heap"
                )
            self._delta_edges = getattr(self.graph, "delta_edges", 0)
            self._builds += 1
            return csr

    def persist(self) -> str | None:
        """Make sure the session store holds this handle's current snapshot;
        returns the file path (None when the session has no store).

        Parallel superstep workers mmap this file instead of rebuilding or
        unpickling the graph.  When the store's sharding policy splits this
        snapshot, the persisted form is the sharded one and the returned path
        is its *manifest* — each worker then maps only its own partition's
        segment file.
        """
        store = self.session.store
        if store is None:
            return None
        with self._lock:
            snap = self.snapshot()
            ranges = store.shard_plan(snap)
            if ranges is not None:
                from repro.graph.shard_store import ensure_saved_sharded

                return str(
                    ensure_saved_sharded(
                        snap, store.manifest_path_for(self.store_key), ranges=ranges
                    )
                )
            return str(ensure_saved(snap, store.path_for(self.store_key)))

    # ------------------------------------------------------------------ #
    # incremental maintenance (journaled graphs)
    # ------------------------------------------------------------------ #
    def consume_snapshot_notes(self) -> tuple[str, ...]:
        """Drain any provenance notes the journaled graph queued for the
        next snapshot consumer (corrupt-sidecar rebuilds, out-of-band
        mutation detection); empty for non-journaled graphs."""
        consume = getattr(self.graph, "consume_notes", None)
        return consume() if consume is not None else ()

    @staticmethod
    def _incremental_key(name: str, params: dict) -> tuple[str, str]:
        return name, repr(sorted(params.items(), key=lambda item: item[0]))

    def _incremental_record(self, name: str, params: dict, values: Any) -> None:
        """Remember a freshly computed result so the dynamic maintainers can
        carry it over future deltas.  No-op for non-journaled graphs and for
        non-dict result shapes."""
        journal = getattr(self.graph, "journal", None)
        if journal is None or not isinstance(values, dict):
            return
        with self._lock:
            self._incremental[self._incremental_key(name, params)] = _IncrementalEntry(
                algorithm=name,
                params=dict(params),
                position=journal.total,
                values=dict(values),
                generation=self.graph.generation,
            )

    def _incremental_serve(
        self, name: str, maintainer_name: str, params: dict, csr: "CSRGraph", backend
    ) -> "tuple[Any, float, str] | None":
        """Serve ``name(params)`` by maintaining the remembered previous
        result over the journal window, or ``None`` to fall back cold.

        ``csr`` must be the handle's *current* snapshot (the caller just
        fetched it, pinning ``journal.total``).  On success the remembered
        entry advances to the current position and a fresh copy of the
        values is returned with the maintenance seconds and a provenance
        note; unmaintainable entries are dropped so they do not retry on
        every plan.
        """
        from repro.incremental import MAINTAINERS, build_delta_view

        journal = getattr(self.graph, "journal", None)
        if journal is None:
            return None
        key = self._incremental_key(name, params)
        with self._lock:
            entry = self._incremental.get(key)
            if entry is None:
                return None
            if entry.generation != self.graph.generation:
                # a rebaseline (vertex deletion, out-of-band mutation) broke
                # the delta stream the entry is keyed to
                del self._incremental[key]
                return None
            records = journal.records_since(entry.position)
            if records is None:
                # the entry predates the current base (compacted away before
                # it could be maintained)
                del self._incremental[key]
                return None
            started = time.perf_counter()
            if not records:
                return (
                    dict(entry.values),
                    time.perf_counter() - started,
                    "incremental: no new deltas since the previous result",
                )
            delta = build_delta_view(records)
            values = MAINTAINERS[maintainer_name](
                entry.values, csr, delta, params, backend
            )
            if values is None:
                del self._incremental[key]
                return None
            entry.values = dict(values)
            entry.position = journal.total
            return (
                values,
                time.perf_counter() - started,
                f"incremental: maintained over {len(records)} delta record(s)",
            )

    def refresh(self) -> RefreshReport:
        """Apply the pending journal: rebuild the snapshot as base ⊕ deltas
        and carry every remembered result forward through its dynamic
        maintainer (components / PageRank / BFS).

        Cheap by construction — the snapshot is an array merge, and each
        maintained result costs ``O(delta)``-ish instead of a cold
        recompute.  Entries no maintainer can repair (e.g. a component
        split) are dropped and recompute cold on their next request.
        """
        started = time.perf_counter()
        with self._lock:
            csr = self.snapshot()
            backend = self.session.backend
            maintained: list[str] = []
            dropped: list[str] = []
            for key in list(self._incremental):
                entry = self._incremental.get(key)
                if entry is None:  # pragma: no cover - defensive
                    continue
                spec = PLAN_ALGORITHMS.get(entry.algorithm)
                if spec is None or spec.maintainer is None:
                    del self._incremental[key]
                    dropped.append(entry.algorithm)
                    continue
                served = self._incremental_serve(
                    entry.algorithm, spec.maintainer, entry.params, csr, backend
                )
                (maintained if served is not None else dropped).append(entry.algorithm)
            return RefreshReport(
                delta_edges=self._delta_edges,
                snapshot_source=self._snapshot_source,
                maintained=maintained,
                dropped=dropped,
                seconds=time.perf_counter() - started,
            )

    # ------------------------------------------------------------------ #
    def analyze(self) -> AnalysisPlan:
        """Start a chainable multi-algorithm :class:`AnalysisPlan`."""
        return AnalysisPlan(self)

    def giraph(self, algorithm: str, **kwargs: Any) -> "GiraphRunResult":
        """Run one program on the simulated Giraph engine over this handle's
        graph, using the session's worker budget (an escape hatch to the
        Pregel-style layer for workloads the plan registry does not cover)."""
        from repro.giraph.runner import run_giraph

        kwargs.setdefault("parallelism", self.session.parallelism)
        return run_giraph(self.graph, algorithm, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<GraphHandle {self.representation} key={self._store_key!r} "
            f"builds={self._builds}>"
        )


class GraphSession:
    """Session façade composing extractor, snapshot store, kernel backend
    and parallelism into one analysis context (see the module docstring)."""

    def __init__(
        self,
        database: "Database",
        *,
        snapshot_cache: str | None = None,
        backend: str | None = None,
        parallelism: int = 1,
        compile_plans: bool = True,
        warm_pool: bool = False,
        shards: int | None = None,
        memory_budget_mb: float | None = None,
        options: ExtractionOptions | None = None,
        **option_overrides: Any,
    ) -> None:
        if parallelism < 1:
            raise UsageError(f"parallelism must be at least 1 (got {parallelism})")
        if shards is not None and shards < 1:
            raise UsageError(f"shards must be at least 1 (got {shards})")
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise UsageError(
                f"memory_budget_mb must be positive (got {memory_budget_mb})"
            )
        if shards is not None and memory_budget_mb is not None:
            raise UsageError("pass shards=N or memory_budget_mb=MB, not both")
        self._graphgen = GraphGen(database, options=options, **option_overrides)
        self._store_tmpdir = None
        threshold = (
            int(memory_budget_mb * 1024 * 1024) if memory_budget_mb is not None else None
        )
        if snapshot_cache is None and (shards is not None or threshold is not None):
            # sharded snapshots live in store directories (manifest + segment
            # files); an out-of-core session without an explicit cache gets a
            # private one that lives and dies with the session
            import tempfile

            self._store_tmpdir = tempfile.TemporaryDirectory(prefix="ggshards-")
            snapshot_cache = self._store_tmpdir.name
        if snapshot_cache is not None:
            self._store = SnapshotStore(
                snapshot_cache, shards=shards, shard_threshold_bytes=threshold
            )
        else:
            self._store = None
        # resolve eagerly: an unknown or unavailable backend name fails here,
        # with a UsageError message, not at the first kernel call
        self._backend = get_backend(backend)
        self._parallelism = parallelism
        self._compile_plans = compile_plans
        self._handles: dict[Any, GraphHandle] = {}
        self._wrapped: dict[tuple[int, str | None], GraphHandle] = {}
        # guards the handle memos against concurrent service request threads
        self._memo_lock = threading.Lock()
        if warm_pool:
            from repro.session.scheduler import SharedPoolManager

            self._pool_manager: "SharedPoolManager | None" = SharedPoolManager()
        else:
            self._pool_manager = None

    # ------------------------------------------------------------------ #
    @property
    def database(self) -> "Database":
        return self._graphgen.database

    @property
    def graphgen(self) -> GraphGen:
        """The underlying extractor (for plan/explain and advanced options)."""
        return self._graphgen

    @property
    def store(self) -> SnapshotStore | None:
        """The session's snapshot store, or None when not configured."""
        return self._store

    @property
    def backend(self) -> "KernelBackend":
        """The resolved kernel backend every plan in this session executes on."""
        return self._backend

    @property
    def parallelism(self) -> int:
        return self._parallelism

    @property
    def compile_plans(self) -> bool:
        """Whether plans lower through the optimizing compiler by default
        (:mod:`repro.session.compiler`); ``plan.run(compiled=...)`` overrides
        per run."""
        return self._compile_plans

    @property
    def pool_manager(self):
        """The session's :class:`~repro.session.scheduler.SharedPoolManager`
        when constructed with ``warm_pool=True``, else None."""
        return self._pool_manager

    @property
    def out_of_core(self) -> bool:
        """Whether this session's store can shard snapshots — i.e. whether
        plans may run out-of-core (workers mapping per-shard segment files
        instead of the whole snapshot)."""
        return self._store is not None and self._store.sharded

    # ------------------------------------------------------------------ #
    def acquire_pool(
        self,
        num_items: int,
        snapshot_path: str,
        content_hash: bytes,
        backend_name: str,
        *,
        partitions: "list[tuple[int, int]] | None" = None,
        sharded: bool = False,
    ):
        """A started :class:`~repro.vertexcentric.parallel.ParallelSuperstepExecutor`
        of :class:`~repro.session.scheduler.PlanWorker` processes over
        ``snapshot_path``, plus a ``release()`` callable the plan must invoke
        when done.

        Default sessions fork a fresh pool per plan and ``release`` closes
        it — exactly the PR-5 lifecycle.  ``warm_pool=True`` sessions (the
        graph service) keep one pool alive across plans: ``release`` merely
        returns the lease, and the same worker processes (and their mmap of
        the snapshot file) serve the next plan, re-forking only when the
        snapshot's content hash, path, or the worker geometry changes.
        """
        from repro.session.scheduler import PlanWorkerFactory

        parallelism = len(partitions) if partitions is not None else self._parallelism
        if self._pool_manager is not None:
            return self._pool_manager.acquire(
                parallelism,
                num_items,
                snapshot_path,
                content_hash,
                backend_name,
                partitions=partitions,
                sharded=sharded,
            )
        from repro.vertexcentric.parallel import ParallelSuperstepExecutor

        pool = ParallelSuperstepExecutor(
            parallelism,
            num_items,
            PlanWorkerFactory(snapshot_path, backend_name, sharded=sharded),
            partitions=partitions,
        ).start()
        return pool, pool.close

    def close(self) -> None:
        """Release session-owned process resources (the warm worker pool and
        the auto-created shard store directory, if any).  Idempotent; a
        closed session can still run inline plans."""
        if self._pool_manager is not None:
            self._pool_manager.close()
        if self._store_tmpdir is not None:
            # the store directory is gone with the tempdir; dropping the store
            # keeps inline plans on a closed session working (store-less)
            self._store = None
            self._store_tmpdir.cleanup()
            self._store_tmpdir = None

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def explain(self, query: "str | GraphSpec") -> str:
        """Human-readable extraction plan plus generated SQL (no execution)."""
        return self._graphgen.explain(query)

    def graph(
        self,
        query: "str | GraphSpec",
        representation: str = "cdup",
        *,
        key: str | None = None,
        **extract_kwargs: Any,
    ) -> GraphHandle:
        """Extract the hidden graph declared by ``query`` and return its
        handle.

        Extraction is memoised per ``(query, representation, options)``:
        asking the session for the same graph twice returns the same handle,
        so the relational joins run once per session.  ``key`` overrides the
        snapshot-store cache key (callers who know more about the database's
        identity than ``database.name`` — e.g. the CLI with its dataset
        arguments — pass a fully qualified one; collisions are never unsafe,
        only wasteful, because the store rewrites on content-hash mismatch).
        """
        memo_key = (
            query if isinstance(query, str) else repr(query),
            representation,
            key,
            tuple(sorted(extract_kwargs.items())),
        )
        with self._memo_lock:
            handle = self._handles.get(memo_key)
            if handle is None:
                result = self._graphgen.extract_with_report(
                    query, representation=representation, **extract_kwargs
                )
                store_key = key or self._store_key(query, result.representation, extract_kwargs)
                handle = GraphHandle(
                    self, result.graph, result.representation, store_key, extraction=result
                )
                self._handles[memo_key] = handle
        return handle

    def wrap(self, graph: "Graph", *, key: str | None = None) -> GraphHandle:
        """Adopt an already-built :class:`~repro.graph.api.Graph` into this
        session (it gains a store-backed snapshot and ``analyze()``).

        Wrapped handles are memoised by graph identity and ``key``: wrapping
        the same live graph object twice returns the *same* handle, so
        build-count provenance and per-dataset sharing (one snapshot, one
        warm pool in the service) survive repeated ``wrap()`` calls instead
        of resetting on every fresh handle.  The memo holds the handle (and
        through it the graph) alive, so an ``id()`` is never recycled while
        its entry exists.

        Without an explicit ``key`` the store key is derived lazily from the
        representation and the first snapshot's content hash (see
        :attr:`GraphHandle.store_key`), so wrapping an equal graph in any
        session or process hits the same cached ``.csr`` file.
        """
        memo_key = (id(graph), key)
        with self._memo_lock:
            handle = self._wrapped.get(memo_key)
            if handle is None or handle.graph is not graph:
                handle = GraphHandle(self, graph, graph.representation_name, key)
                self._wrapped[memo_key] = handle
        return handle

    # ------------------------------------------------------------------ #
    def _store_key(
        self, query: "str | GraphSpec", representation: str, extract_kwargs: dict
    ) -> str:
        """Default snapshot-store key: database name + representation + a
        digest of the query text and extraction options.  Everything that
        changes the snapshot's logical content or vertex order is included;
        residual collisions (e.g. two databases sharing a name) are caught by
        the store's content-hash staleness check and cost only a rewrite."""
        text = query if isinstance(query, str) else repr(query)
        if extract_kwargs:
            text += "\0" + repr(sorted(extract_kwargs.items()))
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
        return f"{self.database.name}_{representation}_{digest}"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        store = self._store.directory if self._store is not None else None
        return (
            f"<GraphSession db={self.database.name!r} backend={self._backend.name} "
            f"parallelism={self._parallelism} store={store}>"
        )
