"""Structured results of a session analysis plan.

An :class:`~repro.session.AnalysisPlan` run produces one
:class:`AnalysisReport` holding an ordered list of per-algorithm
:class:`AnalysisResult` objects.  Every result carries its decoded values,
its wall-clock timing, the engine it ran on (direct kernel vs the superstep
executor) and a shared :class:`Provenance` record describing the execution
context: which representation the snapshot was taken from, which kernel
backend computed it, where the snapshot's arrays live (freshly built heap
arrays, an mmap of a store file, or an in-process cache hit) and how many
worker processes were used.

The report is the session layer's answer to "what did I just compute, on
what, and how long did it take" — the paper's workflow runs *many* analyses
per extracted graph, so results need to stay attributable after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class NodeProvenance:
    """One primitive DAG node's contribution to a result (plan compiler).

    The compiler lowers a plan into snapshot / derived-view / shared-sweep /
    per-algorithm nodes, deduplicated by structural key; each result then
    records, for every node in its dependency closure, whether *this* result
    triggered the computation or reused work another result (or a prior run,
    for cached snapshots) already paid for — the plan-level analogue of
    determination provenance.
    """

    #: structural key, e.g. ``"algo:pagerank(damping=0.85, ...)"``,
    #: ``"sweep[closeness+diameter:60 sources]"``, ``"und-csr"``, ``"snapshot"``
    key: str
    #: ``"snapshot"``, ``"derive"``, ``"sweep"`` or ``"algo"``
    kind: str
    #: ``"computed"`` — this result paid for the node; ``"reused"`` — the node
    #: was already available (an earlier result computed it, or the snapshot
    #: came from a cache/mmap instead of a fresh build)
    status: str
    #: wall-clock seconds the node's one execution took (0.0 for reused
    #: snapshots that were never built this run)
    seconds: float


@dataclass(frozen=True)
class Provenance:
    """Where and how an analysis executed."""

    #: representation the analyzed snapshot was taken from ("cdup", "exp", ...)
    representation: str
    #: kernel backend that executed ("python" or "numpy")
    backend: str
    #: where the snapshot's arrays came from for this run: ``"heap"`` (built
    #: from the live graph), ``"mmap"`` (zero-copy load of a store file),
    #: ``"cache-hit"`` (the graph's still-valid in-process snapshot was
    #: reused) or ``"shard-mmap"`` (out-of-core: each worker mapped only its
    #: own shard's segment file)
    snapshot_source: str
    #: worker processes used (1 = serial)
    parallelism: int
    #: shard segment files behind this execution (0 = monolithic snapshot)
    shards: int = 0
    #: pending edge-delta records merged over the base snapshot when the
    #: graph is journaled (``snapshot_source="base+delta"``); 0 otherwise
    delta_edges: int = 0


@dataclass
class AnalysisResult:
    """One algorithm's outcome inside an :class:`AnalysisReport`."""

    #: registry name of the algorithm ("pagerank", "components", ...)
    algorithm: str
    #: unique label within the report ("bfs", "bfs#2", ...)
    label: str
    #: effective parameters the algorithm ran with (defaults filled in)
    params: dict[str, Any]
    #: decoded values, shaped exactly like the matching free function's return
    values: Any
    #: wall-clock seconds spent executing this algorithm (snapshot excluded;
    #: worker-measured for pool-dispatched serial kernels, which overlap)
    seconds: float
    #: ``"kernel"`` (serial backend kernel), ``"superstep"`` (parallel
    #: vertex-centric executor), ``"chunks"`` (chunk-parallel direct kernel
    #: merged from per-partition partials) or ``"incremental"`` (a dynamic
    #: maintainer repaired the previous result over the delta journal — no
    #: kernel ran)
    engine: str
    provenance: Provenance
    #: human-readable execution notes (e.g. a serial fallback explanation)
    notes: tuple[str, ...] = ()
    #: how the plan scheduler dispatched this request: ``"inline"`` (master
    #: process) or ``"pool"`` (the plan's shared worker pool — superstep and
    #: chunk engines always, serial kernels when dispatched concurrently)
    scheduled: str = "inline"
    #: per-node provenance over this result's dependency closure, in
    #: execution order (snapshot, derived views, shared sweep, the algorithm
    #: node itself).  Empty for uncompiled runs.
    nodes: tuple[NodeProvenance, ...] = ()

    @property
    def reused(self) -> bool:
        """True when this result's own algorithm node was computed by an
        earlier, structurally identical request in the same plan (a duplicate
        request: same algorithm, same effective parameters)."""
        return any(
            node.kind == "algo" and node.status == "reused" for node in self.nodes
        )


@dataclass
class AnalysisReport:
    """Ordered, addressable collection of :class:`AnalysisResult` objects."""

    results: list[AnalysisResult] = field(default_factory=list)
    #: plan-level provenance (the shared snapshot + session configuration)
    provenance: Provenance | None = None
    #: wall-clock seconds for the whole run, snapshot acquisition included
    total_seconds: float = 0.0
    #: CSR snapshot builds/loads this run performed (0 = pure cache hit)
    snapshot_builds: int = 0
    #: worker pools forked during this run — the plan scheduler's contract is
    #: at most 1 per plan, shared by every pool-dispatched request.  Measured
    #: as a delta of *thread-local* instrumentation so hidden per-request
    #: forks anywhere in the stack are still caught, while plans running
    #: concurrently in one process (the graph service) each see only their
    #: own counts
    pool_starts: int = 0
    #: snapshot files written during this run (store writes and the
    #: store-less tempfile alike) — at most 1 per plan; thread-local delta,
    #: same scoping as :attr:`pool_starts`
    snapshot_writes: int = 0
    #: DAG nodes the compiled run executed (0 for uncompiled runs)
    nodes_computed: int = 0
    #: reuse events: closure entries that resolved to an already-available
    #: node (CSE hits, duplicate requests, cached snapshots)
    nodes_reused: int = 0
    #: service-level result-cache / admission counters for reports assembled
    #: by :mod:`repro.service` (e.g. ``{"hits": 2, "misses": 1,
    #: "queue_depth": 0}``); None for reports produced by a plain
    #: ``AnalysisPlan.run()``
    cache: dict[str, int] | None = None
    #: delta-journal counters for journaled graphs (e.g. ``{"pending": 3,
    #: "total": 17, "compactions": 1}``); None when the analyzed graph has no
    #: journal
    journal: dict[str, int] | None = None
    #: per-worker snapshot footprints for out-of-core runs, in partition
    #: order: ``{"lo", "hi", "mapped_bytes", "peak_rss_bytes"}`` dicts (see
    #: :meth:`repro.session.scheduler.PlanWorker.memory_stats`).  Empty when
    #: no sharded pool ran — this is how "no worker mapped more than its
    #: shard" is asserted rather than eyeballed
    worker_memory: list[dict[str, int]] = field(default_factory=list)

    def __iter__(self) -> Iterator[AnalysisResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __contains__(self, key: str | int) -> bool:
        # __getitem__ raises KeyError for unknown labels but IndexError for
        # out-of-range int positions (including negative ones); membership
        # must swallow both — ``5 in report`` is a question, not a mistake
        try:
            self[key]
        except (KeyError, IndexError):
            return False
        return True

    def __getitem__(self, key: str | int) -> AnalysisResult:
        """Address a result by position, exact label, or algorithm name
        (first match, in plan order)."""
        if isinstance(key, int):
            return self.results[key]
        for result in self.results:
            if result.label == key:
                return result
        for result in self.results:
            if result.algorithm == key:
                return result
        raise KeyError(
            f"no analysis result {key!r} in this report (labels: {self.labels()})"
        )

    def labels(self) -> list[str]:
        return [result.label for result in self.results]

    def nodes(self) -> list[NodeProvenance]:
        """Every distinct DAG node touched by this (compiled) run, in first
        appearance order, with the status of its first consumer — i.e. shared
        nodes show up once, as ``computed`` (or ``reused`` for snapshots that
        came off a cache)."""
        seen: dict[str, NodeProvenance] = {}
        for result in self.results:
            for node in result.nodes:
                seen.setdefault(node.key, node)
        return list(seen.values())

    def summary(self) -> str:
        """Multi-line human-readable digest of the run."""
        lines = []
        if self.provenance is not None:
            p = self.provenance
            sharding = f" shards={p.shards}" if p.shards else ""
            deltas = f" delta_edges={p.delta_edges}" if p.delta_edges else ""
            lines.append(
                f"analysis of {p.representation} snapshot ({p.snapshot_source}) "
                f"on backend={p.backend} parallelism={p.parallelism}{sharding}{deltas}: "
                f"{len(self.results)} algorithm(s), "
                f"{self.snapshot_builds} snapshot build(s), "
                f"{self.total_seconds:.3f}s total"
            )
        if self.cache is not None:
            lines.append(
                "  result cache: "
                + " ".join(f"{key}={value}" for key, value in sorted(self.cache.items()))
            )
        if self.journal is not None:
            lines.append(
                "  delta journal: "
                + " ".join(
                    f"{key}={value}" for key, value in sorted(self.journal.items())
                )
            )
        for result in self.results:
            lines.append(
                f"  {result.label}: engine={result.engine} "
                f"scheduled={result.scheduled} {result.seconds:.3f}s"
            )
            if result.nodes:
                lines.append(
                    "    nodes: "
                    + " ".join(
                        f"{node.key}={node.status}({node.seconds:.3f}s)"
                        for node in result.nodes
                    )
                )
        return "\n".join(lines)
