"""Multi-algorithm analysis plans over one shared snapshot.

An :class:`AnalysisPlan` is a chainable builder obtained from
:meth:`repro.session.GraphHandle.analyze`::

    report = (handle.analyze()
              .pagerank(damping=0.9)
              .components()
              .bfs(source=1)
              .triangles()
              .run())

``run()`` acquires the handle's CSR snapshot **once**, resolves the
session's kernel backend **once**, and executes every requested algorithm
against that shared physical core through the kernel-level entry points of
:mod:`repro.algorithms` — so a batch of heterogeneous analyses pays for
extraction, snapshot encoding and backend scratch a single time.  Results
come back as an :class:`~repro.session.AnalysisReport`.

Execution routing mirrors the CLI's rules: with session ``parallelism > 1``,
algorithms that have a superstep program (degree, pagerank, components, bfs)
run on the process-parallel vertex-centric executor over the store-backed
snapshot file; pagerank/components/bfs require a symmetric snapshot and fall
back to the serial kernel (with a note on the result) on directed graphs,
because the superstep programs gather from out-neighbors.  Requests whose
parameters the superstep programs cannot honor — bfs with a ``max_depth``
limit, pagerank with non-default convergence settings — likewise fall back
to the serial kernel with a note, so parameters in a result are always the
parameters that actually ran.  Degree,
components and bfs superstep results are canonicalised to match the serial
kernels exactly; superstep pagerank runs 20 fixed iterations and its note
says so.  With ``parallelism == 1`` every result is the exact value the
matching free function returns — bit-identical, including float kernels,
since both sides call the same backend kernel on the same snapshot.

The registry :data:`PLAN_ALGORITHMS` is the single source of truth for what
a plan (and the CLI's repeatable ``--algo`` flag) can request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.algorithms.bfs import distances_kernel
from repro.algorithms.centrality import betweenness_kernel, closeness_kernel
from repro.algorithms.connected_components import components_kernel
from repro.algorithms.degree import degrees_kernel
from repro.algorithms.kcore import core_numbers_kernel
from repro.algorithms.label_propagation import label_propagation_kernel
from repro.algorithms.pagerank import pagerank_kernel
from repro.algorithms.shortest_paths import diameter_kernel
from repro.algorithms.similarity import SCORE_NAMES, link_predictions_kernel
from repro.algorithms.triangles import average_clustering_kernel, count_triangles_kernel
from repro.exceptions import RepresentationError, UsageError
from repro.session.report import AnalysisReport, AnalysisResult, Provenance
from repro.vertexcentric.programs import (
    run_connected_components,
    run_degree,
    run_pagerank,
    run_sssp,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.api import Graph, VertexId
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph
    from repro.session.session import GraphHandle

#: sentinel marking a parameter that must be supplied by the caller
REQUIRED = object()

#: superstep pagerank runs a fixed iteration count (the engine has no
#: convergence test); the note on its results quotes this number
SUPERSTEP_PAGERANK_ITERATIONS = 20


def _encode_source(csr: "CSRGraph", source: "VertexId") -> int:
    if not csr.has_vertex(source):
        raise RepresentationError(f"BFS source {source!r} is not in the graph")
    return csr.index(source)


def canonical_component_labels(labels: dict) -> dict:
    """Relabel a component partition with 0-based integers in
    first-appearance order.  ``run_connected_components`` returns values in
    snapshot vertex order, so on symmetric graphs this reproduces the serial
    kernel's numbering exactly."""
    canonical: dict[Any, int] = {}
    return {vertex: canonical.setdefault(label, len(canonical)) for vertex, label in labels.items()}


# --------------------------------------------------------------------------- #
# kernel runners: (csr, backend, params) -> decoded values, shaped exactly
# like the matching repro.algorithms free function's return value
# --------------------------------------------------------------------------- #
def _kernel_degree(csr, backend, params):
    return csr.decode(degrees_kernel(csr, backend=backend))


def _kernel_pagerank(csr, backend, params):
    return csr.decode(
        pagerank_kernel(
            csr,
            damping=params["damping"],
            max_iterations=params["max_iterations"],
            tolerance=params["tolerance"],
            backend=backend,
        )
    )


def _kernel_components(csr, backend, params):
    return csr.decode(components_kernel(csr, backend=backend))


def _kernel_bfs(csr, backend, params):
    src = _encode_source(csr, params["source"])
    distances = distances_kernel(csr, src, max_depth=params["max_depth"], backend=backend)
    ids = csr.external_ids
    return {ids[v]: d for v, d in enumerate(distances) if d >= 0}


def _kernel_kcore(csr, backend, params):
    return csr.decode(core_numbers_kernel(csr, backend=backend))


def _kernel_triangles(csr, backend, params):
    return count_triangles_kernel(csr, backend=backend)


def _kernel_clustering(csr, backend, params):
    return average_clustering_kernel(csr, backend=backend)


def _kernel_label_propagation(csr, backend, params):
    labels = label_propagation_kernel(
        csr, max_iterations=params["max_iterations"], seed=params["seed"], backend=backend
    )
    ids = csr.external_ids
    return {ids[v]: ids[label] for v, label in enumerate(labels)}


def _kernel_closeness(csr, backend, params):
    return csr.decode(closeness_kernel(csr, backend=backend))


def _kernel_betweenness(csr, backend, params):
    return csr.decode(
        betweenness_kernel(
            csr,
            normalized=params["normalized"],
            sample_size=params["sample_size"],
            seed=params["seed"],
            backend=backend,
        )
    )


def _kernel_diameter(csr, backend, params):
    return diameter_kernel(csr, samples=params["samples"], seed=params["seed"], backend=backend)


def _kernel_link_predictions(csr, backend, params):
    ids = csr.external_ids
    return [
        (ids[iu], ids[iv], value)
        for iu, iv, value in link_predictions_kernel(
            csr, k=params["k"], score=params["score"], backend=backend
        )
    ]


# --------------------------------------------------------------------------- #
# superstep runners: (graph, parallelism, snapshot_path, backend_name, params)
# -> values canonicalised to the serial kernels' shape
# --------------------------------------------------------------------------- #
def _superstep_degree(graph, parallelism, path, backend, params):
    values, _ = run_degree(graph, parallelism=parallelism, snapshot_path=path, backend=backend)
    return values


def _superstep_pagerank(graph, parallelism, path, backend, params):
    values, _ = run_pagerank(
        graph,
        iterations=SUPERSTEP_PAGERANK_ITERATIONS,
        damping=params["damping"],
        parallelism=parallelism,
        snapshot_path=path,
        backend=backend,
    )
    return values


def _pagerank_superstep_params_ok(params) -> str | None:
    """The superstep engine has fixed iterations and no convergence test, so
    only a default-convergence request may be routed to it — anything else
    must run the serial kernel to honor the caller's parameters."""
    if params["max_iterations"] == 50 and params["tolerance"] == 1.0e-9:
        return None
    return (
        "note: pagerank with custom max_iterations/tolerance runs on the "
        "serial kernel (the superstep engine has fixed iterations)"
    )


def _bfs_superstep_params_ok(params) -> str | None:
    if params["max_depth"] is None:
        return None
    return "note: bfs with a max_depth limit has no superstep program; running serial kernel"


def _superstep_components(graph, parallelism, path, backend, params):
    raw, _ = run_connected_components(
        graph, parallelism=parallelism, snapshot_path=path, backend=backend
    )
    return canonical_component_labels(raw)


def _superstep_bfs(graph, parallelism, path, backend, params):
    with_unreachable, _ = run_sssp(
        graph, params["source"], parallelism=parallelism, snapshot_path=path, backend=backend
    )
    return {v: d for v, d in with_unreachable.items() if d is not None}


# --------------------------------------------------------------------------- #
# validation helpers (raise UsageError: these are caller mistakes, reported
# as one-line messages, never tracebacks)
# --------------------------------------------------------------------------- #
def _validate_pagerank(params):
    damping = params["damping"]
    if not isinstance(damping, (int, float)) or not 0.0 < damping < 1.0:
        raise UsageError(f"pagerank: damping must be in (0, 1) (got {damping!r})")


def _validate_bfs(params):
    if params["source"] is REQUIRED or params["source"] is None:
        raise UsageError("bfs requires a source vertex (pass source=...)")


def _validate_link_predictions(params):
    if params["score"] not in SCORE_NAMES:
        raise UsageError(
            f"link_predictions: unknown score {params['score']!r}; "
            f"expected one of {', '.join(sorted(SCORE_NAMES))}"
        )


@dataclass(frozen=True)
class PlanAlgorithm:
    """Registry entry: how one algorithm name executes inside a plan."""

    name: str
    #: allowed parameter names -> default values (REQUIRED = must be given)
    defaults: dict[str, Any]
    #: serial path over the shared snapshot
    kernel: Callable[["CSRGraph", "KernelBackend", dict], Any]
    #: extra parameter validation (beyond unknown/missing checks)
    validate: Callable[[dict], None] | None = None
    #: process-parallel path, or None when no superstep program exists
    superstep: Callable[["Graph", int, str | None, str, dict], Any] | None = None
    #: superstep gathers from out-neighbors: exact only on symmetric graphs
    requires_symmetric: bool = False
    #: note attached to results whenever the superstep path is taken
    superstep_note: str | None = None
    #: params -> fallback note when the superstep program cannot honor these
    #: parameters (None = eligible); the request then runs the serial kernel
    superstep_params_ok: Callable[[dict], str | None] | None = None


PLAN_ALGORITHMS: dict[str, PlanAlgorithm] = {
    spec.name: spec
    for spec in (
        PlanAlgorithm(
            "degree",
            defaults={},
            kernel=_kernel_degree,
            superstep=_superstep_degree,
        ),
        PlanAlgorithm(
            "pagerank",
            defaults={"damping": 0.85, "max_iterations": 50, "tolerance": 1.0e-9},
            kernel=_kernel_pagerank,
            validate=_validate_pagerank,
            superstep=_superstep_pagerank,
            requires_symmetric=True,
            superstep_params_ok=_pagerank_superstep_params_ok,
            superstep_note=(
                "note: pagerank via the superstep engine "
                f"({SUPERSTEP_PAGERANK_ITERATIONS} fixed iterations); "
                "low-order digits may differ from the serial kernel"
            ),
        ),
        PlanAlgorithm(
            "components",
            defaults={},
            kernel=_kernel_components,
            superstep=_superstep_components,
            requires_symmetric=True,
        ),
        PlanAlgorithm(
            "bfs",
            defaults={"source": REQUIRED, "max_depth": None},
            kernel=_kernel_bfs,
            validate=_validate_bfs,
            superstep=_superstep_bfs,
            requires_symmetric=True,
            superstep_params_ok=_bfs_superstep_params_ok,
        ),
        PlanAlgorithm("kcore", defaults={}, kernel=_kernel_kcore),
        PlanAlgorithm("triangles", defaults={}, kernel=_kernel_triangles),
        PlanAlgorithm("clustering", defaults={}, kernel=_kernel_clustering),
        PlanAlgorithm(
            "label_propagation",
            defaults={"max_iterations": 20, "seed": 0},
            kernel=_kernel_label_propagation,
        ),
        PlanAlgorithm("closeness", defaults={}, kernel=_kernel_closeness),
        PlanAlgorithm(
            "betweenness",
            defaults={"normalized": True, "sample_size": None, "seed": 0},
            kernel=_kernel_betweenness,
        ),
        PlanAlgorithm(
            "diameter",
            defaults={"samples": 10, "seed": 0},
            kernel=_kernel_diameter,
        ),
        PlanAlgorithm(
            "link_predictions",
            defaults={"k": 10, "score": "adamic_adar"},
            kernel=_kernel_link_predictions,
            validate=_validate_link_predictions,
        ),
    )
}


class AnalysisPlan:
    """Chainable batch of algorithm requests over one shared snapshot.

    Obtained from :meth:`repro.session.GraphHandle.analyze`; every request
    method returns the plan itself, and :meth:`run` executes the whole batch.
    """

    def __init__(self, handle: "GraphHandle") -> None:
        self._handle = handle
        self._requests: list[tuple[PlanAlgorithm, dict[str, Any]]] = []

    # ------------------------------------------------------------------ #
    # request builders
    # ------------------------------------------------------------------ #
    def add(self, name: str, **params: Any) -> "AnalysisPlan":
        """Request ``name`` with keyword parameters (the generic entry the
        named builder methods and the CLI's ``--algo`` flag go through)."""
        spec = PLAN_ALGORITHMS.get(name)
        if spec is None:
            raise UsageError(
                f"unknown algorithm {name!r}; expected one of "
                + ", ".join(sorted(PLAN_ALGORITHMS))
            )
        unknown = set(params) - set(spec.defaults)
        if unknown:
            raise UsageError(
                f"{name}: unexpected argument(s) {', '.join(sorted(map(repr, unknown)))}; "
                f"accepted: {', '.join(sorted(spec.defaults)) or '(none)'}"
            )
        effective = dict(spec.defaults)
        effective.update(params)
        missing = [key for key, value in effective.items() if value is REQUIRED]
        if spec.validate is not None:
            spec.validate(effective)
        if missing:
            raise UsageError(
                f"{name}: missing required argument(s) {', '.join(sorted(missing))}"
            )
        self._requests.append((spec, effective))
        return self

    def degree(self) -> "AnalysisPlan":
        return self.add("degree")

    def pagerank(
        self,
        damping: float = 0.85,
        max_iterations: int = 50,
        tolerance: float = 1.0e-9,
    ) -> "AnalysisPlan":
        return self.add(
            "pagerank", damping=damping, max_iterations=max_iterations, tolerance=tolerance
        )

    def components(self) -> "AnalysisPlan":
        return self.add("components")

    def bfs(self, source: "VertexId" = REQUIRED, max_depth: int | None = None) -> "AnalysisPlan":
        return self.add("bfs", source=source, max_depth=max_depth)

    def kcore(self) -> "AnalysisPlan":
        return self.add("kcore")

    def triangles(self) -> "AnalysisPlan":
        return self.add("triangles")

    def clustering(self) -> "AnalysisPlan":
        return self.add("clustering")

    def label_propagation(self, max_iterations: int = 20, seed: int = 0) -> "AnalysisPlan":
        return self.add("label_propagation", max_iterations=max_iterations, seed=seed)

    def closeness(self) -> "AnalysisPlan":
        return self.add("closeness")

    def betweenness(
        self, normalized: bool = True, sample_size: int | None = None, seed: int = 0
    ) -> "AnalysisPlan":
        return self.add("betweenness", normalized=normalized, sample_size=sample_size, seed=seed)

    def diameter(self, samples: int = 10, seed: int = 0) -> "AnalysisPlan":
        return self.add("diameter", samples=samples, seed=seed)

    def link_predictions(self, k: int = 10, score: str = "adamic_adar") -> "AnalysisPlan":
        return self.add("link_predictions", k=k, score=score)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._requests)

    def requests(self) -> list[tuple[str, dict[str, Any]]]:
        """The queued ``(algorithm, effective params)`` pairs, in order."""
        return [(spec.name, dict(params)) for spec, params in self._requests]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self) -> AnalysisReport:
        """Execute every request over one shared snapshot and backend."""
        if not self._requests:
            raise UsageError(
                "analysis plan is empty: chain at least one algorithm "
                "request (e.g. .pagerank()) before run()"
            )
        handle = self._handle
        session = handle.session
        backend = session.backend
        parallelism = session.parallelism

        started = time.perf_counter()
        builds_before = handle.builds
        csr = handle.snapshot()
        snapshot_source = handle.snapshot_source

        # superstep routing is decided once for the whole batch, before any
        # execution: symmetry is a property of the shared snapshot (checked
        # lazily, only when a symmetric-requiring program survives the
        # parameter check), and the snapshot file parallel workers mmap is
        # persisted only when at least one request actually takes the
        # superstep path
        symmetric: bool | None = None
        routed: list[tuple[bool, list[str]]] = []
        for spec, params in self._requests:
            notes: list[str] = []
            use_superstep = False
            if parallelism > 1:
                param_note = (
                    spec.superstep_params_ok(params)
                    if spec.superstep is not None and spec.superstep_params_ok is not None
                    else None
                )
                if spec.superstep is None:
                    notes.append(
                        f"note: {spec.name} has no superstep program; running serial kernel"
                    )
                elif param_note is not None:
                    notes.append(param_note)
                else:
                    if spec.requires_symmetric and symmetric is None:
                        symmetric = csr.is_symmetric()
                    if spec.requires_symmetric and not symmetric:
                        notes.append(
                            f"note: the {spec.name} superstep program requires a "
                            "symmetric graph; running serial kernel"
                        )
                    else:
                        use_superstep = True
                        if spec.superstep_note:
                            notes.append(spec.superstep_note)
            routed.append((use_superstep, notes))

        snapshot_path: str | None = None
        if any(use_superstep for use_superstep, _ in routed):
            snapshot_path = handle.persist()

        results: list[AnalysisResult] = []
        seen_labels: dict[str, int] = {}
        for (spec, params), (use_superstep, notes) in zip(self._requests, routed):
            tick = time.perf_counter()
            if use_superstep:
                values = spec.superstep(
                    handle.graph, parallelism, snapshot_path, backend.name, params
                )
            else:
                values = spec.kernel(csr, backend, params)
            seconds = time.perf_counter() - tick

            count = seen_labels.get(spec.name, 0) + 1
            seen_labels[spec.name] = count
            label = spec.name if count == 1 else f"{spec.name}#{count}"
            results.append(
                AnalysisResult(
                    algorithm=spec.name,
                    label=label,
                    params={k: v for k, v in params.items()},
                    values=values,
                    seconds=seconds,
                    engine="superstep" if use_superstep else "kernel",
                    provenance=Provenance(
                        representation=handle.representation,
                        backend=backend.name,
                        snapshot_source=snapshot_source,
                        parallelism=parallelism if use_superstep else 1,
                    ),
                    notes=tuple(notes),
                )
            )

        return AnalysisReport(
            results=results,
            provenance=Provenance(
                representation=handle.representation,
                backend=backend.name,
                snapshot_source=snapshot_source,
                parallelism=parallelism,
            ),
            total_seconds=time.perf_counter() - started,
            snapshot_builds=handle.builds - builds_before,
        )
