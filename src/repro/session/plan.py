"""Multi-algorithm analysis plans over one shared snapshot.

An :class:`AnalysisPlan` is a chainable builder obtained from
:meth:`repro.session.GraphHandle.analyze`::

    report = (handle.analyze()
              .pagerank(damping=0.9)
              .components()
              .bfs(source=1)
              .triangles()
              .run())

``run()`` acquires the handle's CSR snapshot **once**, resolves the
session's kernel backend **once**, and executes every requested algorithm
against that shared physical core through the kernel-level entry points of
:mod:`repro.algorithms` — so a batch of heterogeneous analyses pays for
extraction, snapshot encoding and backend scratch a single time.  Results
come back as an :class:`~repro.session.AnalysisReport`.

With session ``parallelism > 1``, ``run()`` is a **plan-level scheduler**:
the whole batch executes over (at most) one worker pool and one persisted
snapshot file.  Algorithms that have a superstep program (degree, pagerank,
components, bfs) install it on the pool's reused workers — one fork per
plan, not per request; pagerank/components/bfs require a symmetric snapshot
and fall back to the serial kernel (with a note on the result) on directed
graphs, because the superstep programs gather from out-neighbors, and
requests whose parameters the superstep programs cannot honor — bfs with a
``max_depth`` limit, pagerank with non-default convergence settings —
likewise fall back with a note, so parameters in a result are always the
parameters that actually ran.  Embarrassingly parallel direct kernels
(triangles, closeness, sampled betweenness, diameter) run **chunk-parallel**
across the same pool: each worker runs the backend kernel over its share of
the shared mmap'd snapshot and the master merges partials in partition
order.  Remaining serial-kernel requests are dispatched *concurrently*
across the worker budget (or inline when nothing else needs the pool).
Degree, components and bfs superstep results are canonicalised to match the
serial kernels exactly; superstep pagerank runs 20 fixed iterations and its
note says so; chunk-parallel and task-dispatched results are bit-identical
to the serial kernels (including float kernels) and carry no note.  With
``parallelism == 1`` every result is the exact value the matching free
function returns — bit-identical, including float kernels, since both sides
call the same backend kernel on the same snapshot.  Per-result
``scheduled``/engine fields and the report's ``pool_starts`` /
``snapshot_writes`` counters record how the batch actually executed.

The registry :data:`PLAN_ALGORITHMS` is the single source of truth for what
a plan (and the CLI's repeatable ``--algo`` flag) can request.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.algorithms.bfs import distances_kernel
from repro.algorithms.centrality import (
    apply_betweenness_scale,
    betweenness_kernel,
    betweenness_sources,
    closeness_kernel,
)
from repro.algorithms.connected_components import components_kernel
from repro.algorithms.degree import degrees_kernel
from repro.algorithms.kcore import core_numbers_kernel
from repro.algorithms.label_propagation import label_propagation_kernel
from repro.algorithms.pagerank import pagerank_kernel
from repro.algorithms.shortest_paths import diameter_kernel, diameter_sample_indexes
from repro.algorithms.similarity import SCORE_NAMES, link_predictions_kernel
from repro.algorithms.triangles import average_clustering_kernel, count_triangles_kernel
from repro.exceptions import RepresentationError, UsageError
from repro.graph import snapshot_store
from repro.session.report import AnalysisReport, AnalysisResult, Provenance
from repro.vertexcentric.parallel import partition_range, pool_starts_in_thread
from repro.vertexcentric.programs import (
    run_connected_components,
    run_degree,
    run_pagerank,
    run_sssp,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.api import Graph, VertexId
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph
    from repro.session.session import GraphHandle

#: sentinel marking a parameter that must be supplied by the caller
REQUIRED = object()

#: superstep pagerank runs a fixed iteration count (the engine has no
#: convergence test); the note on its results quotes this number
SUPERSTEP_PAGERANK_ITERATIONS = 20


def _encode_source(csr: "CSRGraph", source: "VertexId") -> int:
    if not csr.has_vertex(source):
        raise RepresentationError(f"BFS source {source!r} is not in the graph")
    return csr.index(source)


def canonical_component_labels(labels: dict) -> dict:
    """Relabel a component partition with 0-based integers in
    first-appearance order.  ``run_connected_components`` returns values in
    snapshot vertex order, so on symmetric graphs this reproduces the serial
    kernel's numbering exactly."""
    canonical: dict[Any, int] = {}
    return {vertex: canonical.setdefault(label, len(canonical)) for vertex, label in labels.items()}


# --------------------------------------------------------------------------- #
# kernel runners: (csr, backend, params) -> decoded values, shaped exactly
# like the matching repro.algorithms free function's return value
# --------------------------------------------------------------------------- #
def _kernel_degree(csr, backend, params):
    return csr.decode(degrees_kernel(csr, backend=backend))


def _kernel_pagerank(csr, backend, params):
    return csr.decode(
        pagerank_kernel(
            csr,
            damping=params["damping"],
            max_iterations=params["max_iterations"],
            tolerance=params["tolerance"],
            backend=backend,
        )
    )


def _kernel_components(csr, backend, params):
    return csr.decode(components_kernel(csr, backend=backend))


def _kernel_bfs(csr, backend, params):
    src = _encode_source(csr, params["source"])
    distances = distances_kernel(csr, src, max_depth=params["max_depth"], backend=backend)
    ids = csr.external_ids
    return {ids[v]: d for v, d in enumerate(distances) if d >= 0}


def _kernel_kcore(csr, backend, params):
    return csr.decode(core_numbers_kernel(csr, backend=backend))


def _kernel_triangles(csr, backend, params):
    return count_triangles_kernel(csr, backend=backend)


def _kernel_clustering(csr, backend, params):
    return average_clustering_kernel(csr, backend=backend)


def _kernel_label_propagation(csr, backend, params):
    labels = label_propagation_kernel(
        csr, max_iterations=params["max_iterations"], seed=params["seed"], backend=backend
    )
    ids = csr.external_ids
    return {ids[v]: ids[label] for v, label in enumerate(labels)}


def _kernel_closeness(csr, backend, params):
    return csr.decode(closeness_kernel(csr, backend=backend))


def _kernel_betweenness(csr, backend, params):
    return csr.decode(
        betweenness_kernel(
            csr,
            normalized=params["normalized"],
            sample_size=params["sample_size"],
            seed=params["seed"],
            backend=backend,
        )
    )


def _kernel_diameter(csr, backend, params):
    return diameter_kernel(csr, samples=params["samples"], seed=params["seed"], backend=backend)


def _kernel_link_predictions(csr, backend, params):
    ids = csr.external_ids
    return [
        (ids[iu], ids[iv], value)
        for iu, iv, value in link_predictions_kernel(
            csr, k=params["k"], score=params["score"], backend=backend
        )
    ]


# --------------------------------------------------------------------------- #
# superstep runners:
# (graph, parallelism, snapshot_path, backend_name, params, pool)
# -> values canonicalised to the serial kernels' shape.  ``pool`` is the
# plan's shared worker pool; the coordinator installs the program on it
# instead of forking processes of its own.
# --------------------------------------------------------------------------- #
def _superstep_degree(graph, parallelism, path, backend, params, pool=None):
    values, _ = run_degree(
        graph, parallelism=parallelism, snapshot_path=path, backend=backend, pool=pool
    )
    return values


def _superstep_pagerank(graph, parallelism, path, backend, params, pool=None):
    values, _ = run_pagerank(
        graph,
        iterations=SUPERSTEP_PAGERANK_ITERATIONS,
        damping=params["damping"],
        parallelism=parallelism,
        snapshot_path=path,
        backend=backend,
        pool=pool,
    )
    return values


def _pagerank_superstep_params_ok(params) -> str | None:
    """The superstep engine has fixed iterations and no convergence test, so
    only a default-convergence request may be routed to it — anything else
    must run the serial kernel to honor the caller's parameters."""
    if params["max_iterations"] == 50 and params["tolerance"] == 1.0e-9:
        return None
    return (
        "note: pagerank with custom max_iterations/tolerance runs on the "
        "serial kernel (the superstep engine has fixed iterations)"
    )


def _bfs_superstep_params_ok(params) -> str | None:
    if params["max_depth"] is None:
        return None
    return "note: bfs with a max_depth limit has no superstep program; running serial kernel"


def _superstep_components(graph, parallelism, path, backend, params, pool=None):
    raw, _ = run_connected_components(
        graph, parallelism=parallelism, snapshot_path=path, backend=backend, pool=pool
    )
    return canonical_component_labels(raw)


def _superstep_bfs(graph, parallelism, path, backend, params, pool=None):
    with_unreachable, _ = run_sssp(
        graph,
        params["source"],
        parallelism=parallelism,
        snapshot_path=path,
        backend=backend,
        pool=pool,
    )
    return {v: d for v, d in with_unreachable.items() if d is not None}


# --------------------------------------------------------------------------- #
# chunk runners (master half): (csr, backend, params, pool) -> decoded values.
# Each splits the work along the pool's fixed partitions (vertex ranges for
# triangles/closeness, contiguous slices of the seeded source list for
# betweenness/diameter), runs the worker half from
# repro.session.scheduler.CHUNK_RUNNERS over the shared mmap'd snapshot, and
# merges partials in partition order — integer merges are exact, float merges
# replay the serial kernels' flat left-to-right accumulation, so results are
# bit-identical to the serial path.
# --------------------------------------------------------------------------- #
def _chunked_triangles(csr, backend, params, pool):
    return sum(pool.call("run_chunk", [("triangles", bounds) for bounds in pool.partitions]))


def _chunked_closeness(csr, backend, params, pool):
    partials = pool.call("run_chunk", [("closeness", bounds) for bounds in pool.partitions])
    return csr.decode([value for partial in partials for value in partial])


def _chunked_betweenness(csr, backend, params, pool):
    n = csr.n
    sources, scale_sources = betweenness_sources(csr, params["sample_size"], params["seed"])
    slices = [sources[lo:hi] for lo, hi in partition_range(len(sources), len(pool.partitions))]
    partials = pool.call("run_chunk", [("betweenness", chunk) for chunk in slices])
    totals = [0.0] * n
    for partial in partials:  # partition order == global source order
        for delta in partial:
            # same per-element left-to-right addition sequence as the serial
            # kernels' accumulation, so the merge stays bit-identical
            totals = [total + value for total, value in zip(totals, delta)]
    return csr.decode(apply_betweenness_scale(totals, n, params["normalized"], scale_sources))


def _betweenness_chunk_ok(params, csr) -> bool:
    # per-source contribution shipping is the price of bit-identity; it only
    # pays (and only bounds traffic) for genuinely sampled runs — anything
    # touching all n sources (unsampled, or sample_size >= n) stays on the
    # serial kernel
    sample_size = params["sample_size"]
    return sample_size is not None and 2 < csr.n and sample_size < csr.n


def _chunked_diameter(csr, backend, params, pool):
    sources = diameter_sample_indexes(csr, params["samples"], params["seed"])
    if not sources:
        return diameter_kernel(csr, samples=params["samples"], seed=params["seed"], backend=backend)
    slices = [sources[lo:hi] for lo, hi in partition_range(len(sources), len(pool.partitions))]
    return max(pool.call("run_chunk", [("diameter", chunk) for chunk in slices]), default=0)


# --------------------------------------------------------------------------- #
# validation helpers (raise UsageError: these are caller mistakes, reported
# as one-line messages, never tracebacks)
# --------------------------------------------------------------------------- #
def _validate_pagerank(params):
    damping = params["damping"]
    if not isinstance(damping, (int, float)) or not 0.0 < damping < 1.0:
        raise UsageError(f"pagerank: damping must be in (0, 1) (got {damping!r})")


def _validate_bfs(params):
    # a still-REQUIRED source is caught by add()'s missing-argument check
    # before any validator runs; only an explicit None reaches this
    if params["source"] is None:
        raise UsageError("bfs requires a source vertex (pass source=...)")


def _is_positive_int(value) -> bool:
    # bool is an int subclass; reject it explicitly (True would silently
    # mean "1 sample")
    return isinstance(value, int) and not isinstance(value, bool) and value >= 1


def _validate_betweenness(params):
    sample_size = params["sample_size"]
    if sample_size is not None and not _is_positive_int(sample_size):
        raise UsageError(
            f"betweenness: sample_size must be a positive integer or None "
            f"(got {sample_size!r})"
        )


def _validate_diameter(params):
    samples = params["samples"]
    if not _is_positive_int(samples):
        raise UsageError(f"diameter: samples must be a positive integer (got {samples!r})")


def _validate_link_predictions(params):
    if params["score"] not in SCORE_NAMES:
        raise UsageError(
            f"link_predictions: unknown score {params['score']!r}; "
            f"expected one of {', '.join(sorted(SCORE_NAMES))}"
        )


@dataclass(frozen=True)
class PlanAlgorithm:
    """Registry entry: how one algorithm name executes inside a plan."""

    name: str
    #: allowed parameter names -> default values (REQUIRED = must be given)
    defaults: dict[str, Any]
    #: serial path over the shared snapshot
    kernel: Callable[["CSRGraph", "KernelBackend", dict], Any]
    #: extra parameter validation (beyond unknown/missing checks)
    validate: Callable[[dict], None] | None = None
    #: process-parallel path, or None when no superstep program exists
    superstep: Callable[["Graph", int, str | None, str, dict], Any] | None = None
    #: superstep gathers from out-neighbors: exact only on symmetric graphs
    requires_symmetric: bool = False
    #: note attached to results whenever the superstep path is taken
    superstep_note: str | None = None
    #: params -> fallback note when the superstep program cannot honor these
    #: parameters (None = eligible); the request then runs the serial kernel
    superstep_params_ok: Callable[[dict], str | None] | None = None
    #: chunk-parallel path over the plan's shared worker pool, or None when
    #: the algorithm has no profitable/deterministic partitioning
    chunk: Callable[["CSRGraph", "KernelBackend", dict, Any], Any] | None = None
    #: (params, csr) -> whether this request may take the chunk path
    #: (None = always); ineligible requests run the serial kernel
    chunk_ok: Callable[[dict, "CSRGraph"], bool] | None = None
    #: name of this algorithm's dynamic maintainer in
    #: :data:`repro.incremental.MAINTAINERS`, or None when no incremental
    #: path exists.  When the handle's graph is journaled and a previous
    #: result plus a replayable journal window are available, routing serves
    #: the request incrementally instead of executing any kernel.
    maintainer: str | None = None


PLAN_ALGORITHMS: dict[str, PlanAlgorithm] = {
    spec.name: spec
    for spec in (
        PlanAlgorithm(
            "degree",
            defaults={},
            kernel=_kernel_degree,
            superstep=_superstep_degree,
        ),
        PlanAlgorithm(
            "pagerank",
            defaults={"damping": 0.85, "max_iterations": 50, "tolerance": 1.0e-9},
            kernel=_kernel_pagerank,
            validate=_validate_pagerank,
            superstep=_superstep_pagerank,
            requires_symmetric=True,
            superstep_params_ok=_pagerank_superstep_params_ok,
            superstep_note=(
                "note: pagerank via the superstep engine "
                f"({SUPERSTEP_PAGERANK_ITERATIONS} fixed iterations); "
                "low-order digits may differ from the serial kernel"
            ),
            maintainer="pagerank",
        ),
        PlanAlgorithm(
            "components",
            defaults={},
            kernel=_kernel_components,
            superstep=_superstep_components,
            requires_symmetric=True,
            maintainer="components",
        ),
        PlanAlgorithm(
            "bfs",
            defaults={"source": REQUIRED, "max_depth": None},
            kernel=_kernel_bfs,
            validate=_validate_bfs,
            superstep=_superstep_bfs,
            requires_symmetric=True,
            superstep_params_ok=_bfs_superstep_params_ok,
            maintainer="bfs",
        ),
        PlanAlgorithm("kcore", defaults={}, kernel=_kernel_kcore),
        PlanAlgorithm(
            "triangles", defaults={}, kernel=_kernel_triangles, chunk=_chunked_triangles
        ),
        PlanAlgorithm("clustering", defaults={}, kernel=_kernel_clustering),
        PlanAlgorithm(
            "label_propagation",
            defaults={"max_iterations": 20, "seed": 0},
            kernel=_kernel_label_propagation,
        ),
        PlanAlgorithm(
            "closeness", defaults={}, kernel=_kernel_closeness, chunk=_chunked_closeness
        ),
        PlanAlgorithm(
            "betweenness",
            defaults={"normalized": True, "sample_size": None, "seed": 0},
            kernel=_kernel_betweenness,
            validate=_validate_betweenness,
            chunk=_chunked_betweenness,
            chunk_ok=_betweenness_chunk_ok,
        ),
        PlanAlgorithm(
            "diameter",
            defaults={"samples": 10, "seed": 0},
            kernel=_kernel_diameter,
            validate=_validate_diameter,
            chunk=_chunked_diameter,
        ),
        PlanAlgorithm(
            "link_predictions",
            defaults={"k": 10, "score": "adamic_adar"},
            kernel=_kernel_link_predictions,
            validate=_validate_link_predictions,
        ),
    )
}


class AnalysisPlan:
    """Chainable batch of algorithm requests over one shared snapshot.

    Obtained from :meth:`repro.session.GraphHandle.analyze`; every request
    method returns the plan itself, and :meth:`run` executes the whole batch.
    """

    def __init__(self, handle: "GraphHandle") -> None:
        self._handle = handle
        self._requests: list[tuple[PlanAlgorithm, dict[str, Any]]] = []

    # ------------------------------------------------------------------ #
    # request builders
    # ------------------------------------------------------------------ #
    def add(self, name: str, **params: Any) -> "AnalysisPlan":
        """Request ``name`` with keyword parameters (the generic entry the
        named builder methods and the CLI's ``--algo`` flag go through)."""
        spec = PLAN_ALGORITHMS.get(name)
        if spec is None:
            raise UsageError(
                f"unknown algorithm {name!r}; expected one of "
                + ", ".join(sorted(PLAN_ALGORITHMS))
            )
        unknown = set(params) - set(spec.defaults)
        if unknown:
            raise UsageError(
                f"{name}: unexpected argument(s) {', '.join(sorted(map(repr, unknown)))}; "
                f"accepted: {', '.join(sorted(spec.defaults)) or '(none)'}"
            )
        effective = dict(spec.defaults)
        effective.update(params)
        # missing-argument check strictly before any validator: validators
        # may inspect required params and must never see the REQUIRED
        # sentinel (a sentinel-typed crash instead of a UsageError)
        missing = [key for key, value in effective.items() if value is REQUIRED]
        if missing:
            raise UsageError(
                f"{name}: missing required argument(s) {', '.join(sorted(missing))}"
            )
        if spec.validate is not None:
            spec.validate(effective)
        self._requests.append((spec, effective))
        return self

    def degree(self) -> "AnalysisPlan":
        return self.add("degree")

    def pagerank(
        self,
        damping: float = 0.85,
        max_iterations: int = 50,
        tolerance: float = 1.0e-9,
    ) -> "AnalysisPlan":
        return self.add(
            "pagerank", damping=damping, max_iterations=max_iterations, tolerance=tolerance
        )

    def components(self) -> "AnalysisPlan":
        return self.add("components")

    def bfs(self, source: "VertexId" = REQUIRED, max_depth: int | None = None) -> "AnalysisPlan":
        return self.add("bfs", source=source, max_depth=max_depth)

    def kcore(self) -> "AnalysisPlan":
        return self.add("kcore")

    def triangles(self) -> "AnalysisPlan":
        return self.add("triangles")

    def clustering(self) -> "AnalysisPlan":
        return self.add("clustering")

    def label_propagation(self, max_iterations: int = 20, seed: int = 0) -> "AnalysisPlan":
        return self.add("label_propagation", max_iterations=max_iterations, seed=seed)

    def closeness(self) -> "AnalysisPlan":
        return self.add("closeness")

    def betweenness(
        self, normalized: bool = True, sample_size: int | None = None, seed: int = 0
    ) -> "AnalysisPlan":
        return self.add("betweenness", normalized=normalized, sample_size=sample_size, seed=seed)

    def diameter(self, samples: int = 10, seed: int = 0) -> "AnalysisPlan":
        return self.add("diameter", samples=samples, seed=seed)

    def link_predictions(self, k: int = 10, score: str = "adamic_adar") -> "AnalysisPlan":
        return self.add("link_predictions", k=k, score=score)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._requests)

    def requests(self) -> list[tuple[str, dict[str, Any]]]:
        """The queued ``(algorithm, effective params)`` pairs, in order."""
        return [(spec.name, dict(params)) for spec, params in self._requests]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _route(
        self, csr, parallelism: int, *, oc: bool = False
    ) -> list[tuple[str, list[str]]]:
        """Decide each request's execution mode once for the whole batch.

        Modes: ``"superstep"`` (process-parallel vertex-centric program over
        the shared pool), ``"chunks"`` (chunk-parallel direct kernel over the
        shared pool), ``"task"`` (whole-graph serial kernel, dispatched
        concurrently to a single pool worker), ``"inline"`` (serial kernel on
        the master — always the mode at ``parallelism == 1``).  Symmetry is a
        property of the shared snapshot, checked lazily only when a
        symmetric-requiring program survives the parameter check.

        ``oc`` (out-of-core: the session's store sharded this snapshot)
        changes the worker contract — each worker maps only its own shard, so
        only shard-local work may go to the pool.  Superstep programs qualify
        (their gathers and neighbor walks stay inside the worker's own vertex
        range; frontier deltas stream through the executor's message pipes).
        Chunk kernels and whole-graph task kernels need adjacency outside the
        worker's shard, so they run inline on the coordinator (which already
        holds the heap snapshot it built), with a note saying why.  ``oc``
        also routes superstep work to the pool at ``parallelism == 1`` — the
        pool's geometry is the shard table, not the session's worker budget.
        """
        symmetric: bool | None = None
        routed: list[tuple[str, list[str]]] = []
        for spec, params in self._requests:
            notes: list[str] = []
            mode = "inline"
            if (parallelism > 1 or oc) and csr.n > 0:
                if oc and spec.superstep is None:
                    notes.append(
                        f"note: {spec.name} needs whole-graph adjacency, which "
                        "out-of-core workers do not map; running inline on the "
                        "coordinator"
                    )
                    routed.append((mode, notes))
                    continue
                if spec.superstep is not None:
                    param_note = (
                        spec.superstep_params_ok(params)
                        if spec.superstep_params_ok is not None
                        else None
                    )
                    if param_note is not None:
                        notes.append(param_note)
                        mode = "task"
                    else:
                        if spec.requires_symmetric and symmetric is None:
                            symmetric = csr.is_symmetric()
                        if spec.requires_symmetric and not symmetric:
                            notes.append(
                                f"note: the {spec.name} superstep program requires a "
                                "symmetric graph; running serial kernel"
                            )
                            mode = "task"
                        else:
                            mode = "superstep"
                            if spec.superstep_note:
                                notes.append(spec.superstep_note)
                elif spec.chunk is not None and (
                    spec.chunk_ok is None or spec.chunk_ok(params, csr)
                ):
                    mode = "chunks"
                elif spec.chunk is not None:
                    notes.append(
                        f"note: {spec.name} with these parameters is not "
                        "chunk-parallel eligible (requires sampling a strict "
                        "subset of sources); running serial kernel"
                    )
                    mode = "task"
                else:
                    notes.append(
                        f"note: {spec.name} has no superstep program; running serial kernel"
                    )
                    mode = "task"
                if oc and mode == "task":
                    # the serial fallback needs the whole graph, which
                    # out-of-core workers do not map — run it on the
                    # coordinator instead of a pool worker
                    notes.append(
                        "note: out-of-core workers map only their own shard; "
                        "running inline on the coordinator"
                    )
                    mode = "inline"
            routed.append((mode, notes))
        return routed

    def run(self, compiled: bool | None = None) -> AnalysisReport:
        """Execute every request over one shared snapshot and backend.

        By default (session ``compile_plans=True``) the request list is
        lowered through the optimizing plan compiler
        (:mod:`repro.session.compiler`): requests are deduplicated by
        structural key, source sweeps are shared across closeness / diameter
        / sampled-betweenness / bfs, and every result carries per-node
        provenance.  Results are bit-identical to the uncompiled path.
        ``compiled=False`` forces the PR-5 per-request path below (the
        reference the compiler is tested against); ``compiled=True`` forces
        compilation regardless of the session default.

        With session ``parallelism > 1`` the whole batch is scheduled over
        (at most) **one** worker pool and **one** persisted snapshot file:
        superstep-routed requests install their programs on the same reused
        workers, chunk-parallel direct kernels split along the pool's fixed
        partitions, and remaining serial-kernel requests are dispatched
        concurrently across the worker budget.  The pool is started only when
        at least one request uses workers (a lone serial request runs inline,
        as at ``parallelism == 1``), and a store-less session writes the
        workers' snapshot file to a tempfile exactly once per plan.
        """
        if not self._requests:
            raise UsageError(
                "analysis plan is empty: chain at least one algorithm "
                "request (e.g. .pagerank()) before run()"
            )
        if compiled is None:
            compiled = getattr(self._handle.session, "compile_plans", True)
        if compiled:
            from repro.session.compiler import run_compiled

            return run_compiled(self)
        handle = self._handle
        session = handle.session
        backend = session.backend
        parallelism = session.parallelism

        started = time.perf_counter()
        builds_before = handle.builds
        # thread-local deltas: concurrent plans in one process (the graph
        # service) must each report only their own forks and writes
        pool_starts_before = pool_starts_in_thread()
        writes_before = snapshot_store.saves_in_thread()
        csr = handle.snapshot()
        snapshot_source = handle.snapshot_source
        delta_edges = handle._delta_edges
        snapshot_notes = handle.consume_snapshot_notes()

        # out-of-core: the session store's sharding policy decides once per
        # plan; a non-None plan is the exact shard geometry — reused as the
        # worker partitions, so shard files and partitions align one-to-one
        oc_ranges = None
        if session.store is not None and session.store.sharded:
            oc_ranges = session.store.shard_plan(csr)
        oc = oc_ranges is not None

        routed = self._route(csr, parallelism, oc=oc)
        # incremental serving: a maintainable request with a remembered
        # previous result and a replayable journal window never touches a
        # kernel — the dynamic maintainer repairs the old values instead
        incremental: dict[int, tuple[Any, float]] = {}
        for index, (spec, params) in enumerate(self._requests):
            if spec.maintainer is None:
                continue
            served = handle._incremental_serve(
                spec.name, spec.maintainer, params, csr, backend
            )
            if served is not None:
                values, seconds, note = served
                incremental[index] = (values, seconds)
                routed[index] = ("incremental", [note])
        modes = [mode for mode, _ in routed]
        # one concurrent task cannot beat running it inline; require either a
        # pool-parallel request or at least two concurrent tasks before
        # paying for worker processes
        wants_pool = (
            "superstep" in modes or "chunks" in modes or modes.count("task") >= 2
        )
        if not wants_pool:
            routed = [
                ("inline" if mode == "task" else mode, notes) for mode, notes in routed
            ]

        pool = None
        release_pool = None
        snapshot_path: str | None = None
        cleanup_path: str | None = None
        try:
            if wants_pool:
                # one snapshot file per plan: the store's content-checked
                # file when configured, else a single tempfile for the run.
                # Out-of-core plans persist the sharded form (one manifest +
                # segment files) and hand its geometry to the pool as the
                # explicit worker partitions.
                if session.store is not None:
                    snapshot_path = handle.persist()
                else:
                    fd, snapshot_path = tempfile.mkstemp(suffix=".csr", prefix="ggplan-")
                    os.close(fd)
                    cleanup_path = snapshot_path
                    csr.save(snapshot_path)
                pool, release_pool = session.acquire_pool(
                    csr.n,
                    snapshot_path,
                    csr.content_hash,
                    backend.name,
                    partitions=oc_ranges,
                    sharded=oc,
                )

            # independent serial-kernel requests first, load-balanced across
            # the whole worker budget; results keep their plan positions
            task_results: dict[int, tuple[float, Any]] = {}
            if pool is not None:
                task_indexes = [
                    index for index, (mode, _) in enumerate(routed) if mode == "task"
                ]
                if task_indexes:
                    payloads = [
                        (self._requests[index][0].name, self._requests[index][1])
                        for index in task_indexes
                    ]
                    for index, outcome in zip(
                        task_indexes, pool.map_tasks("run_task", payloads)
                    ):
                        if outcome[0] == "error":
                            # caller mistakes keep their original type and
                            # one-line message, exactly as if run inline
                            raise outcome[1]
                        task_results[index] = outcome[1:]

            results: list[AnalysisResult] = []
            seen_labels: dict[str, int] = {}
            for position, ((spec, params), (mode, notes)) in enumerate(
                zip(self._requests, routed)
            ):
                tick = time.perf_counter()
                if mode == "superstep":
                    values = spec.superstep(
                        handle.graph, parallelism, snapshot_path, backend.name, params, pool
                    )
                    seconds = time.perf_counter() - tick
                    engine = "superstep"
                elif mode == "chunks":
                    values = spec.chunk(csr, backend, params, pool)
                    seconds = time.perf_counter() - tick
                    engine = "chunks"
                elif mode == "task":
                    # executed concurrently above; seconds are worker-measured
                    seconds, values = task_results[position]
                    engine = "kernel"
                elif mode == "incremental":
                    values, seconds = incremental[position]
                    engine = "incremental"
                else:
                    values = spec.kernel(csr, backend, params)
                    seconds = time.perf_counter() - tick
                    engine = "kernel"
                if spec.maintainer is not None and mode != "incremental":
                    # remember the fresh result so future plans (and
                    # handle.refresh()) can maintain it over deltas
                    handle._incremental_record(spec.name, params, values)

                count = seen_labels.get(spec.name, 0) + 1
                seen_labels[spec.name] = count
                label = spec.name if count == 1 else f"{spec.name}#{count}"
                pooled = mode in ("superstep", "chunks")
                if oc and mode == "superstep":
                    # out-of-core execution: workers mapped per-shard segment
                    # files, and the worker count is the shard count
                    result_source = "shard-mmap"
                    result_parallelism = len(pool.partitions)
                    result_shards = len(oc_ranges)
                else:
                    result_source = snapshot_source
                    result_parallelism = parallelism if pooled else 1
                    result_shards = 0
                results.append(
                    AnalysisResult(
                        algorithm=spec.name,
                        label=label,
                        params={k: v for k, v in params.items()},
                        values=values,
                        seconds=seconds,
                        engine=engine,
                        provenance=Provenance(
                            representation=handle.representation,
                            backend=backend.name,
                            snapshot_source=result_source,
                            parallelism=result_parallelism,
                            shards=result_shards,
                            delta_edges=delta_edges,
                        ),
                        notes=tuple(notes) + snapshot_notes,
                        scheduled="inline" if mode in ("inline", "incremental") else "pool",
                    )
                )

            worker_memory: list[dict[str, int]] = []
            if pool is not None and oc:
                worker_memory = pool.call(
                    "memory_stats", [None] * len(pool.partitions)
                )
        finally:
            if release_pool is not None:
                release_pool()
            if cleanup_path is not None:
                try:
                    os.unlink(cleanup_path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

        journal = getattr(handle.graph, "journal", None)
        return AnalysisReport(
            results=results,
            provenance=Provenance(
                representation=handle.representation,
                backend=backend.name,
                snapshot_source="shard-mmap" if (oc and worker_memory) else snapshot_source,
                parallelism=parallelism,
                shards=len(oc_ranges) if oc else 0,
                delta_edges=delta_edges,
            ),
            total_seconds=time.perf_counter() - started,
            snapshot_builds=handle.builds - builds_before,
            pool_starts=pool_starts_in_thread() - pool_starts_before,
            snapshot_writes=snapshot_store.saves_in_thread() - writes_before,
            journal=(
                None
                if journal is None
                else {
                    "pending": len(journal.records),
                    "total": journal.total,
                    "compactions": journal.compactions,
                }
            ),
            worker_memory=worker_memory,
        )
