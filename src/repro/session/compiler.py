"""Optimizing plan compiler: a DAG of shared primitive nodes per plan.

PR 5's scheduler routed every :class:`~repro.session.AnalysisPlan` request
independently: a ``closeness + diameter + sampled-betweenness`` batch ran
three full BFS/SSSP source sweeps over the same snapshot, duplicate requests
executed twice, and derived views (the symmetrised sorted CSR, degree
arrays) were materialised by whichever kernel touched them first.  This
module lowers the request list into a small DAG of **primitive nodes**
instead and executes the DAG in dependency order through the PR-5 scheduler
machinery (one pool, one snapshot file per plan):

* ``snapshot`` — acquisition of the handle's shared CSR (cache-aware:
  reported ``reused`` when it came off the in-process cache or a store mmap);
* ``derive`` nodes — the backend-neutral symmetrised/sorted adjacency CSR
  (``und-csr``) and degree arrays, created once per plan when an inline
  consumer needs them, so the derivation cost is attributed to a node
  instead of hiding inside the first consuming kernel;
* one fused ``sweep`` node — per-source BFS trees / Brandes contributions
  over the union of every source-sweep demand in the plan.  Hop distances
  are uniquely determined integers, so a single traversal per source feeds
  closeness stats, diameter eccentricities, bfs distance maps *and*
  betweenness dependency vectors at once, and a Brandes traversal's internal
  distance array doubles as the BFS tree;
* ``algo`` nodes — per-request execution or (for sweep-covered requests) a
  cheap finaliser over the sweep's products.

Nodes are deduplicated by **structural key**: two requests with the same
algorithm and identical effective parameters resolve to one node (the
second result reports ``reused``), and ``closeness + diameter +
sampled-betweenness`` in one plan perform the BFS/Brandes sweeps once.

**Bit-identity.**  Results equal the uncompiled path exactly, floats
included, by reusing the PR-5 merge contracts: closeness values are the
pure-integer-stat expression every backend computes
(:func:`repro.algorithms.centrality.closeness_value`), diameter is a max of
integer eccentricities, and betweenness re-sums ordered per-source
contribution lists with one flat left-to-right pass in each request's own
global source order — exactly the serial kernels' accumulation sequence.
Uncovered requests run the PR-5 routes (superstep / chunks / task / inline)
with identical notes and fallbacks.

**Cost model.**  Execution choices are fed by the snapshot's ``n`` and ``m``
plus constants calibrated against the fig13/fig15/fig16 measurements (see
:data:`TRAVERSAL_SECONDS_PER_ELEMENT` and friends): concurrent serial-kernel
tasks are dispatched longest-first to minimise pool makespan, pool sweeps
partition their source list by weighted cost (a Brandes source counts
:data:`BRANDES_FACTOR` plain-BFS traversals), and an inline sweep with no
float (Brandes) demand — where every product is integer-exact across
backends — may run its traversals on the cheaper backend for the snapshot's
size.  Session ``parallelism`` remains a directive: pool-vs-inline follows
the PR-5 rules, so scheduling behaviour (pool starts, snapshot writes,
engines, notes) is unchanged for plans with no shareable work.

Every result gains per-node provenance
(:class:`~repro.session.NodeProvenance`): the nodes in its dependency
closure, each ``computed`` or ``reused``, with per-node seconds.
:class:`CompilerCounters` exposes process-global instrumentation deltas
(nodes computed/reused, sweep traversals) that the CSE regression tests
assert against.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.algorithms.centrality import (
    apply_betweenness_scale,
    betweenness_sources,
    closeness_value,
)
from repro.algorithms.shortest_paths import diameter_sample_indexes
from repro.graph import snapshot_store
from repro.graph.backend import get_backend
from repro.session.report import (
    AnalysisReport,
    AnalysisResult,
    NodeProvenance,
    Provenance,
)
from repro.vertexcentric.parallel import pool_starts_in_thread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.backend.python_backend import KernelBackend
    from repro.graph.kernel import CSRGraph
    from repro.session.plan import AnalysisPlan, PlanAlgorithm


class CompilerCounters:
    """Process-global instrumentation (read as deltas, like
    ``ParallelSuperstepExecutor.started_total``): the CSE regression tests
    assert node-level compute counts through these."""

    #: plans lowered through the compiler
    plans_compiled = 0
    #: DAG nodes actually executed (snapshot builds included)
    nodes_computed = 0
    #: reuse events: a result's closure entry resolving to an
    #: already-available node (CSE hits, duplicate requests, cached snapshots)
    nodes_reused = 0
    #: sources traversed by sweep nodes — ``closeness + diameter +
    #: betweenness`` over an ``n``-vertex snapshot moves this by exactly
    #: ``n``, not ``n + samples + sample_size``
    sweep_traversals = 0


# --------------------------------------------------------------------------- #
# cost model constants, calibrated on the fig13/fig15/fig16 rigs (synthetic
# condensed graphs, container hardware).  Decisions depend on *ratios*, which
# are stable across machines even when absolute seconds drift.
# --------------------------------------------------------------------------- #
#: one full-depth traversal costs about this many seconds per n + m element
TRAVERSAL_SECONDS_PER_ELEMENT = {"python": 2.3e-8, "numpy": 1.2e-8}
#: a Brandes traversal costs this multiple of a plain BFS (predecessor lists
#: plus the reverse accumulation pass; measured on the fig16/fig17 rigs)
BRANDES_FACTOR = {"python": 2.85, "numpy": 2.04}
#: below this many n + m elements one python-loop traversal beats numpy's
#: per-level vectorisation overhead (fig15 rig crossover, measured ~3.5k)
NUMPY_TRAVERSAL_CROSSOVER = 3500
#: coarse whole-request weights (multiples of one n + m scan) for ordering
#: concurrent task dispatch longest-first; per-source algorithms are costed
#: from their actual source counts instead
REQUEST_SCAN_WEIGHT = {
    "degree": 0.2,
    "pagerank": 20.0,
    "components": 2.0,
    "bfs": 1.0,
    "kcore": 3.0,
    "triangles": 5.0,
    "clustering": 6.0,
    "label_propagation": 10.0,
    "link_predictions": 8.0,
}


@dataclass(frozen=True)
class CostModel:
    """Per-plan execution cost estimates from the snapshot's size."""

    n: int
    m: int
    backend_name: str

    @property
    def elements(self) -> int:
        return max(1, self.n + self.m)

    def traversal_seconds(self, brandes: bool = False, backend_name: str | None = None) -> float:
        name = backend_name or self.backend_name
        per = TRAVERSAL_SECONDS_PER_ELEMENT.get(name, TRAVERSAL_SECONDS_PER_ELEMENT["python"])
        seconds = per * self.elements
        if brandes:
            seconds *= BRANDES_FACTOR.get(name, BRANDES_FACTOR["python"])
        return seconds

    def request_seconds(self, name: str, params: dict, csr: "CSRGraph") -> float:
        """Coarse whole-request estimate (drives longest-first task dispatch)."""
        if name == "closeness":
            return self.n * self.traversal_seconds()
        if name == "diameter":
            return min(params.get("samples", 10), self.n) * self.traversal_seconds()
        if name == "betweenness":
            sample = params.get("sample_size")
            sources = self.n if sample is None else min(sample, self.n)
            return sources * self.traversal_seconds(brandes=True)
        return REQUEST_SCAN_WEIGHT.get(name, 1.0) * self.traversal_seconds()

    def inline_sweep_backend(self, backend: "KernelBackend", has_delta: bool) -> "KernelBackend":
        """The backend an *inline* sweep grows its traversals on.

        With a Brandes (float) demand the session backend is pinned — float
        deltas are bit-identical only per backend.  Stats/distance-only
        sweeps are integer-exact everywhere, so the model picks whichever
        side of the measured crossover the snapshot falls on; an unavailable
        alternative (no numpy in the environment) just keeps the session
        backend.
        """
        if has_delta:
            return backend
        faster = "python" if self.elements < NUMPY_TRAVERSAL_CROSSOVER else "numpy"
        if faster == backend.name:
            return backend
        try:
            return get_backend(faster)
        except Exception:  # pragma: no cover - numpy-less environments
            return backend

    def partition_sweep_sources(
        self, sources: list[int], needs_delta: set[int] | None, stream: bool, parts: int
    ) -> list[list[int]]:
        """Contiguous slices of the sweep's source list, cut so each worker
        carries a near-equal *weighted* share (Brandes sources count
        :data:`BRANDES_FACTOR` plain traversals)."""
        factor = BRANDES_FACTOR.get(self.backend_name, BRANDES_FACTOR["python"])
        weights = [
            factor if (stream or (needs_delta is not None and src in needs_delta)) else 1.0
            for src in sources
        ]
        total = sum(weights)
        bounds = [0]
        accumulated = 0.0
        cut = 1
        for position, weight in enumerate(weights):
            accumulated += weight
            while cut < parts and accumulated >= total * cut / parts - 1e-12:
                bounds.append(position + 1)
                cut += 1
        while len(bounds) < parts:
            bounds.append(len(sources))
        bounds.append(len(sources))
        return [sources[bounds[i] : bounds[i + 1]] for i in range(parts)]


# --------------------------------------------------------------------------- #
# DAG structures
# --------------------------------------------------------------------------- #
@dataclass
class Node:
    """One primitive node of a compiled plan."""

    key: str
    kind: str  # "snapshot" | "derive" | "sweep" | "algo"
    mode: str = "inline"  # algo: inline|superstep|chunks|task|sweep; sweep: inline|chunks
    spec: "PlanAlgorithm | None" = None
    params: dict | None = None
    notes: tuple[str, ...] = ()
    deps: tuple["Node", ...] = ()
    demand: dict | None = None  # sweep-extraction info for sweep-covered algo nodes
    est_seconds: float = 0.0
    # runtime state
    done: bool = False
    value: Any = None
    seconds: float = 0.0
    attributed: bool = False


@dataclass
class SweepPlan:
    """The plan's single fused source sweep and its per-source products."""

    node: Node
    sources: list[int] = field(default_factory=list)
    #: sources whose Brandes dependency vector must be stored per source
    #: (strict-subset betweenness samples; re-summed per request)
    delta_sources: set[int] = field(default_factory=set)
    #: sources whose full distance list must be stored (bfs demands)
    dist_sources: set[int] = field(default_factory=set)
    #: accumulate a running delta total over *every* source in sweep order
    #: (full-source betweenness; inline sweeps only, where sweep order is the
    #: serial kernel's ascending source order)
    stream: bool = False
    covers_all: bool = False
    # runtime products
    stats: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    dists: dict[int, list[int]] = field(default_factory=dict)
    deltas: dict[int, list[float]] = field(default_factory=dict)
    stream_total: list[float] | None = None

    @property
    def has_delta(self) -> bool:
        return self.stream or bool(self.delta_sources)


@dataclass
class CompiledPlan:
    """A lowered plan: deduplicated nodes plus per-request bindings."""

    bindings: list[Node]  # one entry per original request, in plan order
    algo_nodes: list[Node]  # unique algo nodes, first-appearance order
    derive_nodes: list[Node]
    sweep: SweepPlan | None
    wants_pool: bool
    cost: CostModel


#: algorithms whose inline kernels consume the symmetrised adjacency view
_UND_CONSUMERS = {"kcore", "triangles", "clustering"}


def _params_signature(params: dict) -> tuple:
    return tuple(sorted(params.items(), key=lambda item: item[0]))


def _algo_key(name: str, params: dict) -> str:
    if not params:
        return f"algo:{name}"
    rendered = ", ".join(f"{key}={value!r}" for key, value in _params_signature(params))
    return f"algo:{name}({rendered})"


# --------------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------------- #
def compile_plan(
    requests: list[tuple["PlanAlgorithm", dict]],
    csr: "CSRGraph",
    backend: "KernelBackend",
    parallelism: int,
    *,
    oc: bool = False,
    incremental: dict[str, tuple[Any, float, str]] | None = None,
) -> CompiledPlan:
    """Lower a request list into a deduplicated node DAG (no execution).

    ``oc`` marks an out-of-core plan (the session store sharded this
    snapshot): pool workers then map only their own shard, so the cost model
    routes **only shard-local superstep programs** to the pool — sweeps,
    chunk kernels and whole-graph task kernels need adjacency outside a
    worker's shard and run inline on the coordinator instead.  An inline
    sweep still fuses demands exactly as at ``parallelism == 1`` (stream
    betweenness and bfs coverage included), because the coordinator holds
    the full heap snapshot it built.

    ``incremental`` maps structural algo keys to pre-served
    ``(values, seconds, note)`` triples from the handle's dynamic
    maintainers (see :mod:`repro.incremental`): those requests compile to
    already-``done`` ``"incremental"`` nodes that place no demand on the
    sweep, the derive views or the pool decision — a plan whose every
    request was maintained forks no pool and writes no snapshot file.
    """
    from repro.session.plan import _encode_source

    cost = CostModel(n=csr.n, m=csr.num_edges, backend_name=backend.name)
    n = csr.n
    # out-of-core pools serve superstep programs only; every sweep is inline
    pool_sweep = parallelism > 1 and not oc

    # -- CSE: one algo node per structural key --------------------------- #
    by_key: dict[str, Node] = {}
    bindings: list[Node] = []
    algo_nodes: list[Node] = []
    for spec, params in requests:
        key = _algo_key(spec.name, params)
        node = by_key.get(key)
        if node is None:
            served = None if incremental is None else incremental.get(key)
            if served is not None:
                values, seconds, note = served
                node = Node(
                    key=key,
                    kind="algo",
                    mode="incremental",
                    spec=spec,
                    params=params,
                    notes=(note,),
                    done=True,
                    value=values,
                    seconds=seconds,
                )
            else:
                node = Node(
                    key=key,
                    kind="algo",
                    spec=spec,
                    params=params,
                    est_seconds=cost.request_seconds(spec.name, params, csr),
                )
            by_key[key] = node
            algo_nodes.append(node)
        bindings.append(node)

    # -- sweep demand collection (two passes: bfs coverage depends on
    #    whether some other demand already sweeps every source) ----------- #
    sweep = SweepPlan(node=Node(key="sweep", kind="sweep"))
    demanding: list[Node] = []
    for node in algo_nodes:
        if node.mode == "incremental":
            continue
        name = node.spec.name
        params = node.params
        if name == "closeness" and n > 0:
            node.demand = {"kind": "closeness"}
            sweep.covers_all = True
            demanding.append(node)
        elif name == "diameter" and n > 0:
            sources = diameter_sample_indexes(csr, params["samples"], params["seed"])
            if sources:
                node.demand = {"kind": "diameter", "sources": sources}
                demanding.append(node)
        elif name == "betweenness" and n > 2:
            sources, scale = betweenness_sources(csr, params["sample_size"], params["seed"])
            strict_subset = len(sources) < n
            if strict_subset:
                node.demand = {
                    "kind": "betweenness",
                    "sources": sources,
                    "scale": scale,
                    "stream": False,
                }
                sweep.delta_sources.update(sources)
                demanding.append(node)
            elif not pool_sweep:
                # full-source Brandes: stream the running total in the serial
                # kernel's ascending source order (inline sweeps only — on a
                # pool this request keeps its PR-5 serial-kernel fallback)
                node.demand = {
                    "kind": "betweenness",
                    "sources": sources,
                    "scale": scale,
                    "stream": True,
                }
                sweep.stream = True
                sweep.covers_all = True
                demanding.append(node)
    for node in algo_nodes:
        if (
            node.spec.name == "bfs"
            and node.mode != "incremental"
            and node.demand is None
            and not pool_sweep
            and sweep.covers_all
            and node.params["max_depth"] is None
        ):
            source = _encode_source(csr, node.params["source"])
            node.demand = {"kind": "bfs", "source": source}
            sweep.dist_sources.add(source)
            demanding.append(node)

    if demanding:
        if sweep.covers_all:
            sweep.sources = list(range(n))
        else:
            seen: set[int] = set()
            for node in demanding:
                for source in node.demand.get("sources", ()):
                    if source not in seen:
                        seen.add(source)
                        sweep.sources.append(source)
        plain = len(sweep.sources) - (
            len(sweep.sources) if sweep.stream else len(sweep.delta_sources)
        )
        brandes = len(sweep.sources) - plain
        sweep.node.est_seconds = plain * cost.traversal_seconds() + brandes * cost.traversal_seconds(brandes=True)
        sweep.node.key = "sweep[{}:{} sources]".format(
            "+".join(dict.fromkeys(node.spec.name for node in demanding)),
            len(sweep.sources),
        )
        sweep.node.mode = "chunks" if pool_sweep else "inline"
    covered = {id(node) for node in demanding}

    # -- routing: sweep-covered nodes bypass their kernels; everything else
    #    keeps the PR-5 scheduler's routes, fallbacks and notes ----------- #
    symmetric: bool | None = None
    for node in algo_nodes:
        spec, params = node.spec, node.params
        notes: list[str] = []
        if node.mode == "incremental":
            continue
        if id(node) in covered:
            node.mode = "sweep"
            continue
        mode = "inline"
        if (parallelism > 1 or oc) and n > 0:
            if oc and spec.superstep is None:
                notes.append(
                    f"note: {spec.name} needs whole-graph adjacency, which "
                    "out-of-core workers do not map; running inline on the "
                    "coordinator"
                )
                node.mode = mode
                node.notes = tuple(notes)
                continue
            if spec.superstep is not None:
                param_note = (
                    spec.superstep_params_ok(params)
                    if spec.superstep_params_ok is not None
                    else None
                )
                if param_note is not None:
                    notes.append(param_note)
                    mode = "task"
                else:
                    if spec.requires_symmetric and symmetric is None:
                        symmetric = csr.is_symmetric()
                    if spec.requires_symmetric and not symmetric:
                        notes.append(
                            f"note: the {spec.name} superstep program requires a "
                            "symmetric graph; running serial kernel"
                        )
                        mode = "task"
                    else:
                        mode = "superstep"
                        if spec.superstep_note:
                            notes.append(spec.superstep_note)
            elif spec.chunk is not None and (
                spec.chunk_ok is None or spec.chunk_ok(params, csr)
            ):
                mode = "chunks"
            elif spec.chunk is not None:
                notes.append(
                    f"note: {spec.name} with these parameters is not "
                    "chunk-parallel eligible (requires sampling a strict "
                    "subset of sources); running serial kernel"
                )
                mode = "task"
            else:
                notes.append(
                    f"note: {spec.name} has no superstep program; running serial kernel"
                )
                mode = "task"
            if oc and mode == "task":
                # the serial fallback needs the whole graph, which
                # out-of-core workers do not map — run it on the coordinator
                notes.append(
                    "note: out-of-core workers map only their own shard; "
                    "running inline on the coordinator"
                )
                mode = "inline"
        node.mode = mode
        node.notes = tuple(notes)

    # -- pool decision: the PR-5 rule over *unique* nodes (deduplicated
    #    requests no longer count twice), sweep-on-pool counts as chunks -- #
    modes = [node.mode for node in algo_nodes]
    sweep_active = bool(demanding)
    wants_pool = (
        "superstep" in modes
        or "chunks" in modes
        or (sweep_active and sweep.node.mode == "chunks")
        or modes.count("task") >= 2
    )
    if not wants_pool:
        for node in algo_nodes:
            if node.mode == "task":
                node.mode = "inline"

    # -- derive nodes: shared views for *inline* consumers (pool workers
    #    materialise their own over the mmap'd snapshot) ------------------ #
    derive_nodes: list[Node] = []
    und_consumers = set(_UND_CONSUMERS)
    if backend.name == "numpy":
        und_consumers.add("components")
    und_node = None
    degrees_node = None
    for node in algo_nodes:
        if node.mode != "inline":
            continue
        if node.spec.name in und_consumers:
            if und_node is None:
                und_node = Node(
                    key="und-csr",
                    kind="derive",
                    est_seconds=2.0 * cost.traversal_seconds(),
                )
                derive_nodes.append(und_node)
            node.deps = node.deps + (und_node,)
        if node.spec.name == "degree":
            if degrees_node is None:
                degrees_node = Node(
                    key="degrees",
                    kind="derive",
                    est_seconds=0.1 * cost.traversal_seconds(),
                )
                derive_nodes.append(degrees_node)
            node.deps = node.deps + (degrees_node,)
    for node in demanding:
        node.deps = node.deps + (sweep.node,)

    return CompiledPlan(
        bindings=bindings,
        algo_nodes=algo_nodes,
        derive_nodes=derive_nodes,
        sweep=sweep if sweep_active else None,
        wants_pool=wants_pool,
        cost=cost,
    )


# --------------------------------------------------------------------------- #
# sweep execution
# --------------------------------------------------------------------------- #
def _accumulate(total: list[float] | None, delta: list[float]) -> list[float]:
    # same per-element left-to-right addition sequence as the serial kernels'
    # accumulation (list or ndarray alike), so the running total stays
    # bit-identical to the uncompiled path
    if total is None:
        return [0.0 + value for value in delta]
    return [current + value for current, value in zip(total, delta)]


def _execute_sweep(
    sweep: SweepPlan,
    csr: "CSRGraph",
    backend: "KernelBackend",
    pool,
    cost: CostModel,
) -> None:
    """Grow one traversal per swept source and materialise every demanded
    product (stats always; distances and deltas on demand)."""
    started = time.perf_counter()
    CompilerCounters.sweep_traversals += len(sweep.sources)
    if pool is None:
        active = cost.inline_sweep_backend(backend, sweep.has_delta)
        for source in sweep.sources:
            want_delta = sweep.stream or source in sweep.delta_sources
            if want_delta:
                tree, delta = backend.brandes_tree(csr, source)
                delta_list = backend.tree_delta(delta)
                if sweep.stream:
                    sweep.stream_total = _accumulate(sweep.stream_total, delta_list)
                if source in sweep.delta_sources:
                    sweep.deltas[source] = delta_list
                owner = backend
            else:
                tree = active.bfs_tree(csr, source)
                owner = active
            sweep.stats[source] = owner.tree_stats(tree)
            if source in sweep.dist_sources:
                sweep.dists[source] = owner.tree_distances(tree)
    else:
        # pool sweeps never stream (full-source betweenness keeps its PR-5
        # fallback on pools), so products are independent per source and the
        # weighted contiguous split below only balances load
        slices = cost.partition_sweep_sources(
            sweep.sources, sweep.delta_sources, sweep.stream, len(pool.partitions)
        )
        payloads = [
            [
                (source, source in sweep.delta_sources, source in sweep.dist_sources)
                for source in chunk
            ]
            for chunk in slices
        ]
        for chunk, products in zip(slices, pool.call("run_sweep", payloads)):
            for source, (stats, delta_list, dists) in zip(chunk, products):
                sweep.stats[source] = stats
                if delta_list is not None:
                    sweep.deltas[source] = delta_list
                if dists is not None:
                    sweep.dists[source] = dists
    sweep.node.seconds = time.perf_counter() - started
    sweep.node.done = True


def _finalise_from_sweep(node: Node, sweep: SweepPlan, csr: "CSRGraph") -> Any:
    """Shape one sweep-covered request's values from the shared products —
    bit-identical to the matching kernel runner (see module docstring)."""
    demand = node.demand
    kind = demand["kind"]
    n = csr.n
    if kind == "closeness":
        values = [
            closeness_value(n, sweep.stats[v][0], sweep.stats[v][1]) for v in range(n)
        ]
        return csr.decode(values)
    if kind == "diameter":
        return max((sweep.stats[s][2] for s in demand["sources"]), default=0)
    if kind == "betweenness":
        if demand["stream"]:
            totals = list(sweep.stream_total) if sweep.stream_total is not None else [0.0] * n
        else:
            totals = [0.0] * n
            for source in demand["sources"]:
                # flat left-to-right re-sum in this request's own global
                # source order: the PR-5 chunk-merge contract
                totals = _accumulate(totals, sweep.deltas[source])
        return csr.decode(
            apply_betweenness_scale(
                totals, n, node.params["normalized"], demand["scale"]
            )
        )
    if kind == "bfs":
        distances = sweep.dists[demand["source"]]
        ids = csr.external_ids
        return {ids[v]: d for v, d in enumerate(distances) if d >= 0}
    raise AssertionError(f"unknown sweep demand {kind!r}")  # pragma: no cover


# --------------------------------------------------------------------------- #
# compiled execution (the AnalysisPlan.run() body when compilation is on)
# --------------------------------------------------------------------------- #
def run_compiled(plan: "AnalysisPlan") -> AnalysisReport:
    """Compile and execute ``plan``, returning its report (see module doc)."""
    handle = plan._handle
    session = handle.session
    backend = session.backend
    parallelism = session.parallelism

    started = time.perf_counter()
    builds_before = handle.builds
    # thread-local deltas: concurrent plans in one process (the graph
    # service) must each report only their own forks and writes
    pool_starts_before = pool_starts_in_thread()
    writes_before = snapshot_store.saves_in_thread()

    tick = time.perf_counter()
    csr = handle.snapshot()
    snapshot_seconds = time.perf_counter() - tick
    snapshot_source = handle.snapshot_source
    delta_edges = handle._delta_edges
    snapshot_notes = handle.consume_snapshot_notes()

    # out-of-core: the session store's sharding policy decides once per plan;
    # a non-None plan is the exact shard geometry, reused as the worker
    # partitions so shard files and partitions align one-to-one
    oc_ranges = None
    if session.store is not None and session.store.sharded:
        oc_ranges = session.store.shard_plan(csr)
    oc = oc_ranges is not None

    # pre-serve dynamic maintainers over the delta journal before lowering:
    # served requests compile to already-done "incremental" nodes, so they
    # never pull a sweep, a derive view or a pool into existence
    incremental_served: dict[str, tuple[Any, float, str]] = {}
    for spec, params in plan._requests:
        if spec.maintainer is None:
            continue
        key = _algo_key(spec.name, params)
        if key in incremental_served:
            continue
        served = handle._incremental_serve(spec.name, spec.maintainer, params, csr, backend)
        if served is not None:
            incremental_served[key] = served
            CompilerCounters.nodes_computed += 1

    compiled = compile_plan(
        plan._requests, csr, backend, parallelism, oc=oc, incremental=incremental_served
    )
    CompilerCounters.plans_compiled += 1
    snapshot_node = Node(
        key="snapshot", kind="snapshot", seconds=snapshot_seconds, done=True
    )
    # a heap snapshot was computed by this run; cache hits and store mmaps
    # reuse work a previous run (or plan) already paid for
    snapshot_fresh = snapshot_source == "heap"
    if snapshot_fresh:
        CompilerCounters.nodes_computed += 1

    pool = None
    release_pool = None
    snapshot_path: str | None = None
    cleanup_path: str | None = None
    try:
        if compiled.wants_pool:
            if session.store is not None:
                snapshot_path = handle.persist()
            else:
                fd, snapshot_path = tempfile.mkstemp(suffix=".csr", prefix="ggplan-")
                os.close(fd)
                cleanup_path = snapshot_path
                csr.save(snapshot_path)
            pool, release_pool = session.acquire_pool(
                csr.n,
                snapshot_path,
                csr.content_hash,
                backend.name,
                partitions=oc_ranges,
                sharded=oc,
            )

        # concurrent serial-kernel nodes first, longest-first (cost-model
        # makespan ordering; map_tasks returns results in argument order)
        if pool is not None:
            task_nodes = sorted(
                (node for node in compiled.algo_nodes if node.mode == "task"),
                key=lambda node: -node.est_seconds,
            )
            if task_nodes:
                payloads = [(node.spec.name, node.params) for node in task_nodes]
                for node, outcome in zip(task_nodes, pool.map_tasks("run_task", payloads)):
                    if outcome[0] == "error":
                        # caller mistakes keep their original type and
                        # one-line message, exactly as if run inline
                        raise outcome[1]
                    node.seconds, node.value = outcome[1:]
                    node.done = True
                    CompilerCounters.nodes_computed += 1

        # shared derived views, then the fused sweep, before any consumer
        for node in compiled.derive_nodes:
            tick = time.perf_counter()
            if node.key == "und-csr":
                backend.warm_undirected(csr)
            else:  # degrees
                backend.degrees(csr)
            node.seconds = time.perf_counter() - tick
            node.done = True
            CompilerCounters.nodes_computed += 1
        if compiled.sweep is not None:
            # honour the compiled mode, not mere pool presence: an out-of-core
            # pool's workers map one shard each and cannot grow whole-graph
            # traversals, so an "inline" sweep stays on the coordinator even
            # though a (sharded) pool exists for the superstep nodes
            sweep_pool = pool if compiled.sweep.node.mode == "chunks" else None
            _execute_sweep(compiled.sweep, csr, backend, sweep_pool, compiled.cost)
            CompilerCounters.nodes_computed += 1

        sweep_on_pool = (
            compiled.sweep is not None and compiled.sweep.node.mode == "chunks"
        )
        results: list[AnalysisResult] = []
        seen_labels: dict[str, int] = {}
        for spec_params, node in zip(plan._requests, compiled.bindings):
            spec, params = spec_params
            if not node.done:
                tick = time.perf_counter()
                if node.mode == "superstep":
                    node.value = spec.superstep(
                        handle.graph, parallelism, snapshot_path, backend.name, params, pool
                    )
                elif node.mode == "chunks":
                    node.value = spec.chunk(csr, backend, params, pool)
                elif node.mode == "sweep":
                    node.value = _finalise_from_sweep(node, compiled.sweep, csr)
                else:
                    node.value = spec.kernel(csr, backend, params)
                node.seconds = time.perf_counter() - tick
                node.done = True
                CompilerCounters.nodes_computed += 1

            # per-node provenance over the dependency closure, first
            # consumer attribution; result seconds = the work this request
            # actually triggered (snapshot excluded, as before)
            closure = (snapshot_node,) + node.deps + (node,)
            provenance_nodes = []
            request_seconds = 0.0
            for member in closure:
                if member.kind == "snapshot":
                    computed = snapshot_fresh and not member.attributed
                else:
                    computed = not member.attributed
                member.attributed = True
                status = "computed" if computed else "reused"
                if not computed:
                    CompilerCounters.nodes_reused += 1
                if computed and member.kind != "snapshot":
                    request_seconds += member.seconds
                provenance_nodes.append(
                    NodeProvenance(
                        key=member.key,
                        kind=member.kind,
                        status=status,
                        seconds=member.seconds,
                    )
                )

            result_source = snapshot_source
            result_shards = 0
            if node.mode == "sweep":
                engine = "chunks" if sweep_on_pool else "kernel"
                scheduled = "pool" if sweep_on_pool else "inline"
                result_parallelism = parallelism if sweep_on_pool else 1
            else:
                engine = {
                    "superstep": "superstep",
                    "chunks": "chunks",
                    "task": "kernel",
                    "inline": "kernel",
                    "incremental": "incremental",
                }[node.mode]
                scheduled = "inline" if node.mode in ("inline", "incremental") else "pool"
                result_parallelism = (
                    parallelism if node.mode in ("superstep", "chunks") else 1
                )
                if oc and node.mode == "superstep":
                    # out-of-core execution: workers mapped per-shard segment
                    # files, and the worker count is the shard count
                    result_source = "shard-mmap"
                    result_parallelism = len(pool.partitions)
                    result_shards = len(oc_ranges)

            # a freshly computed maintainable result seeds the handle's
            # incremental store so the *next* run after mutations can serve
            # it from the journal (idempotent for duplicate bindings)
            if spec.maintainer is not None and node.mode != "incremental":
                handle._incremental_record(spec.name, params, node.value)

            count = seen_labels.get(spec.name, 0) + 1
            seen_labels[spec.name] = count
            label = spec.name if count == 1 else f"{spec.name}#{count}"
            results.append(
                AnalysisResult(
                    algorithm=spec.name,
                    label=label,
                    params={k: v for k, v in params.items()},
                    values=node.value,
                    seconds=request_seconds,
                    engine=engine,
                    provenance=Provenance(
                        representation=handle.representation,
                        backend=backend.name,
                        snapshot_source=result_source,
                        parallelism=result_parallelism,
                        shards=result_shards,
                        delta_edges=delta_edges,
                    ),
                    notes=node.notes + snapshot_notes,
                    scheduled=scheduled,
                    nodes=tuple(provenance_nodes),
                )
            )

        worker_memory: list[dict[str, int]] = []
        if pool is not None and oc:
            worker_memory = pool.call("memory_stats", [None] * len(pool.partitions))
    finally:
        if release_pool is not None:
            release_pool()
        if cleanup_path is not None:
            try:
                os.unlink(cleanup_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    computed_total = 0
    reused_total = 0
    for result in results:
        for node in result.nodes:
            if node.status == "computed":
                computed_total += 1
            else:
                reused_total += 1
    journal = getattr(handle.graph, "journal", None)
    return AnalysisReport(
        results=results,
        provenance=Provenance(
            representation=handle.representation,
            backend=backend.name,
            snapshot_source="shard-mmap" if (oc and worker_memory) else snapshot_source,
            parallelism=parallelism,
            shards=len(oc_ranges) if oc else 0,
            delta_edges=delta_edges,
        ),
        total_seconds=time.perf_counter() - started,
        snapshot_builds=handle.builds - builds_before,
        pool_starts=pool_starts_in_thread() - pool_starts_before,
        snapshot_writes=snapshot_store.saves_in_thread() - writes_before,
        nodes_computed=computed_total,
        nodes_reused=reused_total,
        journal=None
        if journal is None
        else {
            "pending": len(journal.records),
            "total": journal.total,
            "compactions": journal.compactions,
        },
        worker_memory=worker_memory,
    )
