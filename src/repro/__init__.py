"""GraphGen reproduction: extracting and analyzing hidden graphs from
relational databases (Xirogiannopoulos & Deshpande, SIGMOD 2017).

Quickstart::

    from repro import Database, GraphGen
    from repro.algorithms import pagerank

    db = Database("dblp")
    db.create_table("Author", [("id", "int"), ("name", "str")], primary_key="id")
    db.create_table("AuthorPub", [("aid", "int"), ("pid", "int")])
    ...
    gg = GraphGen(db)
    graph = gg.extract('''
        Nodes(ID, Name) :- Author(ID, Name).
        Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
    ''', representation="bitmap")
    scores = pagerank(graph)
"""

from repro.core import ExtractionOptions, ExtractionResult, GraphGen
from repro.relational import Database
from repro.dsl import parse as parse_query
from repro.graph import (
    BitmapGraph,
    CDupGraph,
    CondensedGraph,
    Dedup1Graph,
    Dedup2Graph,
    ExpandedGraph,
    Graph,
)
from repro.graphgenpy import GraphGenPy, extract_to_networkx, load_networkx
from repro.temporal import extract_snapshots, snapshot_diff, temporal_metrics

__version__ = "1.0.0"

__all__ = [
    "ExtractionOptions",
    "ExtractionResult",
    "GraphGen",
    "Database",
    "parse_query",
    "BitmapGraph",
    "CDupGraph",
    "CondensedGraph",
    "Dedup1Graph",
    "Dedup2Graph",
    "ExpandedGraph",
    "Graph",
    "GraphGenPy",
    "extract_to_networkx",
    "load_networkx",
    "extract_snapshots",
    "snapshot_diff",
    "temporal_metrics",
    "__version__",
]
