"""GraphGen reproduction: extracting and analyzing hidden graphs from
relational databases (Xirogiannopoulos & Deshpande, SIGMOD 2017).

Quickstart::

    from repro import Database, GraphGen
    from repro.algorithms import pagerank

    db = Database("dblp")
    db.create_table("Author", [("id", "int"), ("name", "str")], primary_key="id")
    db.create_table("AuthorPub", [("aid", "int"), ("pid", "int")])
    ...
    gg = GraphGen(db)
    graph = gg.extract('''
        Nodes(ID, Name) :- Author(ID, Name).
        Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
    ''', representation="bitmap")
    scores = pagerank(graph)

or, for batch analytics over one shared snapshot, through the session layer::

    from repro import GraphSession

    session = GraphSession(db, snapshot_cache="./snapshots")
    handle = session.graph(QUERY, representation="bitmap")
    report = handle.analyze().pagerank().components().triangles().run()
    scores = report["pagerank"].values
"""

from repro.core import ExtractionOptions, ExtractionResult, GraphGen
from repro.relational import Database
from repro.dsl import parse as parse_query
from repro.graph import (
    BitmapGraph,
    CDupGraph,
    CondensedGraph,
    Dedup1Graph,
    Dedup2Graph,
    ExpandedGraph,
    Graph,
)
from repro.graphgenpy import GraphGenPy, extract_to_networkx, load_networkx
from repro.session import (
    AnalysisPlan,
    AnalysisReport,
    AnalysisResult,
    GraphHandle,
    GraphSession,
)
from repro.temporal import extract_snapshots, snapshot_diff, temporal_metrics

__version__ = "1.1.0"

__all__ = [
    "ExtractionOptions",
    "ExtractionResult",
    "GraphGen",
    "GraphSession",
    "GraphHandle",
    "AnalysisPlan",
    "AnalysisReport",
    "AnalysisResult",
    "Database",
    "parse_query",
    "BitmapGraph",
    "CDupGraph",
    "CondensedGraph",
    "Dedup1Graph",
    "Dedup2Graph",
    "ExpandedGraph",
    "Graph",
    "GraphGenPy",
    "extract_to_networkx",
    "load_networkx",
    "extract_snapshots",
    "snapshot_diff",
    "temporal_metrics",
    "__version__",
]
