"""Exception hierarchy for the GraphGen reproduction.

Every error raised by the library derives from :class:`GraphGenError`, so
callers can catch a single base class at the API boundary.
"""

from __future__ import annotations


class GraphGenError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(GraphGenError):
    """A relational schema is malformed or violated (unknown table/column,
    arity mismatch, duplicate definition, broken foreign key, ...)."""


class QueryError(GraphGenError):
    """A relational query is invalid (unknown table, unbound variable,
    type mismatch in a comparison, ...)."""


class DSLSyntaxError(GraphGenError):
    """The Datalog extraction query could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)


class DSLValidationError(GraphGenError):
    """The extraction query parsed but is not a valid GraphGen specification
    (no Nodes statement, cyclic Edges body, unsafe head variable, ...)."""


class ExtractionError(GraphGenError):
    """Graph extraction against the database failed."""


class RepresentationError(GraphGenError):
    """An in-memory graph representation was used incorrectly
    (e.g. running a dedup-requiring operation on a duplicated graph)."""


class SnapshotFormatError(GraphGenError):
    """A persisted CSR snapshot file is unreadable (wrong magic, unsupported
    version, truncated sections, or a content-hash mismatch)."""


class DeduplicationError(GraphGenError):
    """A deduplication algorithm was given input it cannot handle
    (e.g. a multi-layer graph passed to a single-layer-only algorithm)."""


class VertexCentricError(GraphGenError):
    """The vertex-centric framework was misconfigured or a compute function
    raised during a superstep."""


class UsageError(GraphGenError):
    """A user-supplied configuration value is invalid (bad CLI flag value,
    unknown kernel backend name, ...); reported as a message, never a
    traceback."""


class ServiceOverloadedError(GraphGenError):
    """The graph service's admission controller rejected a request because
    every execution slot is busy and the wait queue is full (HTTP 503)."""
