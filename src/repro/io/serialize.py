"""Graph serialization.

Section 3.1 of the paper: after extraction, users may "serialize the graph
onto disk (in its expanded representation) in a standardized format, so that
it can be further analyzed using any specialized graph processing framework or
graph library (e.g., NetworkX)".

Formats supported here:

* **edge list** — one ``source<TAB>target`` line per logical edge (the
  expanded representation, as in the paper);
* **adjacency JSON** — ``{vertex: [neighbors...]}``, including isolated
  vertices and per-vertex properties;
* **condensed JSON** — a lossless dump of a
  :class:`~repro.graph.condensed.CondensedGraph` (real nodes, virtual nodes,
  condensed edges) so extraction work can be saved and reloaded without
  re-running the queries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.exceptions import GraphGenError
from repro.graph.api import Graph
from repro.graph.condensed import CondensedGraph
from repro.graph.expanded import ExpandedGraph


def _open_for_write(path: str | Path) -> TextIO:
    return Path(path).open("w", encoding="utf-8")


# --------------------------------------------------------------------------- #
# edge list
# --------------------------------------------------------------------------- #
def write_edge_list(graph: Graph, path: str | Path, delimiter: str = "\t") -> int:
    """Write the logical edges of ``graph``; returns the number written."""
    count = 0
    with _open_for_write(path) as handle:
        for source, target in graph.edges():
            handle.write(f"{source}{delimiter}{target}\n")
            count += 1
    return count


def read_edge_list(path: str | Path, delimiter: str = "\t", as_int: bool = True) -> ExpandedGraph:
    """Read an edge-list file into an :class:`ExpandedGraph`."""
    graph = ExpandedGraph()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(delimiter)
            if len(parts) < 2:
                raise GraphGenError(f"{path}:{line_number}: malformed edge line {line!r}")
            source, target = parts[0], parts[1]
            if as_int:
                try:
                    source, target = int(source), int(target)  # type: ignore[assignment]
                except ValueError:
                    pass
            graph.add_edge(source, target)
    return graph


# --------------------------------------------------------------------------- #
# adjacency JSON
# --------------------------------------------------------------------------- #
def write_adjacency_json(graph: Graph, path: str | Path) -> None:
    """Write ``{"vertices": {...}, "adjacency": {...}}`` (keys stringified)."""
    payload: dict[str, Any] = {"vertices": {}, "adjacency": {}}
    for vertex in graph.get_vertices():
        key = json.dumps(vertex) if not isinstance(vertex, str) else vertex
        payload["vertices"][key] = {}
        payload["adjacency"][key] = [
            json.dumps(n) if not isinstance(n, str) else n for n in graph.get_neighbors(vertex)
        ]
    with _open_for_write(path) as handle:
        json.dump(payload, handle, indent=1)


# --------------------------------------------------------------------------- #
# condensed JSON
# --------------------------------------------------------------------------- #
def write_condensed_json(condensed: CondensedGraph, path: str | Path) -> None:
    """Losslessly dump a condensed graph (real/virtual nodes + edges)."""
    real_nodes = []
    for node in condensed.real_nodes():
        real_nodes.append(
            {
                "internal": node,
                "external": condensed.external(node),
                "properties": condensed.node_properties.get(node, {}),
            }
        )
    virtual_nodes = [
        {"internal": node, "label": list(label) if label is not None else None}
        for node, label in condensed.virtual_labels.items()
    ]
    edges = [
        {"source": source, "target": target}
        for source, targets in condensed.succ.items()
        for target in targets
    ]
    payload = {"real_nodes": real_nodes, "virtual_nodes": virtual_nodes, "edges": edges}
    with _open_for_write(path) as handle:
        json.dump(payload, handle)


def read_condensed_json(path: str | Path) -> CondensedGraph:
    """Reload a condensed graph written by :func:`write_condensed_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    graph = CondensedGraph()
    internal_map: dict[int, int] = {}
    for record in payload["real_nodes"]:
        external = record["external"]
        node = graph.add_real_node(external, **record.get("properties", {}))
        internal_map[record["internal"]] = node
    for record in payload["virtual_nodes"]:
        label = tuple(record["label"]) if record["label"] is not None else None
        node = graph.add_virtual_node(label)  # type: ignore[arg-type]
        internal_map[record["internal"]] = node
    for record in payload["edges"]:
        graph.add_edge(internal_map[record["source"]], internal_map[record["target"]])
    return graph
