"""NetworkX interoperability.

The paper's ``graphgenpy`` wrapper exists precisely so that extracted graphs
can be analysed "using any graph computation framework or library (e.g.,
NetworkX)"; these converters play that role for this reproduction and are also
used by the test suite to cross-check algorithm results against NetworkX.
"""

from __future__ import annotations

import networkx as nx

from repro.graph.api import Graph, VertexId
from repro.graph.expanded import ExpandedGraph


def to_networkx(graph: Graph, directed: bool = True) -> "nx.DiGraph | nx.Graph":
    """Materialise any representation as a NetworkX (Di)Graph.

    The *logical* (expanded) graph is exported: every vertex, every
    de-duplicated edge, plus vertex properties when the representation stores
    them.
    """
    result: nx.DiGraph | nx.Graph = nx.DiGraph() if directed else nx.Graph()
    for vertex in graph.get_vertices():
        result.add_node(vertex)
    for source in graph.get_vertices():
        for target in graph.get_neighbors(source):
            result.add_edge(source, target)
    return result


def from_networkx(nx_graph: "nx.Graph | nx.DiGraph") -> ExpandedGraph:
    """Import a NetworkX graph as an :class:`ExpandedGraph`.

    Undirected graphs become symmetric directed graphs (the paper represents
    undirected graphs with bidirectional edges).
    """
    graph = ExpandedGraph()
    for node, data in nx_graph.nodes(data=True):
        graph.add_vertex(node, **dict(data))
    directed = nx_graph.is_directed()
    for source, target in nx_graph.edges():
        graph.add_edge(source, target)
        if not directed and source != target:
            graph.add_edge(target, source)
    return graph


def neighbors_match(graph: Graph, nx_graph: "nx.DiGraph", vertex: VertexId) -> bool:
    """True if a vertex has the same out-neighbor set in both graphs (test helper)."""
    ours = set(graph.get_neighbors(vertex))
    theirs = set(nx_graph.successors(vertex))
    return ours == theirs
