"""Serialization and interoperability (edge lists, JSON, NetworkX)."""

from repro.io.serialize import (
    read_condensed_json,
    read_edge_list,
    write_adjacency_json,
    write_condensed_json,
    write_edge_list,
)
from repro.io.networkx_adapter import from_networkx, neighbors_match, to_networkx

__all__ = [
    "read_condensed_json",
    "read_edge_list",
    "write_adjacency_json",
    "write_condensed_json",
    "write_edge_list",
    "from_networkx",
    "neighbors_match",
    "to_networkx",
]
