"""A simulated Apache Giraph: bulk-synchronous message passing (Section 6.4).

The paper ports EXP, DEDUP-1 and BITMAP to Giraph and compares running time,
memory and (implicitly) message volume for Degree, PageRank and Connected
Components.  This module provides the substrate for that experiment: a
single-process Pregel-style engine with

* vertices (real or virtual) holding a value, an out-edge list and arbitrary
  per-vertex data,
* superstep execution with message delivery in the following superstep,
* vote-to-halt semantics (a vertex is reactivated by an incoming message),
* metrics: messages per superstep, total messages, supersteps, and an
  analytic memory estimate for vertices + edges + peak message buffer.

The engine knows nothing about condensed representations; the adapters in
:mod:`repro.giraph.adapters` build the vertex sets for each representation and
the programs in :mod:`repro.giraph.programs` implement the per-representation
compute logic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.exceptions import VertexCentricError
from repro.utils.memory import EDGE_SLOT_BYTES, NODE_OVERHEAD_BYTES

MESSAGE_BYTES = 24


@dataclass
class GiraphVertex:
    """One vertex of the simulated Giraph graph."""

    vertex_id: Hashable
    edges: list[Hashable] = field(default_factory=list)
    value: Any = None
    is_virtual: bool = False
    #: representation-specific payload (e.g. BITMAP allowed-target sets,
    #: precomputed logical degree)
    data: dict[str, Any] = field(default_factory=dict)


@dataclass
class GiraphMetrics:
    """Execution metrics of one Giraph run."""

    supersteps: int = 0
    total_messages: int = 0
    messages_per_superstep: list[int] = field(default_factory=list)
    compute_calls: int = 0
    peak_message_buffer: int = 0
    vertex_count: int = 0
    virtual_vertex_count: int = 0
    edge_count: int = 0

    def estimated_memory_bytes(self) -> int:
        """Vertices + adjacency + peak in-flight messages, analytic model."""
        return (
            self.vertex_count * NODE_OVERHEAD_BYTES
            + self.edge_count * EDGE_SLOT_BYTES
            + self.peak_message_buffer * MESSAGE_BYTES
        )


class GiraphContext:
    """Per-superstep services available to a program's ``compute``."""

    def __init__(self, engine: "GiraphEngine") -> None:
        self._engine = engine

    @property
    def superstep(self) -> int:
        return self._engine.superstep

    @property
    def num_real_vertices(self) -> int:
        return self._engine.num_real_vertices

    def send(self, target: Hashable, message: Any) -> None:
        self._engine.send(target, message)

    def vote_to_halt(self, vertex_id: Hashable) -> None:
        self._engine.vote_to_halt(vertex_id)


class GiraphProgram(ABC):
    """A vertex program for the simulated Giraph engine."""

    #: stop automatically after this many supersteps (None = until halted)
    max_supersteps: int | None = None

    @abstractmethod
    def compute(self, vertex: GiraphVertex, messages: list[Any], ctx: GiraphContext) -> None:
        """Called for every active vertex each superstep."""


class GiraphEngine:
    """Synchronous BSP execution over a fixed vertex set."""

    def __init__(self, vertices: dict[Hashable, GiraphVertex]) -> None:
        self._vertices = vertices
        self.num_real_vertices = sum(1 for v in vertices.values() if not v.is_virtual)
        self.superstep = 0
        self._inbox: dict[Hashable, list[Any]] = {}
        self._outbox: dict[Hashable, list[Any]] = {}
        self._halted: set[Hashable] = set()
        self._messages_sent_this_superstep = 0

    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> dict[Hashable, GiraphVertex]:
        return self._vertices

    def vertex(self, vertex_id: Hashable) -> GiraphVertex:
        return self._vertices[vertex_id]

    def values(self, real_only: bool = True) -> dict[Hashable, Any]:
        return {
            vid: vertex.value
            for vid, vertex in self._vertices.items()
            if not (real_only and vertex.is_virtual)
        }

    # ------------------------------------------------------------------ #
    def send(self, target: Hashable, message: Any) -> None:
        if target not in self._vertices:
            raise VertexCentricError(f"message sent to unknown vertex {target!r}")
        self._outbox.setdefault(target, []).append(message)
        self._messages_sent_this_superstep += 1

    def vote_to_halt(self, vertex_id: Hashable) -> None:
        self._halted.add(vertex_id)

    # ------------------------------------------------------------------ #
    def run(self, program: GiraphProgram, max_supersteps: int = 200) -> GiraphMetrics:
        metrics = GiraphMetrics(
            vertex_count=len(self._vertices),
            virtual_vertex_count=sum(1 for v in self._vertices.values() if v.is_virtual),
            edge_count=sum(len(v.edges) for v in self._vertices.values()),
        )
        limit = max_supersteps
        if program.max_supersteps is not None:
            limit = min(limit, program.max_supersteps)

        context = GiraphContext(self)
        self.superstep = 0
        self._inbox = {}
        self._halted = set()
        while self.superstep < limit:
            active = [
                vid
                for vid in self._vertices
                if vid not in self._halted or vid in self._inbox
            ]
            if not active:
                break
            self._outbox = {}
            self._messages_sent_this_superstep = 0
            for vid in active:
                self._halted.discard(vid)
                messages = self._inbox.get(vid, [])
                program.compute(self._vertices[vid], messages, context)
                metrics.compute_calls += 1
            metrics.messages_per_superstep.append(self._messages_sent_this_superstep)
            metrics.total_messages += self._messages_sent_this_superstep
            metrics.peak_message_buffer = max(
                metrics.peak_message_buffer, self._messages_sent_this_superstep
            )
            self._inbox = self._outbox
            self.superstep += 1
            metrics.supersteps = self.superstep
        return metrics
