"""A simulated Apache Giraph: bulk-synchronous message passing (Section 6.4).

The paper ports EXP, DEDUP-1 and BITMAP to Giraph and compares running time,
memory and (implicitly) message volume for Degree, PageRank and Connected
Components.  This module provides the substrate for that experiment: a
single-process Pregel-style engine with

* vertices (real or virtual) holding a value, an out-edge list and arbitrary
  per-vertex data,
* superstep execution with message delivery in the following superstep,
* vote-to-halt semantics (a vertex is reactivated by an incoming message),
* Pregel-style sum aggregators (contributed during superstep ``k``, visible
  in superstep ``k + 1``; used by PageRank's dangling-mass correction),
* metrics: messages per superstep, total messages, supersteps, and an
  analytic memory estimate for vertices + edges + peak message buffer.

Internally the engine assigns every vertex a dense integer index at
construction — the same compressed layout the CSR kernel uses — and schedules
supersteps over flat inbox/halted arrays; vertex identifiers only appear at
the ``send`` boundary and in the program-facing API, which is unchanged.

With ``parallelism=N`` (default 1 = serial) supersteps run through the shared
:class:`~repro.vertexcentric.parallel.ParallelSuperstepExecutor`: the dense
index range is split into ``N`` fixed contiguous partitions, each owned by a
persistent forked worker that keeps its partition's vertex state (values,
``data`` scratch, halt votes) local across supersteps; the master routes
messages between partitions and re-reduces aggregator contributions in
partition order, so values, metrics and floating-point aggregates are
bit-identical to the serial engine.

The engine knows nothing about condensed representations; the adapters in
:mod:`repro.giraph.adapters` build the vertex sets for each representation and
the programs in :mod:`repro.giraph.programs` implement the per-representation
compute logic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.exceptions import VertexCentricError
from repro.utils.memory import EDGE_SLOT_BYTES, NODE_OVERHEAD_BYTES

MESSAGE_BYTES = 24


@dataclass
class GiraphVertex:
    """One vertex of the simulated Giraph graph."""

    vertex_id: Hashable
    edges: list[Hashable] = field(default_factory=list)
    value: Any = None
    is_virtual: bool = False
    #: representation-specific payload (e.g. BITMAP allowed-target sets,
    #: precomputed logical degree)
    data: dict[str, Any] = field(default_factory=dict)


@dataclass
class GiraphMetrics:
    """Execution metrics of one Giraph run."""

    supersteps: int = 0
    total_messages: int = 0
    messages_per_superstep: list[int] = field(default_factory=list)
    compute_calls: int = 0
    peak_message_buffer: int = 0
    vertex_count: int = 0
    virtual_vertex_count: int = 0
    edge_count: int = 0

    def estimated_memory_bytes(self) -> int:
        """Vertices + adjacency + peak in-flight messages, analytic model."""
        return (
            self.vertex_count * NODE_OVERHEAD_BYTES
            + self.edge_count * EDGE_SLOT_BYTES
            + self.peak_message_buffer * MESSAGE_BYTES
        )


class GiraphContext:
    """Per-superstep services available to a program's ``compute``."""

    def __init__(self, engine: "GiraphEngine") -> None:
        self._engine = engine

    @property
    def superstep(self) -> int:
        return self._engine.superstep

    @property
    def num_real_vertices(self) -> int:
        return self._engine.num_real_vertices

    def send(self, target: Hashable, message: Any) -> None:
        self._engine.send(target, message)

    def vote_to_halt(self, vertex_id: Hashable) -> None:
        self._engine.vote_to_halt(vertex_id)

    def aggregate(self, name: str, value: float) -> None:
        """Add ``value`` to the named sum aggregator for the next superstep."""
        self._engine.aggregate(name, value)

    def get_aggregate(self, name: str, default: float = 0.0) -> float:
        """The named aggregator's total from the previous superstep."""
        return self._engine.get_aggregate(name, default)


class GiraphProgram(ABC):
    """A vertex program for the simulated Giraph engine."""

    #: stop automatically after this many supersteps (None = until halted)
    max_supersteps: int | None = None

    @abstractmethod
    def compute(self, vertex: GiraphVertex, messages: list[Any], ctx: GiraphContext) -> None:
        """Called for every active vertex each superstep."""


class GiraphEngine:
    """Synchronous BSP execution over a fixed vertex set.

    Vertices are compiled into a dense index space once; superstep scheduling
    (active-set computation, message routing, halting) runs over flat lists
    indexed by those integers.
    """

    def __init__(self, vertices: dict[Hashable, GiraphVertex], parallelism: int = 1) -> None:
        if parallelism < 1:
            raise VertexCentricError("parallelism must be at least 1")
        self._vertices = vertices
        #: number of worker processes for supersteps (1 = serial, the default)
        self._parallelism = parallelism
        #: dense layout shared by inbox/outbox/halted arrays
        self._ids: list[Hashable] = list(vertices)
        self._index: dict[Hashable, int] = {vid: i for i, vid in enumerate(self._ids)}
        self._ordered: list[GiraphVertex] = [vertices[vid] for vid in self._ids]
        self.num_real_vertices = sum(1 for v in self._ordered if not v.is_virtual)
        self.superstep = 0
        n = len(self._ids)
        self._inbox: list[list[Any] | None] = [None] * n
        self._outbox: list[list[Any] | None] = [None] * n
        self._halted = bytearray(n)
        self._messages_sent_this_superstep = 0
        self._aggregate_previous: dict[str, float] = {}
        self._aggregate_next: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> dict[Hashable, GiraphVertex]:
        return self._vertices

    def vertex(self, vertex_id: Hashable) -> GiraphVertex:
        return self._vertices[vertex_id]

    def values(self, real_only: bool = True) -> dict[Hashable, Any]:
        return {
            vid: vertex.value
            for vid, vertex in self._vertices.items()
            if not (real_only and vertex.is_virtual)
        }

    # ------------------------------------------------------------------ #
    def send(self, target: Hashable, message: Any) -> None:
        """Queue ``message`` for ``target``'s next superstep.

        Numeric message batching: a per-target box holding only plain floats
        (the dominant case — every PageRank share) is an ``array('d')``
        buffer, 8 bytes per message instead of a boxed Python float per list
        slot.  The first non-float message degrades the box to a list,
        preserving order, so delivery semantics are unchanged.
        """
        index = self._index.get(target)
        if index is None:
            raise VertexCentricError(f"message sent to unknown vertex {target!r}")
        box = self._outbox[index]
        if box is None:
            box = self._outbox[index] = array("d") if type(message) is float else []
        elif type(box) is array and type(message) is not float:
            box = self._outbox[index] = list(box)
        box.append(message)
        self._messages_sent_this_superstep += 1

    def vote_to_halt(self, vertex_id: Hashable) -> None:
        self._halted[self._index[vertex_id]] = 1

    def aggregate(self, name: str, value: float) -> None:
        self._aggregate_next[name] = self._aggregate_next.get(name, 0.0) + value

    def get_aggregate(self, name: str, default: float = 0.0) -> float:
        return self._aggregate_previous.get(name, default)

    # ------------------------------------------------------------------ #
    def run(self, program: GiraphProgram, max_supersteps: int = 200) -> GiraphMetrics:
        metrics = GiraphMetrics(
            vertex_count=len(self._vertices),
            virtual_vertex_count=sum(1 for v in self._ordered if v.is_virtual),
            edge_count=sum(len(v.edges) for v in self._ordered),
        )
        limit = max_supersteps
        if program.max_supersteps is not None:
            limit = min(limit, program.max_supersteps)

        if self._parallelism > 1 and self._ids:
            return self._run_parallel(program, limit, metrics)

        context = GiraphContext(self)
        compute = program.compute
        n = len(self._ids)
        self.superstep = 0
        self._inbox = [None] * n
        self._halted = bytearray(n)
        self._aggregate_previous = {}
        while self.superstep < limit:
            inbox = self._inbox
            halted = self._halted
            active = [i for i in range(n) if not halted[i] or inbox[i] is not None]
            if not active:
                break
            self._outbox = [None] * n
            self._messages_sent_this_superstep = 0
            self._aggregate_next = {}
            ordered = self._ordered
            for i in active:
                halted[i] = 0
                messages = inbox[i]
                # programs always see a plain list (fresh when there are no
                # messages — compute may use the argument as scratch space);
                # batched float boxes are unpacked at this delivery boundary
                if messages is None:
                    messages = []
                elif type(messages) is array:
                    messages = messages.tolist()
                compute(ordered[i], messages, context)
                metrics.compute_calls += 1
            metrics.messages_per_superstep.append(self._messages_sent_this_superstep)
            metrics.total_messages += self._messages_sent_this_superstep
            metrics.peak_message_buffer = max(
                metrics.peak_message_buffer, self._messages_sent_this_superstep
            )
            self._inbox = self._outbox
            self._aggregate_previous = self._aggregate_next
            self.superstep += 1
            metrics.supersteps = self.superstep
        return metrics

    # ------------------------------------------------------------------ #
    # process-parallel supersteps (shared executor with repro.vertexcentric)
    # ------------------------------------------------------------------ #
    def _run_parallel(
        self, program: GiraphProgram, limit: int, metrics: GiraphMetrics
    ) -> GiraphMetrics:
        """BSP execution over fixed index partitions in worker processes.

        Each forked worker owns a contiguous partition of the dense index
        range for the whole run: vertex values and per-vertex ``data``
        scratch stay worker-local, the master only routes messages, merges
        aggregator contributions (flat left-to-right in partition order —
        the serial engine's summation order) and tracks termination.  Final
        vertex values are collected back into the master's vertex objects,
        so :meth:`values` works exactly as after a serial run.

        Message traffic crosses the worker pipes in batched form: an
        all-float superstep (PageRank shares) travels as flat typed buffers —
        and, while its target sequence repeats across supersteps (the usual
        case: shares scatter along the fixed adjacency), as value buffers
        alone — in both directions
        (:class:`repro.vertexcentric.parallel.MessageChannel`), which shrinks
        the pickled per-superstep payload while preserving delivery order and
        values exactly.
        """
        from repro.vertexcentric.parallel import (
            MessageChannel,
            ParallelSuperstepExecutor,
        )

        factory = _GiraphWorkerFactory(
            self._ordered, self._index, self.num_real_vertices, program
        )
        pool = ParallelSuperstepExecutor(self._parallelism, len(self._ids), factory)
        #: partition id per dense index, for message routing
        owner = [0] * len(self._ids)
        for part, (lo, hi) in enumerate(pool.partitions):
            for i in range(lo, hi):
                owner[i] = part
        try:
            pool.start()
            self.superstep = 0
            self._aggregate_previous = {}
            inbox: dict[int, list[Any]] = {}
            non_halted = [hi - lo for lo, hi in pool.partitions]
            # one packing channel per pipe direction per partition
            outbound = [MessageChannel() for _ in pool.partitions]
            inbound = [MessageChannel() for _ in pool.partitions]
            while self.superstep < limit:
                if not inbox and not any(non_halted):
                    break
                grouped: list[list[tuple[int, Any]]] = [[] for _ in pool.partitions]
                for index in sorted(inbox):
                    box = grouped[owner[index]]
                    for message in inbox[index]:
                        box.append((index, message))
                payloads = [
                    (self.superstep, outbound[part].pack(items), self._aggregate_previous)
                    for part, items in enumerate(grouped)
                ]
                results = pool.superstep(payloads)

                inbox = {}
                aggregate_next: dict[str, float] = {}
                sent_total = 0
                for part, (sends, sent, calls, contributions, remaining) in enumerate(results):
                    metrics.compute_calls += calls
                    sent_total += sent
                    non_halted[part] = remaining
                    # partition order == ascending sender order == serial
                    # delivery order per target inbox
                    for target, message in inbound[part].unpack(sends):
                        box = inbox.get(target)
                        if box is None:
                            inbox[target] = [message]
                        else:
                            box.append(message)
                    for name, values in contributions.items():
                        total = aggregate_next.get(name, 0.0)
                        for value in values:
                            total = total + value
                        aggregate_next[name] = total
                metrics.messages_per_superstep.append(sent_total)
                metrics.total_messages += sent_total
                metrics.peak_message_buffer = max(metrics.peak_message_buffer, sent_total)
                self._aggregate_previous = aggregate_next
                self.superstep += 1
                metrics.supersteps = self.superstep
            # pull final vertex values back into the master's vertex objects
            ordered = self._ordered
            for partition_values in pool.collect():
                for index, value in partition_values:
                    ordered[index].value = value
        finally:
            pool.close()
        return metrics


# --------------------------------------------------------------------------- #
# parallel chunk workers (run inside forked processes; see _run_parallel)
# --------------------------------------------------------------------------- #
class _GiraphChunkWorker:
    """Owns one contiguous partition of the dense vertex range for a run.

    Duck-types the engine for :class:`GiraphContext`: ``send`` records
    ordered ``(target_index, message)`` pairs for the master to route,
    ``vote_to_halt`` updates the partition-local halted array, aggregator
    contributions are kept as ordered lists for the master's serial-order
    re-reduction.
    """

    def __init__(
        self,
        ordered: list[GiraphVertex],
        index: dict[Hashable, int],
        num_real_vertices: int,
        program: GiraphProgram,
        lo: int,
        hi: int,
    ) -> None:
        self._ordered = ordered
        self._index = index
        self.num_real_vertices = num_real_vertices
        self._program = program
        self.lo = lo
        self.hi = hi
        from repro.vertexcentric.parallel import MessageChannel

        self.superstep = 0
        self._halted = bytearray(len(ordered))  # only [lo, hi) is meaningful
        self._sends: list[tuple[int, Any]] = []
        self._messages_sent = 0
        self._aggregate_previous: dict[str, float] = {}
        self._contributions: dict[str, list[float]] = {}
        self._context = GiraphContext(self)
        #: packing channels for this worker's two pipe directions (peers of
        #: the master's per-partition channels)
        self._inbound = MessageChannel()
        self._outbound = MessageChannel()

    # -- the GiraphContext-facing interface ------------------------------ #
    def send(self, target: Hashable, message: Any) -> None:
        index = self._index.get(target)
        if index is None:
            raise VertexCentricError(f"message sent to unknown vertex {target!r}")
        self._sends.append((index, message))
        self._messages_sent += 1

    def vote_to_halt(self, vertex_id: Hashable) -> None:
        index = self._index[vertex_id]
        if not (self.lo <= index < self.hi):
            raise VertexCentricError(
                "parallel Giraph programs may only halt vertices of their own partition"
            )
        self._halted[index] = 1

    def aggregate(self, name: str, value: float) -> None:
        self._contributions.setdefault(name, []).append(value)

    def get_aggregate(self, name: str, default: float = 0.0) -> float:
        return self._aggregate_previous.get(name, default)

    # -- executor protocol ----------------------------------------------- #
    def run_superstep(self, payload):
        superstep, packed_inbox, aggregates = payload
        self.superstep = superstep
        self._aggregate_previous = aggregates
        self._sends = []
        self._messages_sent = 0
        self._contributions = {}
        inbox: dict[int, list[Any]] = {}
        for index, message in self._inbound.unpack(packed_inbox):
            box = inbox.get(index)
            if box is None:
                inbox[index] = [message]
            else:
                box.append(message)
        halted = self._halted
        active = [i for i in range(self.lo, self.hi) if not halted[i] or i in inbox]
        compute = self._program.compute
        ordered = self._ordered
        context = self._context
        calls = 0
        for i in active:
            halted[i] = 0
            messages = inbox.get(i)
            compute(ordered[i], messages if messages is not None else [], context)
            calls += 1
        remaining = sum(1 for i in range(self.lo, self.hi) if not halted[i])
        return (
            self._outbound.pack(self._sends),
            self._messages_sent,
            calls,
            self._contributions,
            remaining,
        )

    def collect(self):
        return [(i, self._ordered[i].value) for i in range(self.lo, self.hi)]


class _GiraphWorkerFactory:
    """Builds a :class:`_GiraphChunkWorker` inside a forked worker.

    The ordered vertex list and index map are inherited through the fork —
    no pickling of the (possibly large) vertex set.
    """

    def __init__(
        self,
        ordered: list[GiraphVertex],
        index: dict[Hashable, int],
        num_real_vertices: int,
        program: GiraphProgram,
    ) -> None:
        self.ordered = ordered
        self.index = index
        self.num_real_vertices = num_real_vertices
        self.program = program

    def __call__(self, lo: int, hi: int) -> _GiraphChunkWorker:
        return _GiraphChunkWorker(
            self.ordered, self.index, self.num_real_vertices, self.program, lo, hi
        )
