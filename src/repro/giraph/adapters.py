"""Vertex input formats: turning a representation into a Giraph vertex set.

The paper ports three representations to Giraph (Table 4/5): EXP, DEDUP-1 and
BITMAP.  Their vertex sets differ:

* **EXP** — one Giraph vertex per real node, out-edges = logical neighbors.
* **DEDUP-1 / C-DUP** — one Giraph vertex per real *and* per virtual node,
  out-edges = condensed edges.  Virtual vertices carry no value of their own
  but aggregate/forward messages.
* **BITMAP** — like DEDUP-1 plus, on each virtual vertex, the per-source set
  of allowed out-targets decoded from the bitmaps, so the virtual vertex can
  forward each source's contribution only along set bits.

Real vertices additionally carry their precomputed logical degree, mirroring
the paper's observation that vertex-centric programs over condensed
representations cannot read the degree off the adjacency list and must
precompute it once.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.api import Graph
from repro.graph.bitmap import BitmapGraph
from repro.graph.condensed import CondensedGraph
from repro.graph.condensed_base import CondensedBackedGraph
from repro.giraph.engine import GiraphVertex


def _virtual_id(virtual: int) -> tuple[str, int]:
    """Stable Giraph identifier for an internal virtual node id."""
    return ("__virtual__", virtual)


def from_expanded(graph: Graph) -> dict[Hashable, GiraphVertex]:
    """EXP input format: real vertices with fully materialised neighbor lists.

    Built off the graph's CSR snapshot — one bulk encode instead of a
    ``get_neighbors`` traversal per vertex.
    """
    csr = graph.snapshot()
    ids = csr.external_ids
    offsets = csr.offsets_list
    targets = csr.targets_list
    vertices: dict[Hashable, GiraphVertex] = {}
    for index, vertex in enumerate(ids):
        neighbors = [ids[targets[e]] for e in range(offsets[index], offsets[index + 1])]
        vertices[vertex] = GiraphVertex(
            vertex_id=vertex,
            edges=neighbors,
            data={"degree": len(neighbors)},
        )
    return vertices


def from_condensed(
    representation: CondensedBackedGraph,
) -> dict[Hashable, GiraphVertex]:
    """DEDUP-1 / C-DUP input format: real + virtual vertices, condensed edges."""
    condensed = representation.condensed
    vertices = _condensed_vertices(condensed)
    _attach_degrees(vertices, representation)
    if isinstance(representation, BitmapGraph):
        _attach_bitmap_filters(vertices, representation)
    return vertices


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _condensed_vertices(condensed: CondensedGraph) -> dict[Hashable, GiraphVertex]:
    vertices: dict[Hashable, GiraphVertex] = {}

    def edge_target(node: int) -> Hashable:
        if condensed.is_virtual(node):
            return _virtual_id(node)
        return condensed.external(node)

    for node in condensed.real_nodes():
        external = condensed.external(node)
        vertices[external] = GiraphVertex(
            vertex_id=external,
            edges=[edge_target(t) for t in condensed.out(node)],
        )
    for virtual in condensed.virtual_nodes():
        vid = _virtual_id(virtual)
        vertices[vid] = GiraphVertex(
            vertex_id=vid,
            edges=[edge_target(t) for t in condensed.out(virtual)],
            is_virtual=True,
        )
    return vertices


def _attach_degrees(
    vertices: dict[Hashable, GiraphVertex], representation: CondensedBackedGraph
) -> None:
    """Precompute every real vertex's logical degree off the CSR snapshot.

    One bulk expansion of the virtual layer replaces a full condensed
    traversal per vertex (the pre-kernel cost of this step was quadratic in
    the neighborhood size).
    """
    csr = representation.snapshot()
    offsets = csr.offsets_list
    for index, vertex in enumerate(csr.external_ids):
        vertices[vertex].data["degree"] = offsets[index + 1] - offsets[index]


def _attach_bitmap_filters(
    vertices: dict[Hashable, GiraphVertex], representation: BitmapGraph
) -> None:
    """Decode each virtual node's bitmaps into per-source allowed-target sets."""
    condensed = representation.condensed
    for virtual, source_node, bitmask in representation.iter_bitmaps():
        targets = condensed.out(virtual)
        source = condensed.external(source_node)
        chosen: set[Hashable] = set()
        for position, target in enumerate(targets):
            if bitmask & (1 << position):
                chosen.add(
                    _virtual_id(target) if condensed.is_virtual(target) else condensed.external(target)
                )
        vertex = vertices[_virtual_id(virtual)]
        vertex.data.setdefault("allowed", {})[source] = chosen
