"""Simulated Apache Giraph port of the representations (Section 6.4)."""

from repro.giraph.engine import (
    GiraphContext,
    GiraphEngine,
    GiraphMetrics,
    GiraphProgram,
    GiraphVertex,
)
from repro.giraph.adapters import from_condensed, from_expanded
from repro.giraph.programs import (
    GiraphConnectedComponents,
    GiraphDegree,
    GiraphPageRank,
    is_virtual_id,
)
from repro.giraph.runner import ALGORITHMS, GiraphRunResult, build_vertices, run_giraph

__all__ = [
    "GiraphContext",
    "GiraphEngine",
    "GiraphMetrics",
    "GiraphProgram",
    "GiraphVertex",
    "from_condensed",
    "from_expanded",
    "GiraphConnectedComponents",
    "GiraphDegree",
    "GiraphPageRank",
    "is_virtual_id",
    "ALGORITHMS",
    "GiraphRunResult",
    "build_vertices",
    "run_giraph",
]
