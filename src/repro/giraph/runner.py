"""High-level helpers for the Giraph experiments (Table 4 / Table 5).

These wrap adapter construction, program selection and metric collection so
the benchmark harness (and the examples) can run one line per cell of the
paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.exceptions import VertexCentricError
from repro.giraph.adapters import from_condensed, from_expanded
from repro.giraph.engine import GiraphEngine, GiraphMetrics, GiraphVertex
from repro.giraph.programs import (
    GiraphConnectedComponents,
    GiraphDegree,
    GiraphPageRank,
)
from repro.graph.api import Graph
from repro.graph.condensed_base import CondensedBackedGraph
from repro.graph.expanded import ExpandedGraph
from repro.utils.timing import Timer

ALGORITHMS = ("degree", "pagerank", "connected_components")


@dataclass
class GiraphRunResult:
    """Outcome of one (representation, algorithm) cell of Table 4."""

    representation: str
    algorithm: str
    seconds: float
    metrics: GiraphMetrics
    values: dict[Hashable, Any]

    @property
    def estimated_memory_bytes(self) -> int:
        return self.metrics.estimated_memory_bytes()


def build_vertices(graph: Graph) -> tuple[dict[Hashable, GiraphVertex], bool]:
    """Build the Giraph vertex set for a representation.

    Returns ``(vertices, condensed?)``.
    """
    if isinstance(graph, ExpandedGraph):
        return from_expanded(graph), False
    if isinstance(graph, CondensedBackedGraph):
        return from_condensed(graph), True
    # DEDUP-2 or anything else: fall back to the logical (expanded) adjacency
    return from_expanded(graph), False


def run_giraph(
    graph: Graph,
    algorithm: str,
    iterations: int = 10,
    damping: float = 0.85,
    max_supersteps: int = 200,
    parallelism: int = 1,
) -> GiraphRunResult:
    """Run one algorithm on one representation through the simulated Giraph.

    ``parallelism=N`` executes supersteps in ``N`` worker processes with
    results bit-identical to the serial engine (see
    :meth:`repro.giraph.engine.GiraphEngine._run_parallel`).
    """
    if algorithm not in ALGORITHMS:
        raise VertexCentricError(
            f"unknown Giraph algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    vertices, condensed = build_vertices(graph)
    engine = GiraphEngine(vertices, parallelism=parallelism)
    if algorithm == "degree":
        program: Any = GiraphDegree()
    elif algorithm == "pagerank":
        program = GiraphPageRank(iterations=iterations, damping=damping, condensed=condensed)
    else:
        program = GiraphConnectedComponents()

    timer = Timer().start()
    metrics = engine.run(program, max_supersteps=max_supersteps)
    seconds = timer.stop()
    return GiraphRunResult(
        representation=graph.representation_name,
        algorithm=algorithm,
        seconds=seconds,
        metrics=metrics,
        values=engine.values(real_only=True),
    )
