"""Giraph programs: Degree, PageRank and Connected Components (Section 6.4).

Each program handles both vertex kinds produced by the adapters:

* on the **EXP** input there are only real vertices and the programs behave
  like textbook Pregel programs;
* on the **DEDUP-1 / BITMAP** inputs, virtual vertices aggregate and forward
  messages, which (as the paper notes) halves the number of messages per
  logical edge crossing but doubles the number of supersteps per PageRank
  iteration, and requires the logical degree to be precomputed as a vertex
  property.

PageRank and Degree assume a single-layer condensed input (all of the paper's
Giraph datasets are single-layer); Connected Components is duplicate- and
layer-insensitive and runs on anything.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.giraph.engine import GiraphContext, GiraphProgram, GiraphVertex

#: adapter-assigned prefix for virtual vertex identifiers
VIRTUAL_PREFIX = "__virtual__"


def is_virtual_id(vertex_id: Hashable) -> bool:
    return isinstance(vertex_id, tuple) and len(vertex_id) == 2 and vertex_id[0] == VIRTUAL_PREFIX


def _label(vertex_id: Hashable) -> tuple[str, str]:
    return (type(vertex_id).__name__, repr(vertex_id))


# --------------------------------------------------------------------------- #
# Degree
# --------------------------------------------------------------------------- #
class GiraphDegree(GiraphProgram):
    """Compute every real vertex's logical out-degree by querying the virtual
    vertices it points to.

    Real vertices count their direct real out-edges locally, then ask each
    virtual out-neighbor how many (distinct) real targets it contributes;
    virtual vertices answer using their bitmap filter when present and forward
    the query to deeper virtual layers otherwise.
    """

    def compute(self, vertex: GiraphVertex, messages: list[Any], ctx: GiraphContext) -> None:
        if vertex.is_virtual:
            for kind, source in messages:
                assert kind == "q"
                allowed = vertex.data.get("allowed", {}).get(source)
                reply = 0
                for target in vertex.edges:
                    if allowed is not None and target not in allowed:
                        continue
                    if is_virtual_id(target):
                        ctx.send(target, ("q", source))
                    else:
                        reply += 1
                if reply:
                    ctx.send(source, ("r", reply))
            ctx.vote_to_halt(vertex.vertex_id)
            return

        if ctx.superstep == 0:
            local = 0
            for target in vertex.edges:
                if is_virtual_id(target):
                    ctx.send(target, ("q", vertex.vertex_id))
                else:
                    local += 1
            vertex.value = local
        else:
            vertex.value = (vertex.value or 0) + sum(count for _, count in messages)
        ctx.vote_to_halt(vertex.vertex_id)


# --------------------------------------------------------------------------- #
# PageRank
# --------------------------------------------------------------------------- #
class GiraphPageRank(GiraphProgram):
    """Synchronous PageRank.

    ``condensed=False`` (EXP input): one superstep per iteration, one message
    per expanded edge.  ``condensed=True`` (DEDUP-1 / BITMAP input): two
    supersteps per iteration — real vertices scatter their shares onto virtual
    vertices, which aggregate and forward — so the message count per iteration
    is bounded by twice the number of condensed edges.
    """

    def __init__(self, iterations: int = 10, damping: float = 0.85, condensed: bool = False) -> None:
        self.iterations = iterations
        self.damping = damping
        self.condensed = condensed
        self.max_supersteps = (2 * iterations + 1) if condensed else (iterations + 1)

    # ------------------------------------------------------------------ #
    def compute(self, vertex: GiraphVertex, messages: list[Any], ctx: GiraphContext) -> None:
        if self.condensed:
            self._compute_condensed(vertex, messages, ctx)
        else:
            self._compute_expanded(vertex, messages, ctx)

    # ------------------------------------------------------------------ #
    def _compute_expanded(self, vertex: GiraphVertex, messages: list[Any], ctx: GiraphContext) -> None:
        n = ctx.num_real_vertices
        if ctx.superstep == 0:
            vertex.value = 1.0 / n
        else:
            dangling_mass = ctx.get_aggregate("dangling")
            vertex.value = (1.0 - self.damping) / n + self.damping * (
                sum(messages) + dangling_mass / n
            )
        if ctx.superstep < self.iterations:
            degree = vertex.data.get("degree") or len(vertex.edges)
            if degree:
                share = vertex.value / degree
                for target in vertex.edges:
                    ctx.send(target, share)
            else:
                # dangling: redistribute this superstep's rank to everybody
                # in the next one through the aggregator
                ctx.aggregate("dangling", vertex.value)
        else:
            ctx.vote_to_halt(vertex.vertex_id)

    # ------------------------------------------------------------------ #
    def _compute_condensed(self, vertex: GiraphVertex, messages: list[Any], ctx: GiraphContext) -> None:
        n = ctx.num_real_vertices
        superstep = ctx.superstep
        if vertex.is_virtual:
            # odd supersteps: aggregate (source, share) pairs and forward the
            # per-target sums along the (bitmap-filtered) out-edges
            if messages:
                allowed = vertex.data.get("allowed", {})
                for target in vertex.edges:
                    total = 0.0
                    for source, share in messages:
                        filter_set = allowed.get(source)
                        if filter_set is not None and target not in filter_set:
                            continue
                        total += share
                    if total:
                        ctx.send(target, ("v", total))
            ctx.vote_to_halt(vertex.vertex_id)
            return

        even = superstep % 2 == 0
        iteration = superstep // 2
        if even:
            if superstep == 0:
                vertex.value = 1.0 / n
            else:
                forwarded = sum(value for kind, value in messages if kind == "v")
                buffered = vertex.data.pop("direct_buffer", 0.0)
                dangling_mass = ctx.get_aggregate("dangling")
                vertex.value = (1.0 - self.damping) / n + self.damping * (
                    forwarded + buffered + dangling_mass / n
                )
            if iteration < self.iterations:
                degree = vertex.data.get("degree", 0)
                if degree:
                    share = vertex.value / degree
                    for target in vertex.edges:
                        if is_virtual_id(target):
                            ctx.send(target, (vertex.vertex_id, share))
                        else:
                            ctx.send(target, ("d", share))
            else:
                ctx.vote_to_halt(vertex.vertex_id)
        else:
            # odd superstep: buffer the direct real->real shares for the next
            # even superstep (virtual-forwarded shares arrive there directly)
            direct = sum(value for kind, value in messages if kind == "d")
            vertex.data["direct_buffer"] = vertex.data.get("direct_buffer", 0.0) + direct
            # dangling: contribute on the odd superstep so the mass becomes
            # visible exactly at the next even superstep (one per iteration)
            if not vertex.data.get("degree", 0) and iteration < self.iterations:
                ctx.aggregate("dangling", vertex.value)


# --------------------------------------------------------------------------- #
# Connected components
# --------------------------------------------------------------------------- #
class GiraphConnectedComponents(GiraphProgram):
    """Minimum-label propagation over the full (real + virtual) topology.

    Duplicate-insensitive: the paper runs it directly on C-DUP and observes a
    speed-up because the condensed topology has far fewer edges.
    """

    def compute(self, vertex: GiraphVertex, messages: list[Any], ctx: GiraphContext) -> None:
        if ctx.superstep == 0:
            if vertex.is_virtual:
                vertex.value = None
            else:
                vertex.value = _label(vertex.vertex_id)
                for target in vertex.edges:
                    ctx.send(target, vertex.value)
            ctx.vote_to_halt(vertex.vertex_id)
            return

        candidates = [m for m in messages if m is not None]
        if vertex.value is not None:
            candidates.append(vertex.value)
        if not candidates:
            ctx.vote_to_halt(vertex.vertex_id)
            return
        best = min(candidates)
        if vertex.value is None or best < vertex.value:
            vertex.value = best
            for target in vertex.edges:
                ctx.send(target, best)
        ctx.vote_to_halt(vertex.vertex_id)
