"""The graph analysis service core: one shared session, many request threads.

:class:`GraphService` is the HTTP-agnostic heart of :mod:`repro.service` —
the wire layer (:mod:`repro.service.http`) is a thin translator over the
methods here, so everything below is unit-testable without sockets.

One service owns one :class:`~repro.session.GraphSession` and one
:class:`~repro.session.GraphHandle` (the served graph).  Per request batch
it does three things:

1. **Validate** every ``(algorithm, params)`` request through the plan
   registry's own front door (:meth:`AnalysisPlan.add`), so the service
   accepts exactly what a local plan accepts and rejects with the same
   one-line :class:`~repro.exceptions.UsageError` messages — and so the
   *effective* parameters (defaults filled in) are known before any cache
   probe.

2. **Probe the result cache** under (snapshot content hash, algorithm,
   canonical params, backend).  Hits are served as clones whose provenance
   says so (``snapshot_source="result-cache"`` plus a note) without touching
   the kernel, the snapshot, or an execution slot.  Misses run as **one**
   plan over the shared snapshot (so a mixed batch still pays for the
   snapshot once), and every fresh result is cached on the way out.

3. **Admission-control the misses.**  ``max_inflight`` plans may execute
   concurrently; up to ``max_queue`` more may wait.  Anything beyond that is
   refused with :class:`~repro.exceptions.ServiceOverloadedError` (HTTP 503)
   instead of queueing unboundedly — cache hits bypass admission entirely,
   so a hot cache keeps absorbing load even while the execution slots are
   saturated.

Mutations (:meth:`add_edge`) go through the same object: the graph's version
bump gives the next snapshot a new content hash (all old cache keys
unmatchable), and entries under the superseded hash are evicted eagerly.

**Incremental mode** (``incremental=True``) wraps the served graph in a
:class:`~repro.graph.delta.JournaledGraph`: mutations become O(1) journal
appends, snapshots merge the delta over the mmap'd base instead of
rebuilding, and a mutation's cache sweep turns from evict-everything into
patch-what-we-can — superseded entries whose algorithm has a dynamic
maintainer (:mod:`repro.incremental`) are repaired in place and re-cached
under the new snapshot hash; only the rest are evicted.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Any

from repro.exceptions import ServiceOverloadedError, UsageError
from repro.service.cache import ResultCache, result_key
from repro.service.codec import decode_value, encode_value
from repro.session.plan import PLAN_ALGORITHMS, REQUIRED
from repro.session.report import AnalysisReport, AnalysisResult, Provenance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.session import GraphHandle, GraphSession

#: note attached to every result served from the cache instead of executed
CACHE_NOTE = "note: served from the session result cache (not re-executed)"


def _decode_params(params: Any) -> dict[str, Any]:
    """Request params as a keyword dict.

    Clients send either a plain JSON object (string keys, the common case)
    or the codec's tagged ``{"$": "map", ...}`` form when a parameter value
    needs a non-JSON-native type (e.g. a tuple vertex ID for ``bfs``).
    """
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise UsageError(f"params must be a JSON object (got {type(params).__name__})")
    if params.get("$") == "map":
        decoded = decode_value(params)
    else:
        decoded = {key: decode_value(value) for key, value in params.items()}
    for key in decoded:
        if not isinstance(key, str):
            raise UsageError(f"parameter names must be strings (got {key!r})")
    return decoded


def _parse_requests(payload: Any) -> list[tuple[str, dict[str, Any]]]:
    """Normalise an /analyze payload into ``(algorithm, params)`` pairs.

    Accepted shapes: ``{"algorithm": name, "params": {...}}`` for a single
    request, or ``{"algorithms": [{"name": ..., "params": {...}}, ...]}``
    for a batch.  Malformed payloads are caller mistakes → UsageError.
    """
    if not isinstance(payload, dict):
        raise UsageError("request body must be a JSON object")
    if "algorithm" in payload and "algorithms" in payload:
        raise UsageError("pass either 'algorithm' or 'algorithms', not both")
    if "algorithm" in payload:
        entries: list[Any] = [
            {"name": payload["algorithm"], "params": payload.get("params")}
        ]
    elif "algorithms" in payload:
        entries = payload["algorithms"]
        if not isinstance(entries, list) or not entries:
            raise UsageError("'algorithms' must be a non-empty JSON array")
    else:
        raise UsageError("request body needs an 'algorithm' or 'algorithms' field")
    requests = []
    for entry in entries:
        if isinstance(entry, str):
            entry = {"name": entry}
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise UsageError(
                "each algorithms[] entry must be a name string or an object "
                "with a 'name' field"
            )
        requests.append((entry["name"], _decode_params(entry.get("params"))))
    return requests


class GraphService:
    """Serve one session-managed graph to concurrent clients (module doc)."""

    def __init__(
        self,
        session: "GraphSession",
        handle: "GraphHandle",
        *,
        cache_size: int = 128,
        max_inflight: int = 4,
        max_queue: int = 16,
        incremental: bool = False,
    ) -> None:
        if max_inflight < 1:
            raise UsageError(f"max_inflight must be at least 1 (got {max_inflight})")
        if max_queue < 0:
            raise UsageError(f"max_queue must be non-negative (got {max_queue})")
        self.incremental = incremental
        if incremental:
            from repro.graph.delta import JournaledGraph

            if not isinstance(handle.graph, JournaledGraph):
                # re-wrap through the session so the journaled handle gets
                # its own store key / snapshot cache line; the original
                # handle (and its graph) stay untouched for the caller
                handle = session.wrap(JournaledGraph(handle.graph))
        self.session = session
        self.handle = handle
        self.cache = ResultCache(cache_size)
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._max_inflight = max_inflight
        self._max_queue = max_queue
        self._queue_lock = threading.Lock()
        self._queued = 0
        # serialises mutations against each other (snapshot builds are
        # already serialised by the handle's own lock)
        self._mutate_lock = threading.Lock()
        #: request-level observability, lock-guarded by _queue_lock
        self.requests = 0
        self.rejected = 0

    # ------------------------------------------------------------------ #
    # admission control (misses only; cache hits never take a slot)
    # ------------------------------------------------------------------ #
    def _admit(self) -> None:
        if self._slots.acquire(blocking=False):
            return
        with self._queue_lock:
            if self._queued >= self._max_queue:
                self.rejected += 1
                raise ServiceOverloadedError(
                    f"service overloaded: {self._max_inflight} plan(s) executing "
                    f"and {self._queued} request(s) already queued "
                    f"(max_queue={self._max_queue}); retry later"
                )
            self._queued += 1
        try:
            self._slots.acquire()
        finally:
            with self._queue_lock:
                self._queued -= 1

    def _leave(self) -> None:
        self._slots.release()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for an execution slot."""
        with self._queue_lock:
            return self._queued

    # ------------------------------------------------------------------ #
    # read endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "database": self.session.database.name,
            "representation": self.handle.representation,
            "backend": self.session.backend.name,
            "parallelism": self.session.parallelism,
        }

    def algorithms(self) -> dict[str, Any]:
        """The service's request catalogue: every plan algorithm with its
        accepted parameters and defaults (required ones marked)."""
        catalogue = {}
        for name, spec in sorted(PLAN_ALGORITHMS.items()):
            catalogue[name] = {
                "params": {
                    key: ("<required>" if value is REQUIRED else encode_value(value))
                    for key, value in spec.defaults.items()
                }
            }
        return catalogue

    def stats(self) -> dict[str, Any]:
        with self._queue_lock:
            admission = {
                "max_inflight": self._max_inflight,
                "max_queue": self._max_queue,
                "queue_depth": self._queued,
                "requests": self.requests,
                "rejected": self.rejected,
            }
        pool_manager = self.session.pool_manager
        store = self.session.store
        sharding = {
            "out_of_core": self.session.out_of_core,
            "shards": store.shards if store is not None else None,
            "threshold_bytes": (
                store.shard_threshold_bytes if store is not None else None
            ),
        }
        journal = getattr(self.handle.graph, "journal", None)
        journal_stats = None
        if journal is not None:
            journal_stats = {
                "pending": len(journal.records),
                "total": journal.total,
                "compactions": journal.compactions,
                "patched": self.cache.stats()["patched"],
                "evicted": self.cache.stats()["invalidations"],
            }
        return {
            "cache": self.cache.stats(),
            "admission": admission,
            "pool": dict(pool_manager.counters) if pool_manager is not None else None,
            "sharding": sharding,
            "journal": journal_stats,
        }

    # ------------------------------------------------------------------ #
    # analyze: the cache-fronted plan runner
    # ------------------------------------------------------------------ #
    def analyze(self, payload: Any) -> AnalysisReport:
        """Run (or serve from cache) one request batch; returns the report.

        Raises :class:`UsageError` for malformed/invalid requests and
        :class:`ServiceOverloadedError` when admission control refuses the
        batch — the HTTP layer maps these to 4xx / 503 one-line messages.
        """
        started = time.perf_counter()
        with self._queue_lock:
            self.requests += 1
        requests = _parse_requests(payload)

        # validate through the plan registry's own entry point: identical
        # acceptance, identical error messages, and the *effective* params
        # (defaults filled in) the cache key needs
        probe = self.handle.analyze()
        for name, params in requests:
            probe.add(name, **params)
        effective = probe.requests()

        # the current snapshot pins the cache epoch; on an unchanged graph
        # this is the handle's cached snapshot (no build, no kernel work)
        content_hash = self.handle.snapshot().content_hash
        backend_name = self.session.backend.name

        keys = [
            result_key(content_hash, name, params, backend_name)
            for name, params in effective
        ]
        cached: dict[int, AnalysisResult] = {}
        for index, key in enumerate(keys):
            hit = self.cache.get(key)
            if hit is not None:
                cached[index] = hit
        miss_indexes = [i for i in range(len(keys)) if i not in cached]

        fresh_report: AnalysisReport | None = None
        if miss_indexes:
            self._admit()
            try:
                plan = self.handle.analyze()
                for index in miss_indexes:
                    name, params = effective[index]
                    plan.add(name, **params)
                fresh_report = plan.run()
            finally:
                self._leave()
            for index, result in zip(miss_indexes, fresh_report.results):
                self.cache.put(keys[index], result)

        # assemble the response in request order: fresh results as-is,
        # cache hits as clones whose provenance says where they came from
        results: list[AnalysisResult] = []
        seen_labels: dict[str, int] = {}
        fresh_by_index = (
            dict(zip(miss_indexes, fresh_report.results)) if fresh_report else {}
        )
        for index, (name, _) in enumerate(effective):
            count = seen_labels.get(name, 0) + 1
            seen_labels[name] = count
            label = name if count == 1 else f"{name}#{count}"
            if index in cached:
                original = cached[index]
                results.append(
                    replace(
                        original,
                        label=label,
                        provenance=replace(
                            original.provenance, snapshot_source="result-cache"
                        ),
                        notes=original.notes + (CACHE_NOTE,),
                    )
                )
            else:
                result = fresh_by_index[index]
                if result.label != label:
                    result = replace(result, label=label)
                results.append(result)

        hits = len(cached)
        misses = len(miss_indexes)
        if fresh_report is not None:
            provenance = fresh_report.provenance
        else:
            provenance = Provenance(
                representation=self.handle.representation,
                backend=backend_name,
                snapshot_source="result-cache",
                parallelism=self.session.parallelism,
            )
        journal = getattr(self.handle.graph, "journal", None)
        return AnalysisReport(
            results=results,
            provenance=provenance,
            total_seconds=time.perf_counter() - started,
            snapshot_builds=fresh_report.snapshot_builds if fresh_report else 0,
            pool_starts=fresh_report.pool_starts if fresh_report else 0,
            snapshot_writes=fresh_report.snapshot_writes if fresh_report else 0,
            nodes_computed=fresh_report.nodes_computed if fresh_report else 0,
            nodes_reused=fresh_report.nodes_reused if fresh_report else 0,
            worker_memory=fresh_report.worker_memory if fresh_report else [],
            cache={"hits": hits, "misses": misses, "queue_depth": self.queue_depth},
            journal=None
            if journal is None
            else {
                "pending": len(journal.records),
                "total": journal.total,
                "compactions": journal.compactions,
            },
        )

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, payload: Any) -> dict[str, Any]:
        """Add one logical edge to the served graph.

        Payload: ``{"source": ..., "target": ...}`` (tagged values allowed).
        Missing endpoints are created.  The mutation bumps the graph's
        version, so the next snapshot carries a new content hash — every
        cached result's key stops matching automatically; entries under the
        superseded hash are swept eagerly, and the response reports both
        hashes so clients can watch the epoch move.

        On a plain service the sweep evicts everything.  On an incremental
        service it patches instead: each superseded entry whose algorithm
        has a dynamic maintainer is repaired over the delta journal and
        re-cached under the new hash (reported as ``patched``); only
        entries no maintainer could repair are evicted.
        """
        if not isinstance(payload, dict):
            raise UsageError("request body must be a JSON object")
        missing = [field for field in ("source", "target") if field not in payload]
        if missing:
            raise UsageError(f"add_edge needs {' and '.join(missing)} field(s)")
        source = decode_value(payload["source"])
        target = decode_value(payload["target"])
        graph = self.handle.graph
        with self._mutate_lock:
            old_hash = self.handle.snapshot().content_hash
            created = []
            for vertex in (source, target):
                if not graph.has_vertex(vertex):
                    graph.add_vertex(vertex)
                    created.append(vertex)
            graph.add_edge(source, target)
            new_hash = self.handle.snapshot().content_hash
            invalidated = 0
            patched = 0
            if new_hash != old_hash:
                if self.incremental:
                    patched, invalidated = self._patch_cache(old_hash, new_hash)
                else:
                    invalidated = self.cache.invalidate(old_hash)
        return {
            "source": encode_value(source),
            "target": encode_value(target),
            "vertices_created": [encode_value(vertex) for vertex in created],
            "old_content_hash": old_hash.hex(),
            "content_hash": new_hash.hex(),
            "invalidated": invalidated,
            "patched": patched,
        }

    def _patch_cache(self, old_hash: bytes, new_hash: bytes) -> tuple[int, int]:
        """Sweep superseded cache entries through the dynamic maintainers:
        repaired entries re-enter under ``new_hash``, the rest are evicted.
        Returns ``(patched, evicted)``.  Caller holds ``_mutate_lock``."""
        entries = self.cache.take(old_hash)
        if not entries:
            return 0, 0
        csr = self.handle.snapshot()
        backend = self.session.backend
        delta_edges = self.handle._delta_edges
        patched = 0
        evicted = 0
        for key, result in entries:
            spec = PLAN_ALGORITHMS.get(result.algorithm)
            served = None
            if spec is not None and spec.maintainer is not None:
                served = self.handle._incremental_serve(
                    result.algorithm, spec.maintainer, result.params, csr, backend
                )
            if served is None:
                self.cache.record_eviction()
                evicted += 1
                continue
            values, seconds, note = served
            self.cache.put(
                (new_hash.hex(),) + key[1:],
                replace(
                    result,
                    values=values,
                    seconds=seconds,
                    engine="incremental",
                    provenance=replace(
                        result.provenance,
                        snapshot_source="base+delta",
                        delta_edges=delta_edges,
                    ),
                    notes=(note,),
                    nodes=(),
                ),
            )
            self.cache.record_patch()
            patched += 1
        return patched, evicted

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release session resources (the warm worker pool)."""
        self.session.close()
