"""Stdlib HTTP front-end for :class:`~repro.service.GraphService`.

Deliberately boring: a :class:`http.server.ThreadingHTTPServer` (one thread
per connection — exactly the concurrency the session layer's locks were
hardened for) dispatching five routes onto the service object:

    GET  /health      liveness + served-graph identity
    GET  /algorithms  the request catalogue (names, params, defaults)
    GET  /stats       cache / admission / warm-pool counters
    POST /analyze     run (or serve from cache) an algorithm batch
    POST /edges       add an edge (moves the snapshot's cache epoch)

Error contract, mirroring the CLI's: caller mistakes
(:class:`~repro.exceptions.UsageError` and friends) become a 4xx JSON body
``{"error": "<one-line message>"}`` — never a traceback;
:class:`~repro.exceptions.ServiceOverloadedError` becomes 503 so clients
know to back off and retry; only a genuine server bug produces a 500.

No new dependencies: everything here is ``http.server`` + ``json``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.exceptions import (
    GraphGenError,
    ServiceOverloadedError,
    UsageError,
)
from repro.service.codec import dumps, encode_report, loads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.app import GraphService

#: request body size guard (a graph service request is a few hundred bytes;
#: anything megabyte-sized is a mistake or abuse)
MAX_BODY_BYTES = 1 << 20


class GraphServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`GraphService`.

    ``max_requests`` (None = unlimited) makes the server shut itself down
    after serving that many requests — the smoke tests' way of running a
    real socket server with a bounded lifetime.
    """

    daemon_threads = True

    def __init__(self, address, service: "GraphService", max_requests: int | None = None):
        super().__init__(address, GraphServiceHandler)
        self.service = service
        self.max_requests = max_requests
        self._served = 0
        self._served_lock = threading.Lock()

    def count_request(self) -> None:
        if self.max_requests is None:
            return
        with self._served_lock:
            self._served += 1
            done = self._served >= self.max_requests
        if done:
            # shutdown() blocks until serve_forever() exits, so it must not
            # run on the request thread that serve_forever is waiting on
            threading.Thread(target=self.shutdown, daemon=True).start()


class GraphServiceHandler(BaseHTTPRequestHandler):
    """Route translator: HTTP in, service method, JSON out."""

    server: GraphServiceServer
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------- #
    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr per-request log line (the service's
        counters are the observability surface)."""

    def _reply(self, status: int, payload: Any) -> None:
        body = dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.count_request()

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise UsageError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise UsageError("request body is empty; send a JSON object")
        try:
            return loads(raw)
        except ValueError as exc:
            raise UsageError(f"request body is not valid JSON: {exc}") from None

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except ServiceOverloadedError as exc:
            self._reply(503, {"error": str(exc)})
        except GraphGenError as exc:
            # one-line caller-mistake message, never a traceback — the same
            # contract the CLI keeps on stderr
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - genuine server bug
            self._reply(500, {"error": f"internal error: {exc}"})
        else:
            self._reply(status, payload)

    # -- routes ---------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        routes = {
            "/health": service.health,
            "/algorithms": service.algorithms,
            "/stats": service.stats,
        }
        method = routes.get(self.path)
        if method is None:
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        self._dispatch(lambda: (200, method()))

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        if self.path == "/analyze":
            self._dispatch(
                lambda: (200, encode_report(service.analyze(self._read_body())))
            )
        elif self.path == "/edges":
            self._dispatch(lambda: (200, service.add_edge(self._read_body())))
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})


def make_server(
    service: "GraphService",
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_requests: int | None = None,
) -> GraphServiceServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port —
    read the real one from ``server.server_address``."""
    return GraphServiceServer((host, port), service, max_requests=max_requests)


def serve_in_thread(server: GraphServiceServer) -> threading.Thread:
    """Run ``serve_forever`` on a daemon thread (tests and the CLI's
    foreground loop both build on this); returns the started thread."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread
