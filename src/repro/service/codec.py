"""Lossless JSON codec for session analysis reports.

The session layer's result objects (:class:`~repro.session.AnalysisReport`,
:class:`~repro.session.AnalysisResult`, :class:`~repro.session.Provenance`,
:class:`~repro.session.NodeProvenance`) were designed as plain data — this
module is where they actually become JSON, and back, without loss:

* **Vertex IDs keep their types.**  Result values are keyed by *external*
  vertex IDs, which may be ints, strings or tuples; a naive ``json.dumps``
  would stringify dict keys and collapse tuples into lists.  Containers are
  therefore encoded *tagged*: every dict becomes ``{"$": "map", "items":
  [[key, value], ...]}`` (key types and insertion order preserved) and every
  tuple becomes ``{"$": "tuple", "items": [...]}``.  Plain JSON arrays are
  reserved for Python lists, so decoding is unambiguous — and because *all*
  dicts are tagged, a result value containing a literal ``"$"`` key can
  never be mistaken for a tag.

* **Floats round-trip bit-identically.**  Python's ``json`` emits
  ``repr(float)`` (shortest round-tripping form) and parses it back with
  ``float()``, so centrality scores decode to exactly the bits the kernel
  produced — the service's cached-vs-fresh bit-identity contract rests on
  this.

``decode_report(encode_report(report))`` reconstructs an equal report;
:func:`dumps` / :func:`loads` add the byte layer (sorted keys, compact
separators) the HTTP front-end ships.
"""

from __future__ import annotations

import json
from typing import Any

from repro.session.report import (
    AnalysisReport,
    AnalysisResult,
    NodeProvenance,
    Provenance,
)

#: scalar types that pass through the codec untouched (JSON natives)
_SCALARS = (bool, int, float, str)


def encode_value(value: Any) -> Any:
    """Lower an algorithm result value (or params dict) to tagged JSON."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, tuple):
        return {"$": "tuple", "items": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {
            "$": "map",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise TypeError(f"cannot encode {type(value).__name__} value {value!r} as JSON")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        tag = value.get("$")
        if tag == "tuple":
            return tuple(decode_value(item) for item in value["items"])
        if tag == "map":
            return {decode_value(k): decode_value(v) for k, v in value["items"]}
        raise ValueError(f"unknown codec tag {tag!r}")
    raise TypeError(f"cannot decode {type(value).__name__} value {value!r}")


# --------------------------------------------------------------------------- #
# report objects
# --------------------------------------------------------------------------- #
def encode_provenance(provenance: Provenance | None) -> dict | None:
    if provenance is None:
        return None
    return {
        "representation": provenance.representation,
        "backend": provenance.backend,
        "snapshot_source": provenance.snapshot_source,
        "parallelism": provenance.parallelism,
        "shards": provenance.shards,
        "delta_edges": provenance.delta_edges,
    }


def decode_provenance(data: dict | None) -> Provenance | None:
    if data is None:
        return None
    return Provenance(
        representation=data["representation"],
        backend=data["backend"],
        snapshot_source=data["snapshot_source"],
        parallelism=data["parallelism"],
        # absent in payloads encoded before sharding existed
        shards=data.get("shards", 0),
        # absent in payloads encoded before the delta journal existed
        delta_edges=data.get("delta_edges", 0),
    )


def encode_result(result: AnalysisResult) -> dict:
    return {
        "algorithm": result.algorithm,
        "label": result.label,
        "params": encode_value(result.params),
        "values": encode_value(result.values),
        "seconds": result.seconds,
        "engine": result.engine,
        "provenance": encode_provenance(result.provenance),
        "notes": list(result.notes),
        "scheduled": result.scheduled,
        "nodes": [
            {
                "key": node.key,
                "kind": node.kind,
                "status": node.status,
                "seconds": node.seconds,
            }
            for node in result.nodes
        ],
    }


def decode_result(data: dict) -> AnalysisResult:
    return AnalysisResult(
        algorithm=data["algorithm"],
        label=data["label"],
        params=decode_value(data["params"]),
        values=decode_value(data["values"]),
        seconds=data["seconds"],
        engine=data["engine"],
        provenance=decode_provenance(data["provenance"]),
        notes=tuple(data["notes"]),
        scheduled=data["scheduled"],
        nodes=tuple(
            NodeProvenance(
                key=node["key"],
                kind=node["kind"],
                status=node["status"],
                seconds=node["seconds"],
            )
            for node in data["nodes"]
        ),
    )


def encode_report(report: AnalysisReport) -> dict:
    return {
        "results": [encode_result(result) for result in report.results],
        "provenance": encode_provenance(report.provenance),
        "total_seconds": report.total_seconds,
        "snapshot_builds": report.snapshot_builds,
        "pool_starts": report.pool_starts,
        "snapshot_writes": report.snapshot_writes,
        "nodes_computed": report.nodes_computed,
        "nodes_reused": report.nodes_reused,
        "cache": dict(report.cache) if report.cache is not None else None,
        "journal": dict(report.journal) if report.journal is not None else None,
        "worker_memory": [dict(entry) for entry in report.worker_memory],
    }


def decode_report(data: dict) -> AnalysisReport:
    return AnalysisReport(
        results=[decode_result(result) for result in data["results"]],
        provenance=decode_provenance(data["provenance"]),
        total_seconds=data["total_seconds"],
        snapshot_builds=data["snapshot_builds"],
        pool_starts=data["pool_starts"],
        snapshot_writes=data["snapshot_writes"],
        nodes_computed=data["nodes_computed"],
        nodes_reused=data["nodes_reused"],
        cache=dict(data["cache"]) if data.get("cache") is not None else None,
        # absent in payloads encoded before the delta journal existed
        journal=dict(data["journal"]) if data.get("journal") is not None else None,
        # absent in payloads encoded before out-of-core execution existed
        worker_memory=[dict(entry) for entry in data.get("worker_memory", [])],
    )


# --------------------------------------------------------------------------- #
# bytes on the wire
# --------------------------------------------------------------------------- #
def dumps(payload: Any) -> bytes:
    """Serialize an already-encoded payload to compact UTF-8 JSON bytes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def loads(raw: bytes | str) -> Any:
    """Parse wire bytes back into the tagged-JSON structure."""
    return json.loads(raw)
