"""Graph analysis service front-end over :mod:`repro.session`.

The paper's GraphGen is *used* as a service: a front-end that many analysts
point at one extracted graph.  This package is that front-end for the
reproduction — a dependency-free HTTP layer (:mod:`repro.service.http`)
over an HTTP-agnostic core (:class:`GraphService`) that adds the one thing
a served session needs beyond the session layer itself: a **result cache**
(:class:`ResultCache`) keyed on (snapshot content hash, algorithm,
canonical params, backend), with admission control in front of the
execution slots and lossless JSON codecs (:mod:`repro.service.codec`) for
the session's report objects.

Typical embedding (the CLI's ``serve`` command does exactly this)::

    session = GraphSession(db, snapshot_cache=dir, parallelism=4, warm_pool=True)
    handle = session.graph(query)
    service = GraphService(session, handle, cache_size=128)
    server = make_server(service, "127.0.0.1", 8080)
    server.serve_forever()
"""

from repro.service.app import GraphService
from repro.service.cache import ResultCache, canonical_params, result_key
from repro.service.codec import (
    decode_report,
    decode_result,
    decode_value,
    encode_report,
    encode_result,
    encode_value,
)
from repro.service.http import GraphServiceServer, make_server, serve_in_thread

__all__ = [
    "GraphService",
    "GraphServiceServer",
    "ResultCache",
    "canonical_params",
    "decode_report",
    "decode_result",
    "decode_value",
    "encode_report",
    "encode_result",
    "encode_value",
    "make_server",
    "result_key",
    "serve_in_thread",
]
