"""Session-level analysis result cache for the graph service.

The paper's workload is "extract once, analyze many times" — and a *served*
graph pushes that one step further: many clients ask the same questions of
the same snapshot.  :class:`ResultCache` memoises finished
:class:`~repro.session.AnalysisResult` objects under a key that pins down
everything that could change the answer:

    (snapshot content hash, algorithm name, canonicalized parameters,
     kernel backend)

The **content hash** term is what makes invalidation automatic: a mutation
(``add_edge``) bumps the graph's version, the next snapshot has a new hash,
and every request computes a key no stale entry can match.  Entries under
superseded hashes are additionally evicted eagerly (``invalidate``) so a
long-lived service does not accumulate results for graphs that no longer
exist.  An *incremental* service does better for maintainable algorithms:
it ``take()``-s the superseded entries, repairs their values through the
dynamic maintainers (:mod:`repro.incremental`) and re-inserts them under
the new hash (``patched`` counts these), evicting only what no maintainer
could repair.  **Canonicalized parameters** (sorted ``key=repr(value)`` pairs over
the *effective* params, defaults filled in) make ``pagerank()`` and
``pagerank(damping=0.85)`` the same entry — the same normalisation the plan
compiler uses for its structural node keys.

Capacity is bounded LRU; all operations are lock-guarded because the
service's HTTP front-end drives this from many request threads at once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.session.report import AnalysisResult


def canonical_params(params: dict[str, Any]) -> str:
    """Order-insensitive token for an effective parameter dict, e.g.
    ``"damping=0.85, max_iterations=50, tolerance=1e-09"``."""
    return ", ".join(f"{key}={value!r}" for key, value in sorted(params.items()))


def result_key(
    content_hash: bytes, algorithm: str, params: dict[str, Any], backend: str
) -> tuple[str, str, str, str]:
    """The full cache key for one analysis request (see module docstring)."""
    return (content_hash.hex(), algorithm, canonical_params(params), backend)


class ResultCache:
    """Bounded, thread-safe LRU of finished analysis results."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be at least 1 (got {capacity})")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, AnalysisResult]" = OrderedDict()
        self._lock = threading.Lock()
        #: monotonic observability counters (exposed via /stats and in every
        #: service report's ``cache`` dict)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.patched = 0

    def get(self, key: tuple) -> AnalysisResult | None:
        """The cached result for ``key`` (refreshing its LRU position), or
        None — counted as a hit or a miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: tuple, result: AnalysisResult) -> None:
        """Insert (or refresh) ``key``, evicting the least recently used
        entry when over capacity."""
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, content_hash: bytes | str) -> int:
        """Drop every entry cached against ``content_hash`` (a superseded
        snapshot); returns how many were removed."""
        digest = content_hash.hex() if isinstance(content_hash, bytes) else content_hash
        with self._lock:
            stale = [key for key in self._entries if key[0] == digest]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def take(self, content_hash: bytes | str) -> list[tuple[tuple, AnalysisResult]]:
        """Remove and return every ``(key, result)`` cached against
        ``content_hash`` — the incremental service's patch-or-evict walk.
        Removal is *not* counted as an invalidation; the caller accounts for
        each entry's fate (``record_patch`` vs ``record_eviction``)."""
        digest = content_hash.hex() if isinstance(content_hash, bytes) else content_hash
        with self._lock:
            stale = [key for key in self._entries if key[0] == digest]
            return [(key, self._entries.pop(key)) for key in stale]

    def record_patch(self) -> None:
        """Count one superseded entry repaired in place (re-inserted under
        the new snapshot hash by a dynamic maintainer)."""
        with self._lock:
            self.patched += 1

    def record_eviction(self) -> None:
        """Count one superseded entry no maintainer could repair."""
        with self._lock:
            self.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Counter snapshot (the dict service reports carry as ``cache``)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "patched": self.patched,
                "entries": len(self._entries),
                "capacity": self.capacity,
            }
